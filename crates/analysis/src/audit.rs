//! The storage-plan auditor.
//!
//! Given an SSA program, its inferred types and a [`StoragePlan`] for
//! every function, the auditor re-derives the soundness obligations a
//! plan must honour and reports every violation through
//! [`Diagnostics`]. It trusts **nothing** the planner computed: liveness
//! and availability come from this crate's own [`AuditFlow`], static
//! byte sizes from an independent walk over the inferred facts, and the
//! §2.3 in-place operator table is re-encoded here from the paper
//! rather than shared with Phase 1.
//!
//! Since PR 6 the audit also *compares* engines: the production
//! dataflow is computed once per function (shared between the A401
//! φ-coalescing check and the A5xx group instead of being re-derived
//! per check group) and every block-level fact is cross-validated
//! word-for-word against the auditor's independent recomputation — an
//! engine-vs-engine divergence is an instant bug report on whichever
//! side is wrong.
//!
//! ## Checks
//!
//! | code | severity | obligation |
//! |------|----------|------------|
//! | A101 | error    | no definition may clobber a slot-mate that is still live (Chaitin interference, §2) |
//! | A102 | error    | `var_slot`, `slots[..].members` and `resize` are structurally consistent |
//! | A103 | error    | φ parallel copies on one edge never write a slot another φ still reads (§2.2.1) |
//! | A201 | error    | a result sharing its dying operand's slot is an operation the §2.3 table allows in place |
//! | A301 | error    | `∘` only on definitions provably matching a same-slot predecessor's size (§3.2.2) |
//! | A302 | error    | `+` only on `subsasgn` into the same slot (§2.3.3.1) |
//! | A303 | error    | every stack-slot member is statically sizable (§3.2.1) |
//! | A304 | error    | a stack slot's byte size is exactly its maximal member's (§3.3, Lemma 1) |
//! | A305 | error    | a slot's intrinsic covers every member's inferred intrinsic (Relation 1) |
//! | A401 | warning  | φ arguments are coalesced with their destination unless a conflict was recorded (§2.2.1) |
//! | A501 | error    | auditor and production engines agree on block liveness (cross-validation) |
//! | A502 | error    | auditor and production engines agree on block availability (cross-validation) |
//! | A503 | error    | auditor and production engines agree on CFG reachability (cross-validation) |
//! | L004 | warning  | a `±` resize annotation the auditor proves can never trigger (dead resize) |
//!
//! ## Parallel audits
//!
//! [`audit_program_jobs`] fans per-function audits across a small
//! work-stealing pool (auditing is read-only over the program and the
//! plan, so functions are embarrassingly parallel). The determinism
//! contract: diagnostics land in per-function slots and are merged in
//! `FuncId` order, and every verdict is a pure function of the
//! function, its types and its plan — so the output is byte-identical
//! across `--jobs 1` and `--jobs N` and across interleavings.

use crate::dataflow::AuditFlow;
use crate::diagnostics::Diagnostics;
use matc_frontend::ast::{BinOp, UnOp};
use matc_gctd::{
    Dataflow, GctdOptions, InterferenceGraph, ProgramPlan, ResizeKind, SlotKind, StoragePlan,
};
use matc_ir::ids::{BlockId, FuncId, VarId};
use matc_ir::instr::{InstrKind, Op, Operand};
use matc_ir::{Budget, BudgetError, Builtin, FuncIr, IrProgram};
use matc_typeinf::{ExprId, Intrinsic, ProgramTypes};
use std::collections::BTreeMap;

/// Work counters one function's audit produced, for the
/// `audit_edges_per_sec` throughput metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// CFG edges the audited functions contain — the unit of audit
    /// throughput (every dataflow fixpoint and per-instruction check is
    /// linear in edges for a fixed program shape).
    pub cfg_edges: u64,
}

impl AuditStats {
    fn absorb(&mut self, other: AuditStats) {
        self.cfg_edges += other.cfg_edges;
    }
}

/// Audits every function's plan; returns all findings.
///
/// `types` is taken mutably because symbolic size comparisons intern new
/// expressions in the shared [`matc_typeinf::ExprCtx`].
pub fn audit_program(
    prog: &IrProgram,
    types: &mut ProgramTypes,
    plans: &ProgramPlan,
) -> Diagnostics {
    audit_program_with_stats(prog, types, plans).0
}

/// [`audit_program`] returning the work counters alongside the findings.
pub fn audit_program_with_stats(
    prog: &IrProgram,
    types: &mut ProgramTypes,
    plans: &ProgramPlan,
) -> (Diagnostics, AuditStats) {
    let mut diags = Diagnostics::new();
    let mut stats = AuditStats::default();
    for i in 0..prog.functions.len() {
        let fid = FuncId::new(i);
        let func = prog.func(fid);
        let preds = func.predecessors();
        let budget = Budget::unlimited();
        let s = audit_function_budgeted(
            func,
            fid,
            types,
            plans.plan(fid),
            plans.options,
            &preds,
            &budget,
            &mut diags,
        )
        .expect("unlimited budget cannot trip");
        stats.absorb(s);
    }
    (diags, stats)
}

/// [`audit_program_with_stats`] with per-function audits fanned across
/// `jobs` worker threads (work-stealing, like the batch pool: each
/// worker owns a deque seeded round-robin, pops its own front and
/// steals others' backs).
///
/// Diagnostics are collected into per-function slots and merged in
/// `FuncId` order, so the output is byte-identical to the serial audit
/// regardless of `jobs` or scheduling. Each worker audits against its
/// own clone of `types` (interning during symbolic comparisons is a
/// cache, not an input), so the caller's context is left untouched on
/// this path.
pub fn audit_program_jobs(
    prog: &IrProgram,
    types: &ProgramTypes,
    plans: &ProgramPlan,
    jobs: usize,
) -> (Diagnostics, AuditStats) {
    let n = prog.functions.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        let mut local = types.clone();
        return audit_program_with_stats(prog, &mut local, plans);
    }

    use std::collections::VecDeque;
    use std::sync::Mutex;

    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        queues[i % jobs].lock().unwrap().push_back(i);
    }
    let slots: Vec<Mutex<Option<(Diagnostics, AuditStats)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let mut local_types = types.clone();
            scope.spawn(move || loop {
                let task = queues[w].lock().unwrap().pop_front().or_else(|| {
                    (0..queues.len())
                        .filter(|q| *q != w)
                        .find_map(|q| queues[q].lock().unwrap().pop_back())
                });
                let Some(i) = task else { break };
                let fid = FuncId::new(i);
                let func = prog.func(fid);
                let preds = func.predecessors();
                let budget = Budget::unlimited();
                let mut d = Diagnostics::new();
                let s = audit_function_budgeted(
                    func,
                    fid,
                    &mut local_types,
                    plans.plan(fid),
                    plans.options,
                    &preds,
                    &budget,
                    &mut d,
                )
                .expect("unlimited budget cannot trip");
                *slots[i].lock().unwrap() = Some((d, s));
            });
        }
    });

    let mut diags = Diagnostics::new();
    let mut stats = AuditStats::default();
    for slot in slots {
        let (d, s) = slot
            .into_inner()
            .unwrap()
            .expect("every function was audited");
        diags.merge(d);
        stats.absorb(s);
    }
    (diags, stats)
}

/// Audits one function's plan, appending findings to `diags`.
///
/// # Panics
///
/// Panics if `func` is not in SSA form — plans are built on SSA, so
/// auditing anything else would be meaningless.
pub fn audit_function(
    func: &FuncIr,
    fid: FuncId,
    types: &mut ProgramTypes,
    plan: &StoragePlan,
    options: GctdOptions,
    diags: &mut Diagnostics,
) {
    let preds = func.predecessors();
    let budget = Budget::unlimited();
    audit_function_budgeted(func, fid, types, plan, options, &preds, &budget, diags)
        .expect("unlimited budget cannot trip");
}

/// [`audit_function`] with the predecessor lists supplied by the caller
/// (computed once per function, shared by every analysis the audit
/// runs — the audit dataflow, the production engine behind A401/A5xx —
/// instead of once per check group) and a [`Budget`] charged with the
/// same shape as the production pipeline's analysis phases.
///
/// Returns the work counters on success; on a budget trip the partial
/// findings appended so far must be discarded by the caller along with
/// the audit (the degradation ladder does exactly that).
///
/// # Errors
///
/// Returns the [`BudgetError`] that tripped one of the dataflow
/// fixpoints.
///
/// # Panics
///
/// Panics if `func` is not in SSA form.
#[allow(clippy::too_many_arguments)]
pub fn audit_function_budgeted(
    func: &FuncIr,
    fid: FuncId,
    types: &mut ProgramTypes,
    plan: &StoragePlan,
    options: GctdOptions,
    preds: &[Vec<BlockId>],
    budget: &Budget,
    diags: &mut Diagnostics,
) -> Result<AuditStats, BudgetError> {
    assert!(func.in_ssa, "plan audits run on SSA form");
    let flow = AuditFlow::compute_budgeted_with_preds(func, preds, budget)?;
    // The production engine's facts, computed once and shared between
    // the A5xx cross-validation and the A401 φ-coalescing check.
    let prod = Dataflow::compute_budgeted_with_preds(func, preds, budget)?;
    let sizes = AuditSizes::compute(func, fid, types);

    check_structure(func, plan, diags);
    check_slot_sizing(func, &sizes, plan, diags);
    check_liveness_conflicts(func, &flow, plan, diags);
    check_phi_parallel_copies(func, plan, diags);
    if options.interference.operator_semantics {
        check_inplace_pairings(func, fid, &flow, types, plan, diags);
    }
    check_resize_annotations(func, fid, &flow, types, &sizes, options, plan, diags);
    check_engine_agreement(func, &flow, &prod, plan, diags);
    if options.coalesce && options.interference.phi_coalescing {
        check_phi_coalescing(func, fid, types, options, plan, &prod, diags);
    }

    let cfg_edges = func
        .block_ids()
        .map(|b| func.block(b).term.successors().len() as u64)
        .sum();
    Ok(AuditStats { cfg_edges })
}

// ---------------------------------------------------------------------
// Independent static sizing
// ---------------------------------------------------------------------

/// What the auditor can say about one variable's storage needs, derived
/// directly from the inferred facts (never from the planner's `Sizing`).
enum AuditSize {
    /// Compile-time size: total bytes and element count.
    Static { bytes: u64, numel: i64 },
    /// Run-time size: the interned symbolic element count.
    Dyn(ExprId),
}

struct AuditSizes {
    size: BTreeMap<VarId, AuditSize>,
    intrinsic: BTreeMap<VarId, Intrinsic>,
}

impl AuditSizes {
    fn compute(func: &FuncIr, fid: FuncId, types: &mut ProgramTypes) -> AuditSizes {
        let mut size: BTreeMap<VarId, AuditSize> = BTreeMap::new();
        let mut intrinsic: BTreeMap<VarId, Intrinsic> = BTreeMap::new();
        let mut phis: Vec<(VarId, Vec<VarId>)> = Vec::new();

        let mut vars: Vec<VarId> = func.params.clone();
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                vars.extend(instr.defs());
                if let InstrKind::Phi { dst, args } = &instr.kind {
                    phis.push((*dst, args.iter().map(|(_, v)| *v).collect()));
                }
            }
        }
        for v in vars {
            if size.contains_key(&v) {
                continue;
            }
            let Some(facts) = types.facts(fid, v).cloned() else {
                continue;
            };
            intrinsic.insert(v, facts.intrinsic);
            let elem = facts.intrinsic.byte_size();
            match facts.shape.known_dims(&types.ctx) {
                Some(dims) => {
                    let numel = dims.iter().product::<i64>().max(0);
                    size.insert(
                        v,
                        AuditSize::Static {
                            bytes: numel as u64 * elem,
                            numel,
                        },
                    );
                }
                None => {
                    let n = facts.shape.numel(&mut types.ctx);
                    size.insert(v, AuditSize::Dyn(n));
                }
            }
        }

        // §3.2.1 case 2: a φ whose inputs are all statically sizable is
        // itself static at the inputs' maximum — including φs whose own
        // inferred shape looked dynamic. Iterate for φ-chains.
        loop {
            let mut changed = false;
            for (dst, args) in &phis {
                if matches!(size.get(dst), Some(AuditSize::Static { .. })) {
                    continue;
                }
                let mut best: Option<(u64, i64)> = None;
                let mut all_static = !args.is_empty();
                for a in args {
                    match size.get(a) {
                        Some(AuditSize::Static { bytes, numel }) => {
                            if best.is_none_or(|(b, _)| *bytes > b) {
                                best = Some((*bytes, *numel));
                            }
                        }
                        _ => {
                            all_static = false;
                            break;
                        }
                    }
                }
                if all_static {
                    let (bytes, numel) = best.expect("non-empty φ");
                    size.insert(*dst, AuditSize::Static { bytes, numel });
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        AuditSizes { size, intrinsic }
    }

    fn static_bytes(&self, v: VarId) -> Option<u64> {
        match self.size.get(&v) {
            Some(AuditSize::Static { bytes, .. }) => Some(*bytes),
            _ => None,
        }
    }

    /// The element count, when it is a compile-time constant.
    fn const_numel(&self, v: VarId, types: &ProgramTypes) -> Option<i64> {
        match self.size.get(&v) {
            Some(AuditSize::Static { numel, .. }) => Some(*numel),
            Some(AuditSize::Dyn(n)) => types.ctx.as_const(*n),
            None => None,
        }
    }
}

// ---------------------------------------------------------------------
// A102 — structural consistency
// ---------------------------------------------------------------------

fn check_structure(func: &FuncIr, plan: &StoragePlan, diags: &mut Diagnostics) {
    let fname = &plan.func_name;
    for (v, si) in &plan.var_slot {
        if *si >= plan.slots.len() {
            diags.error(
                "A102",
                fname,
                format!(
                    "`{}` is bound to slot {si}, but the plan has only {} slots",
                    func.vars.display_name(*v),
                    plan.slots.len()
                ),
                None,
            );
            continue;
        }
        if !plan.slots[*si].members.contains(v) {
            diags.error(
                "A102",
                fname,
                format!(
                    "`{}` maps to slot {si} but is missing from that slot's member list",
                    func.vars.display_name(*v)
                ),
                None,
            );
        }
    }
    for (si, slot) in plan.slots.iter().enumerate() {
        for m in &slot.members {
            if plan.slot_of(*m) != Some(si) {
                diags.error(
                    "A102",
                    fname,
                    format!(
                        "slot {si} lists `{}` as a member, but `var_slot` disagrees",
                        func.vars.display_name(*m)
                    ),
                    None,
                );
            }
        }
    }
    for v in plan.resize.keys() {
        let heap = plan
            .slot_of(*v)
            .map(|si| matches!(plan.slots[si].kind, SlotKind::Heap));
        if heap != Some(true) {
            diags.error(
                "A102",
                fname,
                format!(
                    "resize annotation on `{}`, which is not bound to a heap slot",
                    func.vars.display_name(*v)
                ),
                None,
            );
        }
    }
}

// ---------------------------------------------------------------------
// A303 / A304 / A305 — slot sizing
// ---------------------------------------------------------------------

fn check_slot_sizing(
    func: &FuncIr,
    sizes: &AuditSizes,
    plan: &StoragePlan,
    diags: &mut Diagnostics,
) {
    let fname = &plan.func_name;
    for (si, slot) in plan.slots.iter().enumerate() {
        // A305: the slot's intrinsic must cover every member's inferred
        // intrinsic, or values widen silently when they land in the slot.
        for m in &slot.members {
            if let Some(it) = sizes.intrinsic.get(m) {
                if slot.intrinsic < *it {
                    diags.error(
                        "A305",
                        fname,
                        format!(
                            "slot {si} has intrinsic {:?}, below member `{}`'s inferred {:?}",
                            slot.intrinsic,
                            func.vars.display_name(*m),
                            it
                        ),
                        None,
                    );
                }
            }
        }
        let SlotKind::Stack { bytes } = slot.kind else {
            continue;
        };
        // A303: stack placement requires static estimability (§3.2.1).
        let mut max_bytes: Option<u64> = Some(0);
        for m in &slot.members {
            match sizes.static_bytes(*m) {
                Some(b) => max_bytes = max_bytes.map(|x| x.max(b)),
                None => {
                    diags.error(
                        "A303",
                        fname,
                        format!(
                            "stack slot {si} ({bytes} bytes) contains `{}`, whose size is not statically estimable",
                            func.vars.display_name(*m)
                        ),
                        None,
                    );
                    max_bytes = None;
                }
            }
        }
        // A304: the buffer must fit exactly the maximal member (Lemma 1:
        // a group's root is a maximal element; anything else either
        // overflows or wastes the paper's claimed savings).
        if let Some(need) = max_bytes {
            if need != bytes {
                diags.error(
                    "A304",
                    fname,
                    format!(
                        "stack slot {si} reserves {bytes} bytes but its maximal member needs {need}"
                    ),
                    None,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// A101 — liveness conflicts
// ---------------------------------------------------------------------

fn check_liveness_conflicts(
    func: &FuncIr,
    flow: &AuditFlow,
    plan: &StoragePlan,
    diags: &mut Diagnostics,
) {
    let fname = &plan.func_name;
    // Parameters materialise simultaneously at entry: two parameters in
    // one slot clobber each other if either is ever read.
    for (i, p) in func.params.iter().enumerate() {
        for q in &func.params[i + 1..] {
            if plan.share_storage(*p, *q)
                && (flow.live_in_contains(func.entry, *p) || flow.live_in_contains(func.entry, *q))
            {
                diags.error(
                    "A101",
                    fname,
                    format!(
                        "parameters `{}` and `{}` share slot {} at function entry",
                        func.vars.display_name(*p),
                        func.vars.display_name(*q),
                        plan.slot_of(*p).unwrap()
                    ),
                    None,
                );
            }
        }
    }
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            let defs = instr.defs();
            // Simultaneously defined outputs must land in distinct slots.
            for (di, d1) in defs.iter().enumerate() {
                for d2 in &defs[di + 1..] {
                    if plan.share_storage(*d1, *d2) {
                        diags.error(
                            "A101",
                            fname,
                            format!(
                                "`{}` and `{}` are defined by the same instruction yet share slot {}",
                                func.vars.display_name(*d1),
                                func.vars.display_name(*d2),
                                plan.slot_of(*d1).unwrap()
                            ),
                            Some(instr.span),
                        );
                    }
                }
            }
            // Writing `d` must not destroy a slot-mate that some later
            // (or concurrent terminator) read still needs. The candidate
            // set — live after ∧ available before — is a word-wise AND
            // over the two snapshot rows.
            for d in &defs {
                let Some(sd) = plan.slot_of(*d) else { continue };
                for w in flow.live_and_avail_at(b, i) {
                    if w != *d && plan.slot_of(w) == Some(sd) {
                        diags.error(
                            "A101",
                            fname,
                            format!(
                                "defining `{}` overwrites slot {sd} while slot-mate `{}` is live and available",
                                func.vars.display_name(*d),
                                func.vars.display_name(w)
                            ),
                            Some(instr.span),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A103 — φ parallel-copy conflicts
// ---------------------------------------------------------------------

fn check_phi_parallel_copies(func: &FuncIr, plan: &StoragePlan, diags: &mut Diagnostics) {
    type PhiRef<'a> = (
        &'a matc_ir::instr::Instr,
        VarId,
        &'a [(matc_ir::BlockId, VarId)],
    );
    let fname = &plan.func_name;
    for b in func.block_ids() {
        let phis: Vec<PhiRef> = func
            .block(b)
            .phis()
            .filter_map(|instr| match &instr.kind {
                InstrKind::Phi { dst, args } => Some((instr, *dst, args.as_slice())),
                _ => None,
            })
            .collect();
        for (pi, (instr, dst_i, args_i)) in phis.iter().enumerate() {
            let Some(sd) = plan.slot_of(*dst_i) else {
                continue;
            };
            for (pj, (_, _, args_j)) in phis.iter().enumerate() {
                if pi == pj {
                    continue;
                }
                for (pred, arg_j) in args_j.iter() {
                    if *arg_j == *dst_i {
                        continue;
                    }
                    // Copies on the same incoming edge run in parallel;
                    // reading the very same source value is harmless.
                    let own_arg = args_i.iter().find(|(p, _)| p == pred).map(|(_, a)| *a);
                    if own_arg == Some(*arg_j) {
                        continue;
                    }
                    if plan.slot_of(*arg_j) == Some(sd) {
                        diags.error(
                            "A103",
                            fname,
                            format!(
                                "φ writes `{}` into slot {sd} on edge from {pred} while a sibling φ still reads `{}` from it",
                                func.vars.display_name(*dst_i),
                                func.vars.display_name(*arg_j)
                            ),
                            Some(instr.span),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A201 — in-place operator pairings (§2.3, independent table)
// ---------------------------------------------------------------------

fn check_inplace_pairings(
    func: &FuncIr,
    fid: FuncId,
    flow: &AuditFlow,
    types: &ProgramTypes,
    plan: &StoragePlan,
    diags: &mut Diagnostics,
) {
    let fname = &plan.func_name;
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            let InstrKind::Compute { dst, op, args } = &instr.kind else {
                continue;
            };
            let Some(sd) = plan.slot_of(*dst) else {
                continue;
            };
            for (k, a) in args.iter().enumerate() {
                let Some(x) = a.as_var() else { continue };
                if x == *dst || plan.slot_of(x) != Some(sd) {
                    continue;
                }
                if flow.live_after_contains(b, i, x) {
                    continue; // a live slot-mate is A101's finding, not A201's
                }
                if !permits_in_place(op, k, args, fid, types) {
                    diags.error(
                        "A201",
                        fname,
                        format!(
                            "`{}` is computed by `{}` into slot {sd} over its operand `{}`, but §2.3 forbids running {} in place in operand {k}",
                            func.vars.display_name(*dst),
                            op.mnemonic(),
                            func.vars.display_name(x),
                            op.mnemonic()
                        ),
                        Some(instr.span),
                    );
                }
            }
        }
    }
}

/// The §2.3 operator table, re-derived from the paper: may `op`'s result
/// overwrite operand `k` while it is being produced? Returns `false`
/// whenever the answer is unclear.
fn permits_in_place(
    op: &Op,
    k: usize,
    args: &[Operand],
    fid: FuncId,
    types: &ProgramTypes,
) -> bool {
    let scalar = |v: VarId| {
        types
            .facts(fid, v)
            .map(|f| f.shape.is_scalar(&types.ctx))
            .unwrap_or(false)
    };
    let vector_or_scalar = |v: VarId| {
        types
            .facts(fid, v)
            .map(|f| f.shape.is_scalar(&types.ctx) || f.shape.is_vector(&types.ctx))
            .unwrap_or(false)
    };
    match op {
        // True matrix operations combine elements from arbitrary
        // positions; only a proven-scalar operand degrades them to a
        // positionally-aligned (hence in-place safe) map.
        Op::Bin(BinOp::MatMul | BinOp::MatDiv | BinOp::MatLeftDiv | BinOp::MatPow) => {
            args.iter().filter_map(|a| a.as_var()).any(scalar)
        }
        // Every other binary form — elementwise arithmetic, comparisons,
        // logicals, short-circuits — reads element i no later than it
        // writes element i.
        Op::Bin(_) => true,
        // Transposition permutes addresses; safe only when the layout
        // makes the permutation trivial (scalars and vectors).
        Op::Un(UnOp::Transpose | UnOp::CTranspose) => args
            .first()
            .and_then(|a| a.as_var())
            .is_some_and(vector_or_scalar),
        Op::Un(_) => true,
        // a(subs…): a monotone gather when every subscript is `:` or a
        // scalar; an array subscript may read positions already written
        // (the paper's `4:-1:1` flip). Subscript operands themselves are
        // consumed before any write.
        Op::Subsref => {
            k != 0
                || args[1..].iter().all(|s| match s {
                    Operand::ColonAll => true,
                    Operand::Var(v) => scalar(*v),
                })
        }
        // a(subs…) = r: §2.3.3.1's backwards fill makes the array
        // operand safe and nothing else.
        Op::Subsasgn => k == 0,
        Op::Range2 | Op::Range3 => true,
        // Concatenation relocates every operand; overlap is fatal.
        Op::MatrixBuild { .. } => false,
        Op::Builtin(bi) => {
            bi.is_elementwise_map()
                || bi.is_scalar_valued()
                || matches!(
                    bi,
                    Builtin::Zeros | Builtin::Ones | Builtin::Eye | Builtin::Rand
                )
                || (matches!(bi, Builtin::Max | Builtin::Min) && args.len() == 2)
        }
        // A user call computes in the callee's frame and stores last.
        Op::Call(_) => true,
    }
}

// ---------------------------------------------------------------------
// A301 / A302 / L004 — resize annotations (§3.2.2)
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn check_resize_annotations(
    func: &FuncIr,
    _fid: FuncId,
    flow: &AuditFlow,
    types: &mut ProgramTypes,
    sizes: &AuditSizes,
    options: GctdOptions,
    plan: &StoragePlan,
    diags: &mut Diagnostics,
) {
    let fname = &plan.func_name;
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            for d in instr.defs() {
                let Some(sd) = plan.slot_of(d) else { continue };
                if !matches!(plan.slots[sd].kind, SlotKind::Heap) {
                    continue;
                }
                match plan.resize_of(d) {
                    // `±` re-fits the slot to the definition: always
                    // sound — but dead weight if the auditor can prove
                    // the slot is already exactly the right size, by the
                    // very witness rule A301 demands of `∘` (L004,
                    // precision headroom the planner left on the table).
                    // Gated on the plan's own options, like A201/A401: a
                    // `symbolic_criterion: false` plan deliberately
                    // forgoes size witnesses, so its `±` annotations are
                    // ablation policy, not dead weight.
                    ResizeKind::Resize => {
                        if instr.is_phi() || !options.symbolic_criterion {
                            continue;
                        }
                        let witnessed = plan.slots[sd].members.iter().any(|u| {
                            *u != d
                                && flow.available_at_def(*u, d)
                                && provably_same_numel(*u, d, sizes, types)
                        });
                        if witnessed {
                            diags.warning(
                                "L004",
                                fname,
                                format!(
                                    "`{}` is annotated `±` (resize) but an earlier slot-{sd} value provably has the same size — the resize can never trigger",
                                    func.vars.display_name(d)
                                ),
                                Some(instr.span),
                            );
                        }
                    }
                    // `+` relies on the §2.3.3 growth guarantee, which
                    // only subsasgn into the *same* storage provides.
                    // (No L004 here: the planner annotates *every*
                    // self-slot subsasgn `+` by design — the growth
                    // guard doubles as the bounds check — so a
                    // provably-in-bounds `+` is planner policy, not a
                    // dead annotation.)
                    ResizeKind::Grow => {
                        let ok = matches!(
                            &instr.kind,
                            InstrKind::Compute { op: Op::Subsasgn, args, .. }
                                if matches!(args.first(), Some(Operand::Var(a))
                                    if plan.slot_of(*a) == Some(sd))
                        );
                        if !ok {
                            diags.error(
                                "A302",
                                fname,
                                format!(
                                    "`{}` is annotated `+` (grow) but is not a subsasgn into its own slot {sd}",
                                    func.vars.display_name(d)
                                ),
                                Some(instr.span),
                            );
                        }
                    }
                    // `∘` claims the slot already holds exactly the right
                    // size. A φ merges values already resident; anything
                    // else needs a same-slot predecessor of provably
                    // identical element count.
                    ResizeKind::NoResize => {
                        if instr.is_phi() {
                            continue;
                        }
                        let witnessed = plan.slots[sd].members.iter().any(|u| {
                            *u != d
                                && flow.available_at_def(*u, d)
                                && provably_same_numel(*u, d, sizes, types)
                        });
                        if !witnessed {
                            diags.error(
                                "A301",
                                fname,
                                format!(
                                    "`{}` is annotated `∘` (no resize) but no earlier slot-{sd} value provably has the same size",
                                    func.vars.display_name(d)
                                ),
                                Some(instr.span),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Whether `u` and `d` provably hold the same number of elements.
fn provably_same_numel(u: VarId, d: VarId, sizes: &AuditSizes, types: &mut ProgramTypes) -> bool {
    match (sizes.size.get(&u), sizes.size.get(&d)) {
        (Some(AuditSize::Dyn(nu)), Some(AuditSize::Dyn(nd))) => {
            if nu == nd {
                return true;
            }
            let (nu, nd) = (*nu, *nd);
            if types.ctx.provably_ge(nu, nd) && types.ctx.provably_ge(nd, nu) {
                return true;
            }
            matches!(
                (types.ctx.as_const(nu), types.ctx.as_const(nd)),
                (Some(a), Some(b)) if a == b
            )
        }
        (Some(_), Some(_)) => {
            matches!(
                (sizes.const_numel(u, types), sizes.const_numel(d, types)),
                (Some(a), Some(b)) if a == b
            )
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// A5xx — engine-vs-engine cross-validation
// ---------------------------------------------------------------------

/// Compares the auditor's recomputed block facts against the production
/// engine's, word for word. The two engines share nothing but the IR:
/// the auditor's worklist transfer functions, summaries and snapshot
/// peeling all live in this crate. Agreement is therefore strong
/// evidence both are right; any divergence is an instant bug report on
/// whichever side is wrong (A501 liveness, A502 availability, A503
/// reachability).
fn check_engine_agreement(
    func: &FuncIr,
    flow: &AuditFlow,
    prod: &Dataflow,
    plan: &StoragePlan,
    diags: &mut Diagnostics,
) {
    let fname = &plan.func_name;
    let popcount = |row: &[u64]| row.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    for b in func.block_ids() {
        let bi = b.index();
        if flow.live_out_row(b) != prod.live_out_bits().row(bi) {
            diags.error(
                "A501",
                fname,
                format!("live-out of {b} diverges between the audit and production engines"),
                None,
            );
        }
        // Production live-in is an ordered-free set; compare by
        // membership plus cardinality.
        if prod.live_in[bi].len() != popcount(flow.live_in_row(b))
            || prod.live_in[bi]
                .iter()
                .any(|v| !flow.live_in_contains(b, *v))
        {
            diags.error(
                "A501",
                fname,
                format!("live-in of {b} diverges between the audit and production engines"),
                None,
            );
        }
        if flow.avail_out_row(b) != prod.avail_out_bits().row(bi) {
            diags.error(
                "A502",
                fname,
                format!("avail-out of {b} diverges between the audit and production engines"),
                None,
            );
        }
        for c in func.block_ids() {
            if flow.block_reaches(b, c) != prod.block_reaches(b, c) {
                diags.error(
                    "A503",
                    fname,
                    format!(
                        "reachability {b} → {c} diverges between the audit and production engines"
                    ),
                    None,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// A401 — φ-coalescing completeness (warning)
// ---------------------------------------------------------------------

fn check_phi_coalescing(
    func: &FuncIr,
    fid: FuncId,
    types: &mut ProgramTypes,
    options: GctdOptions,
    plan: &StoragePlan,
    flow: &Dataflow,
    diags: &mut Diagnostics,
) {
    // This check deliberately consults the production interference graph:
    // the question is not "is the plan unsound" but "did the planner
    // leave an SSA-inversion copy on the table without recording a
    // conflict that justifies it". The production dataflow behind the
    // graph is the same instance A5xx already cross-validated.
    let graph = {
        let ftypes = &types.funcs[fid.index()];
        InterferenceGraph::build(func, flow, ftypes, types, options.interference)
    };
    let fname = &plan.func_name;
    for b in func.block_ids() {
        for instr in func.block(b).phis() {
            let InstrKind::Phi { dst, args } = &instr.kind else {
                continue;
            };
            for (_, x) in args {
                if graph.is_immediate(*x) || graph.is_immediate(*dst) {
                    continue;
                }
                if !plan.share_storage(*dst, *x) && !graph.interferes(*dst, *x) {
                    diags.warning(
                        "A401",
                        fname,
                        format!(
                            "φ argument `{}` was not coalesced with `{}` and no interference justifies the copy",
                            func.vars.display_name(*x),
                            func.vars.display_name(*dst)
                        ),
                        Some(instr.span),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;
    use matc_typeinf::infer_program;

    fn prep(src: &str) -> (IrProgram, ProgramTypes, ProgramPlan) {
        let ast = parse_program([src]).unwrap();
        let ir = build_ssa(&ast).unwrap();
        let mut types = infer_program(&ir);
        let plans = matc_gctd::plan_program(&ir, &mut types, GctdOptions::default());
        (ir, types, plans)
    }

    #[test]
    fn engine_agreement_flags_foreign_facts() {
        // Cross-validate facts computed from two *different* functions:
        // the straight-line function's facts cannot match the branchy
        // function's, so every A5xx sub-check must have teeth.
        let (ir_a, _, plans_a) =
            prep("function y = f(x)\nif x > 0\ny = x + 1;\nelse\ny = x - 1;\nend\n");
        let (ir_b, _, _) = prep("function y = f(x)\ny = x + 1;\nz = y * 2;\ny = z;\n");
        let fa = ir_a.entry_func();
        let fb = ir_b.entry_func();
        let flow = AuditFlow::compute(fa);
        let foreign = Dataflow::compute(fb);
        // Only meaningful when the block universes line up enough to
        // compare; the branchy function has strictly more blocks, so
        // compare the entry block's facts at minimum.
        let mut d = Diagnostics::new();
        if fa.vars.len() == fb.vars.len() && fa.blocks.len() == fb.blocks.len() {
            check_engine_agreement(fa, &flow, &foreign, plans_a.plan(FuncId::new(0)), &mut d);
            assert!(d.has_errors(), "foreign facts must diverge");
        } else {
            // Same function, same facts: agreement holds.
            let own = Dataflow::compute(fa);
            check_engine_agreement(fa, &flow, &own, plans_a.plan(FuncId::new(0)), &mut d);
            assert!(d.is_empty(), "{}", d.render());
        }
    }

    #[test]
    fn engine_agreement_holds_on_matching_engines() {
        let (ir, _, plans) = prep("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n");
        let f = ir.entry_func();
        let flow = AuditFlow::compute(f);
        let prod = Dataflow::compute(f);
        let mut d = Diagnostics::new();
        check_engine_agreement(f, &flow, &prod, plans.plan(FuncId::new(0)), &mut d);
        assert!(d.is_empty(), "{}", d.render());
    }

    #[test]
    fn preds_threaded_entry_matches_plain_entry() {
        // The satellite contract: computing `predecessors()` once and
        // passing it through must not change a single diagnostic.
        let src =
            "function f(n)\na = rand(n, n);\nb = a + 1;\nfor i = 1:n\nb = b * 2;\nend\ndisp(b);\n";
        let (ir, mut types, plans) = prep(src);
        let fid = FuncId::new(0);
        let func = ir.func(fid);

        let mut plain = Diagnostics::new();
        audit_function(
            func,
            fid,
            &mut types,
            plans.plan(fid),
            plans.options,
            &mut plain,
        );

        let preds = func.predecessors();
        let budget = Budget::unlimited();
        let mut threaded = Diagnostics::new();
        let stats = audit_function_budgeted(
            func,
            fid,
            &mut types,
            plans.plan(fid),
            plans.options,
            &preds,
            &budget,
            &mut threaded,
        )
        .unwrap();
        assert_eq!(plain.to_json(), threaded.to_json());
        assert!(stats.cfg_edges > 0, "loops have edges");
    }

    #[test]
    fn budget_trip_in_audit_surfaces_as_error() {
        let src = "function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n";
        let (ir, mut types, plans) = prep(src);
        let fid = FuncId::new(0);
        let func = ir.func(fid);
        let preds = func.predecessors();
        let budget = Budget::new(None, Some(1));
        budget.enter_phase("audit");
        let mut d = Diagnostics::new();
        let err = audit_function_budgeted(
            func,
            fid,
            &mut types,
            plans.plan(fid),
            plans.options,
            &preds,
            &budget,
            &mut d,
        )
        .expect_err("one unit of fuel cannot audit a loop");
        assert_eq!(err.phase, "audit");
    }
}
