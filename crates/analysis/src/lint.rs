//! Frontend lints over the parsed AST.
//!
//! These share the [`Diagnostics`] sink with the plan auditor so `matc
//! audit` reports source-level hygiene and plan soundness in one pass:
//!
//! | code | finding |
//! |------|---------|
//! | L001 | a variable is assigned but never read |
//! | L002 | an assignment shadows a builtin function |
//! | L003 | an array is grown element-by-element inside a loop (§3.2.2's resize-churn case — preallocate instead) |
//!
//! All lints are warnings: none affects the soundness verdict.

use crate::diagnostics::Diagnostics;
use matc_frontend::ast::{Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use matc_frontend::span::Span;
use matc_ir::Builtin;
use std::collections::{BTreeMap, BTreeSet};

/// Lints every function of a parsed program.
pub fn lint_program(ast: &Program) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for f in &ast.functions {
        lint_function(f, &mut diags);
    }
    diags
}

fn lint_function(f: &Function, diags: &mut Diagnostics) {
    unused_variables(f, diags);
    shadowed_builtins(f, diags);
    loop_growth(f, diags);
}

// ---------------------------------------------------------------------
// L001 — unused variables
// ---------------------------------------------------------------------

/// Names written and read across a function body. `For`-loop counters
/// are not tracked as writes (an unused counter is idiomatic), and an
/// un-semicolon'd assignment counts as a read — displaying the value is
/// using it.
#[derive(Default)]
struct UseDef {
    /// First write site per name.
    writes: BTreeMap<String, Span>,
    reads: BTreeSet<String>,
}

impl UseDef {
    fn read_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(n) => {
                self.reads.insert(n.clone());
            }
            ExprKind::Apply { name, args } => {
                // Indexing and calls parse identically; either way the
                // name's value is consumed.
                self.reads.insert(name.clone());
                for a in args {
                    self.read_expr(a);
                }
            }
            ExprKind::Unary { operand, .. } => self.read_expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.read_expr(lhs);
                self.read_expr(rhs);
            }
            ExprKind::Range { start, step, stop } => {
                self.read_expr(start);
                if let Some(s) = step {
                    self.read_expr(s);
                }
                self.read_expr(stop);
            }
            ExprKind::Matrix { rows } => {
                for row in rows {
                    for e in row {
                        self.read_expr(e);
                    }
                }
            }
            ExprKind::Number(_)
            | ExprKind::ImagNumber(_)
            | ExprKind::Str(_)
            | ExprKind::End
            | ExprKind::Colon => {}
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, span: Span, display: bool) {
        match lv {
            LValue::Var(n) => {
                self.writes.entry(n.clone()).or_insert(span);
            }
            LValue::Index { name, args } => {
                self.writes.entry(name.clone()).or_insert(span);
                for a in args {
                    self.read_expr(a);
                }
            }
            LValue::Ignore => {}
        }
        if display {
            if let Some(n) = lv.var_name() {
                self.reads.insert(n.to_string());
            }
        }
    }

    fn visit(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign { lhs, rhs, display } => {
                    self.read_expr(rhs);
                    self.write_lvalue(lhs, s.span, *display);
                }
                StmtKind::MultiAssign {
                    lhss,
                    args,
                    display,
                    ..
                } => {
                    for a in args {
                        self.read_expr(a);
                    }
                    for lv in lhss {
                        self.write_lvalue(lv, s.span, *display);
                    }
                }
                StmtKind::ExprStmt { expr, .. } => self.read_expr(expr),
                StmtKind::If { arms, else_body } => {
                    for (cond, body) in arms {
                        self.read_expr(cond);
                        self.visit(body);
                    }
                    if let Some(body) = else_body {
                        self.visit(body);
                    }
                }
                StmtKind::While { cond, body } => {
                    self.read_expr(cond);
                    self.visit(body);
                }
                StmtKind::For { iter, body, .. } => {
                    // The counter itself is exempt from L001.
                    self.read_expr(iter);
                    self.visit(body);
                }
                StmtKind::Break | StmtKind::Continue | StmtKind::Return => {}
            }
        }
    }
}

fn unused_variables(f: &Function, diags: &mut Diagnostics) {
    let mut ud = UseDef::default();
    ud.visit(&f.body);
    for (name, span) in &ud.writes {
        if ud.reads.contains(name) {
            continue;
        }
        // Outputs are read by the caller; parameters are the caller's
        // choice to pass.
        if f.outs.iter().any(|o| o == name) || f.params.iter().any(|p| p == name) {
            continue;
        }
        diags.warning(
            "L001",
            &f.name,
            format!("`{name}` is assigned but never read"),
            Some(*span),
        );
    }
}

// ---------------------------------------------------------------------
// L002 — shadowed builtins
// ---------------------------------------------------------------------

fn shadowed_builtins(f: &Function, diags: &mut Diagnostics) {
    let mut flagged: BTreeSet<String> = BTreeSet::new();
    let mut check = |name: &str, span: Span, diags: &mut Diagnostics, f: &Function| {
        if Builtin::from_name(name).is_some() && flagged.insert(name.to_string()) {
            diags.warning(
                "L002",
                &f.name,
                format!("`{name}` shadows the builtin function of the same name"),
                Some(span),
            );
        }
    };
    for p in &f.params {
        check(p, f.span, diags, f);
    }
    let mut walk = |stmts: &[Stmt]| {
        // Iterative worklist: no recursion needed for a flat scan.
        let mut stack: Vec<&Stmt> = stmts.iter().collect();
        while let Some(s) = stack.pop() {
            match &s.kind {
                StmtKind::Assign { lhs, .. } => {
                    if let Some(n) = lhs.var_name() {
                        check(n, s.span, diags, f);
                    }
                }
                StmtKind::MultiAssign { lhss, .. } => {
                    for lv in lhss {
                        if let Some(n) = lv.var_name() {
                            check(n, s.span, diags, f);
                        }
                    }
                }
                StmtKind::For { var, body, .. } => {
                    check(var, s.span, diags, f);
                    stack.extend(body.iter());
                }
                StmtKind::If { arms, else_body } => {
                    for (_, body) in arms {
                        stack.extend(body.iter());
                    }
                    if let Some(body) = else_body {
                        stack.extend(body.iter());
                    }
                }
                StmtKind::While { body, .. } => stack.extend(body.iter()),
                _ => {}
            }
        }
    };
    walk(&f.body);
}

// ---------------------------------------------------------------------
// L003 — array growth inside loops
// ---------------------------------------------------------------------

fn loop_growth(f: &Function, diags: &mut Diagnostics) {
    let mut initialized: BTreeSet<String> = f.params.iter().cloned().collect();
    let mut warned: BTreeSet<String> = BTreeSet::new();
    visit_growth(&f.body, false, &mut initialized, &mut warned, f, diags);
}

fn visit_growth(
    stmts: &[Stmt],
    in_loop: bool,
    initialized: &mut BTreeSet<String>,
    warned: &mut BTreeSet<String>,
    f: &Function,
    diags: &mut Diagnostics,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { lhs, .. } => match lhs {
                LValue::Var(n) => {
                    initialized.insert(n.clone());
                }
                LValue::Index { name, .. } => {
                    if in_loop && !initialized.contains(name) && warned.insert(name.clone()) {
                        diags.warning(
                            "L003",
                            &f.name,
                            format!(
                                "`{name}` is grown element-by-element inside a loop; preallocate it (e.g. with zeros) before the loop"
                            ),
                            Some(s.span),
                        );
                    }
                    initialized.insert(name.clone());
                }
                LValue::Ignore => {}
            },
            StmtKind::MultiAssign { lhss, .. } => {
                for lv in lhss {
                    if let Some(n) = lv.var_name() {
                        initialized.insert(n.to_string());
                    }
                }
            }
            StmtKind::If { arms, else_body } => {
                for (_, body) in arms {
                    visit_growth(body, in_loop, initialized, warned, f, diags);
                }
                if let Some(body) = else_body {
                    visit_growth(body, in_loop, initialized, warned, f, diags);
                }
            }
            StmtKind::While { body, .. } => {
                visit_growth(body, true, initialized, warned, f, diags);
            }
            StmtKind::For { var, body, .. } => {
                initialized.insert(var.clone());
                visit_growth(body, true, initialized, warned, f, diags);
            }
            StmtKind::ExprStmt { .. } | StmtKind::Break | StmtKind::Continue | StmtKind::Return => {
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;

    fn lint(src: &str) -> Diagnostics {
        let ast = parse_program([src]).unwrap();
        lint_program(&ast)
    }

    fn codes(d: &Diagnostics) -> Vec<&'static str> {
        d.iter().map(|x| x.code).collect()
    }

    #[test]
    fn unused_variable_flagged() {
        let d = lint("function f(x)\nu = x + 1;\ndisp(x);\n");
        assert_eq!(codes(&d), vec!["L001"], "{}", d.render());
    }

    #[test]
    fn used_display_params_outs_and_counters_are_fine() {
        // `v` is displayed (no semicolon), outputs and params don't
        // count, and an unused for-counter is idiomatic.
        let d = lint("function y = f(x)\nv = x + 1\ny = 2;\nfor i = 1:3\ny = y + 1;\nend\n");
        assert!(d.is_empty(), "{}", d.render());
    }

    #[test]
    fn shadowed_builtin_flagged() {
        let d = lint("function f(x)\nsum = x + 1;\ndisp(sum);\n");
        assert_eq!(codes(&d), vec!["L002"], "{}", d.render());
    }

    #[test]
    fn loop_growth_flagged_once() {
        let d = lint("function f(n)\nfor k = 1:n\na(k) = k;\nend\ndisp(a);\n");
        assert_eq!(codes(&d), vec!["L003"], "{}", d.render());
    }

    #[test]
    fn preallocated_loop_writes_are_fine() {
        let d = lint("function f(n)\na = zeros(1, n);\nfor k = 1:n\na(k) = k;\nend\ndisp(a);\n");
        assert!(d.is_empty(), "{}", d.render());
    }

    #[test]
    fn lints_are_warnings_only() {
        let d = lint("function f(n)\nfor k = 1:n\na(k) = k;\nend\n");
        assert!(!d.is_empty());
        assert!(!d.has_errors());
    }
}
