//! The plan-validating shadow layer: observed storage behaviour vs the
//! static [`StoragePlan`].
//!
//! The GCTD plan makes *claims* about run time — a `∘`-annotated
//! definition never resizes its slot (§3.2.2), a `Stack { bytes }` slot
//! is large enough for every member (§3.2.1), a slot is only touched
//! where the auditor's liveness facts say a member is live. The planned
//! VM (and, optionally, the probed C runtime) records what storage
//! *actually does* into a [`ShadowLog`]; [`replay`] diffs the log
//! against the plan and classifies every divergence:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | S101 | error    | a `∘` definition was observed resizing its heap slot |
//! | S102 | error    | observed bytes exceeded a `Stack { bytes }` slot |
//! | S103 | warning  | a `±` definition never resized across the run (precision headroom) |
//! | S104 | error    | a slot read outside the auditor's liveness facts |
//! | S105 | error    | Equation 2 recomputed from the log disagrees with the recorder |
//!
//! S101/S102 are soundness bugs — the generated C would write out of
//! bounds. S103 is the precision headroom "Compiling with Arrays"-style
//! destination passing would reclaim. S104 cross-checks the dynamic
//! trace against [`AuditFlow`]'s static liveness, and S105 closes the
//! loop on the paper's Equation 2 memory accounting: the time-weighted
//! average heap recomputed from the logged piecewise-constant heap
//! levels must agree with [`matc_runtime::mem::MemRecorder`]'s own
//! integral (the log carries `(clock, level)` after every heap event,
//! so the reconstruction is exact in integer arithmetic).
//!
//! [`StoragePlan`]: matc_gctd::StoragePlan

use crate::dataflow::AuditFlow;
use crate::diagnostics::Diagnostics;
use matc_gctd::{ProgramPlan, ResizeKind, SlotKind};
use matc_ir::ids::{BlockId, VarId};
use matc_ir::IrProgram;
use std::collections::{BTreeMap, BTreeSet};

/// What a definition did to its slot's storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefAction {
    /// Wrote a fixed stack slot (no heap traffic).
    Stack,
    /// First allocation of the slot's heap block.
    Alloc,
    /// The heap block was reallocated to fit this definition.
    Realloc,
    /// The existing heap block was reused as-is.
    Reuse,
}

/// Aggregated observations for one `(function, variable)` definition
/// site across the whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefStats {
    /// Definitions executed.
    pub defs: u64,
    /// First allocations performed.
    pub allocs: u64,
    /// Reallocations performed.
    pub reallocs: u64,
    /// Peak bytes any single definition needed.
    pub max_needed: u64,
}

/// Aggregated observations for one `(function, slot)` pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotStats {
    /// Definitions landing in the slot.
    pub defs: u64,
    /// Peak bytes any definition needed.
    pub peak_needed: u64,
    /// Peak bytes charged to the heap for the slot's block.
    pub peak_charged: u64,
}

/// The in-memory probe log: slot allocs, resizes, peak bytes and reads,
/// per slot per function, plus the heap-level timeline for Equation 2.
///
/// Keys are raw indices (`FuncId::index()`, `VarId::index()`,
/// `BlockId::index()`, slot index) so the recording side needs no
/// analysis types.
#[derive(Debug, Clone, Default)]
pub struct ShadowLog {
    /// Per-`(function, variable)` definition statistics.
    pub defs: BTreeMap<(usize, usize), DefStats>,
    /// Per-`(function, slot)` statistics.
    pub slots: BTreeMap<(usize, usize), SlotStats>,
    /// Observed slot reads: `(function, block, variable)`.
    pub reads: BTreeSet<(usize, usize, usize)>,
    /// `(clock, live heap bytes)` sampled immediately after every heap
    /// alloc / realloc / free — the piecewise-constant heap level.
    pub heap_events: Vec<(u64, u64)>,
    /// Function activations observed.
    pub frames: u64,
}

impl ShadowLog {
    /// An empty log.
    pub fn new() -> ShadowLog {
        ShadowLog::default()
    }

    /// Records a function activation.
    pub fn record_frame(&mut self) {
        self.frames += 1;
    }

    /// Records a definition of variable `var` into `slot` of function
    /// `func`, needing `needed` bytes with `charged` bytes now held.
    pub fn record_def(
        &mut self,
        func: usize,
        var: usize,
        slot: usize,
        needed: u64,
        charged: u64,
        action: DefAction,
    ) {
        let d = self.defs.entry((func, var)).or_default();
        d.defs += 1;
        d.max_needed = d.max_needed.max(needed);
        match action {
            DefAction::Alloc => d.allocs += 1,
            DefAction::Realloc => d.reallocs += 1,
            DefAction::Stack | DefAction::Reuse => {}
        }
        let s = self.slots.entry((func, slot)).or_default();
        s.defs += 1;
        s.peak_needed = s.peak_needed.max(needed);
        s.peak_charged = s.peak_charged.max(charged);
    }

    /// Records a read of slot-resident variable `var` in `block` of
    /// function `func`.
    pub fn record_read(&mut self, func: usize, block: usize, var: usize) {
        self.reads.insert((func, block, var));
    }

    /// Records the heap level right after an alloc / realloc / free.
    pub fn record_heap_event(&mut self, clock: u64, level: u64) {
        self.heap_events.push((clock, level));
    }

    /// Total definition events recorded.
    pub fn def_events(&self) -> u64 {
        self.defs.values().map(|d| d.defs).sum()
    }

    /// Equation 2's time-weighted average heap level, reconstructed
    /// from the logged piecewise-constant `(clock, level)` samples over
    /// `elapsed` logical ticks. Exact integer integration, mirroring
    /// [`matc_runtime::mem::MemRecorder::avg_heap`].
    pub fn avg_heap(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return self.heap_events.last().map_or(0.0, |&(_, l)| l as f64);
        }
        let mut weight = 0u128;
        let (mut prev_t, mut prev_level) = (0u64, 0u64);
        for &(t, level) in &self.heap_events {
            weight += u128::from(t.saturating_sub(prev_t)) * u128::from(prev_level);
            prev_t = t;
            prev_level = level;
        }
        weight += u128::from(elapsed.saturating_sub(prev_t)) * u128::from(prev_level);
        weight as f64 / elapsed as f64
    }
}

/// Per-code finding counts of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowCounts {
    /// `∘` definitions observed resizing.
    pub s101: usize,
    /// Stack slots observed overflowing.
    pub s102: usize,
    /// `±` definitions that never resized.
    pub s103: usize,
    /// Slot reads outside the liveness facts.
    pub s104: usize,
    /// Equation 2 disagreements.
    pub s105: usize,
}

/// The outcome of diffing one run's [`ShadowLog`] against the plan.
#[derive(Debug, Clone)]
pub struct ShadowReport {
    /// S-code findings, in deterministic order.
    pub diags: Diagnostics,
    /// Finding counts by code.
    pub counts: ShadowCounts,
    /// Function activations observed.
    pub frames: u64,
    /// Definition events observed.
    pub defs: u64,
    /// Distinct `(function, block, variable)` reads observed.
    pub reads: u64,
    /// Heap alloc / realloc / free events observed.
    pub heap_events: u64,
    /// The VM's plan-violation counter for the run.
    pub plan_violations: u64,
    /// Equation 2 average heap recomputed from the log.
    pub avg_heap_observed: f64,
    /// Equation 2 average heap per the memory recorder.
    pub avg_heap_recorded: f64,
}

/// Replays a [`ShadowLog`] against the storage plan and the auditor's
/// dataflow facts, classifying every plan-vs-reality divergence.
///
/// `ssa` must be the optimized SSA program the plan was computed for —
/// the form *before* SSA inversion (see `compile_traced` in the VM
/// crate). Blocks and variables introduced by the inversion (split-edge
/// blocks, copy temporaries) fall outside it and are skipped by the
/// liveness cross-check.
#[must_use]
pub fn replay(
    ssa: &IrProgram,
    plans: &ProgramPlan,
    log: &ShadowLog,
    plan_violations: u64,
    avg_heap_recorded: f64,
    elapsed: u64,
) -> ShadowReport {
    let mut diags = Diagnostics::new();
    let mut counts = ShadowCounts::default();

    let name_of = |fi: usize, var: usize| -> String {
        let f = &ssa.functions[fi];
        if var < f.vars.len() {
            f.vars.display_name(VarId::new(var))
        } else {
            format!("v{var}")
        }
    };

    // S101 / S103: per-definition annotation vs observed resizes.
    for (&(fi, var), d) in &log.defs {
        let plan = &plans.plans[fi];
        let v = VarId::new(var);
        let Some(si) = plan.slot_of(v) else { continue };
        if !matches!(plan.slots[si].kind, SlotKind::Heap) {
            continue;
        }
        match plan.resize_of(v) {
            ResizeKind::NoResize if d.reallocs > 0 => {
                counts.s101 += 1;
                diags.error(
                    "S101",
                    &plan.func_name,
                    format!(
                        "`∘` definition of `{}` (slot {si}) observed resizing {} time(s) \
                         to {} bytes",
                        name_of(fi, var),
                        d.reallocs,
                        d.max_needed
                    ),
                    None,
                );
            }
            ResizeKind::Resize if d.defs > 0 && d.reallocs == 0 => {
                counts.s103 += 1;
                diags.warning(
                    "S103",
                    &plan.func_name,
                    format!(
                        "`±` definition of `{}` (slot {si}) never resized across the run \
                         ({} def(s), peak {} bytes) — precision headroom",
                        name_of(fi, var),
                        d.defs,
                        d.max_needed
                    ),
                    None,
                );
            }
            _ => {}
        }
    }

    // S102: observed peak bytes vs declared stack-slot capacity.
    for (&(fi, si), s) in &log.slots {
        let plan = &plans.plans[fi];
        if let SlotKind::Stack { bytes } = plan.slots[si].kind {
            if s.peak_needed > bytes {
                counts.s102 += 1;
                diags.error(
                    "S102",
                    &plan.func_name,
                    format!(
                        "stack slot {si} sized {bytes} bytes observed holding {} bytes",
                        s.peak_needed
                    ),
                    None,
                );
            }
        }
    }

    // S104: observed slot reads vs the auditor's liveness facts. A read
    // of `v` in block `b` is justified iff `v` is live into `b` or `b`
    // defines `v`; anything else means storage was touched outside the
    // live range the plan was audited against.
    let mut flows: BTreeMap<usize, AuditFlow> = BTreeMap::new();
    for &(fi, block, var) in &log.reads {
        let f = &ssa.functions[fi];
        if block >= f.blocks.len() || var >= f.vars.len() {
            continue; // introduced by SSA inversion; not in the audited CFG
        }
        let flow = flows
            .entry(fi)
            .or_insert_with(|| AuditFlow::compute(&ssa.functions[fi]));
        let b = BlockId::new(block);
        let v = VarId::new(var);
        let justified =
            flow.live_in_contains(b, v) || flow.def_site(v).is_some_and(|(db, _)| db == b);
        if !justified {
            counts.s104 += 1;
            diags.error(
                "S104",
                &ssa.functions[fi].name,
                format!(
                    "read of `{}` (slot {}) in {b} is outside the auditor's liveness facts",
                    name_of(fi, var),
                    plans.plans[fi].slot_of(v).unwrap_or(usize::MAX),
                ),
                None,
            );
        }
    }

    // S105: Equation 2 recomputed from the log vs the recorder.
    let avg_heap_observed = log.avg_heap(elapsed);
    let diff = (avg_heap_observed - avg_heap_recorded).abs();
    let scale = avg_heap_recorded.abs().max(1.0);
    if diff / scale > 1e-9 {
        counts.s105 += 1;
        diags.error(
            "S105",
            ssa.entry_func().name.clone(),
            format!(
                "Equation 2 average heap from the log is {avg_heap_observed:.3} bytes \
                 but the recorder integrated {avg_heap_recorded:.3} bytes"
            ),
            None,
        );
    }

    ShadowReport {
        diags,
        counts,
        frames: log.frames,
        defs: log.def_events(),
        reads: log.reads.len() as u64,
        heap_events: log.heap_events.len() as u64,
        plan_violations,
        avg_heap_observed,
        avg_heap_recorded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_gctd::{plan_program, GctdOptions};
    use matc_ir::build_ssa;
    use matc_typeinf::infer_program;

    fn planned(src: &str) -> (IrProgram, ProgramPlan) {
        let ast = parse_program([src]).unwrap();
        let ir = build_ssa(&ast).unwrap();
        let mut types = infer_program(&ir);
        let plans = plan_program(&ir, &mut types, GctdOptions::default());
        (ir, plans)
    }

    #[test]
    fn empty_log_is_clean() {
        let (ir, plans) = planned("function f()\nfprintf('%d\\n', 1);\n");
        let log = ShadowLog::new();
        let r = replay(&ir, &plans, &log, 0, 0.0, 0);
        assert!(r.diags.is_empty(), "{}", r.diags.render());
        assert_eq!(r.counts, ShadowCounts::default());
    }

    #[test]
    fn eq2_reconstruction_integrates_piecewise() {
        let mut log = ShadowLog::new();
        // level 100 over [10, 30), level 40 over [30, 50): (20*100 +
        // 20*40) / 50 = 56.
        log.record_heap_event(10, 100);
        log.record_heap_event(30, 40);
        log.record_heap_event(50, 0);
        assert!((log.avg_heap(50) - 56.0).abs() < 1e-12);
        // A disagreement is S105.
        let (ir, plans) = planned("function f()\nfprintf('%d\\n', 1);\n");
        let r = replay(&ir, &plans, &log, 0, 99.0, 50);
        assert_eq!(r.counts.s105, 1);
        assert!(r.diags.has_errors());
    }

    #[test]
    fn observed_resize_of_noresize_def_is_s101() {
        // `a = rand(3, 3)` gets a statically-estimable (`∘`-style)
        // definition; claim it realloc'd.
        let (ir, plans) = planned("function f()\na = rand(3, 3);\ndisp(a(1));\n");
        let (fi, v, si) = plans
            .plans
            .iter()
            .enumerate()
            .flat_map(|(fi, p)| {
                p.var_slot.iter().filter_map(move |(v, si)| {
                    (p.resize_of(*v) == ResizeKind::NoResize
                        && matches!(p.slots[*si].kind, SlotKind::Heap))
                    .then_some((fi, *v, *si))
                })
            })
            .next()
            // All-stack plan: force one heap slot for the test.
            .unwrap_or((0, VarId::new(0), 0));
        let mut plans = plans;
        // Ensure the variable is a heap `∘` definition regardless of
        // what the planner chose.
        plans.plans[fi].slots[si].kind = SlotKind::Heap;
        plans.plans[fi].resize.insert(v, ResizeKind::NoResize);
        plans.plans[fi].var_slot.insert(v, si);
        let mut log = ShadowLog::new();
        log.record_def(fi, v.index(), si, 72, 88, DefAction::Alloc);
        log.record_def(fi, v.index(), si, 144, 160, DefAction::Realloc);
        let r = replay(&ir, &plans, &log, 1, 0.0, 0);
        assert_eq!(r.counts.s101, 1, "{}", r.diags.render());
        assert!(r.diags.has_errors());
    }

    #[test]
    fn never_resizing_pm_def_is_s103() {
        let (ir, mut plans) = planned("function f()\na = rand(3, 3);\ndisp(a(1));\n");
        let (fi, v, si) = (0usize, VarId::new(0), 0usize);
        plans.plans[fi].slots[si].kind = SlotKind::Heap;
        plans.plans[fi].resize.insert(v, ResizeKind::Resize);
        plans.plans[fi].var_slot.insert(v, si);
        let mut log = ShadowLog::new();
        log.record_def(fi, v.index(), si, 72, 88, DefAction::Alloc);
        let r = replay(&ir, &plans, &log, 0, 0.0, 0);
        assert_eq!(r.counts.s103, 1, "{}", r.diags.render());
        assert!(!r.diags.has_errors(), "S103 is lint-level");
    }

    #[test]
    fn stack_overflow_is_s102_and_bogus_read_is_s104() {
        let (ir, plans) = planned("function f()\na = rand(3, 3);\ndisp(a(1));\n");
        let Some((fi, si, bytes)) = plans.plans.iter().enumerate().find_map(|(fi, p)| {
            p.slots.iter().enumerate().find_map(|(si, s)| match s.kind {
                SlotKind::Stack { bytes } => Some((fi, si, bytes)),
                SlotKind::Heap => None,
            })
        }) else {
            panic!("expected a stack slot for rand(3, 3)");
        };
        let member = plans.plans[fi].slots[si].members[0];
        let mut log = ShadowLog::new();
        log.record_def(fi, member.index(), si, bytes + 8, 0, DefAction::Stack);
        // Read in a block that cannot justify it: the function has one
        // or two blocks; a var read where it is neither live-in nor
        // defined. Use the entry block with a variable defined later —
        // or simply a read of `member` in a block where it is dead.
        // Find a block where `member` is not live-in and not defined.
        let flow = AuditFlow::compute(&ir.functions[fi]);
        let dead_block = ir.functions[fi]
            .block_ids()
            .find(|b| {
                !flow.live_in_contains(*b, member)
                    && flow.def_site(member).is_none_or(|(db, _)| db != *b)
            })
            .expect("some block must not contain the live range");
        log.record_read(fi, dead_block.index(), member.index());
        let r = replay(&ir, &plans, &log, 1, 0.0, 0);
        assert_eq!(r.counts.s102, 1, "{}", r.diags.render());
        assert_eq!(r.counts.s104, 1, "{}", r.diags.render());
        assert!(r.diags.has_errors());
    }
}
