//! Fault-tolerant variant of the [`crate::compile`] pipeline.
//!
//! [`compile_resilient`] produces exactly the same artifacts as
//! [`crate::compile::compile_audited`] when nothing goes wrong, but
//! survives three classes of failure by walking a *degradation ladder*
//! instead of crashing or emitting an unaudited plan:
//!
//! 1. **Planner panics.** Each function's GCTD plan is computed under
//!    [`isolate`]; a panic becomes a per-function fallback to the
//!    conservative all-heap (mcc-style) plan, re-audited before use.
//! 2. **Phase budget trips** ([`BudgetError`]). A fuel or wall-clock
//!    trip inside planning degrades that function like a panic does; a
//!    trip inside the optimizer or type inference re-lowers the whole
//!    unit conservatively (fresh unoptimized SSA, wall-clock-only
//!    budget, all-heap plans).
//! 3. **Audit violations.** When the independent auditor rejects a
//!    GCTD plan — a real soundness bug, or one injected via
//!    [`FaultSite::AuditViolation`] — the function falls back to the
//!    all-heap plan and is audited again. Only a fallback plan that
//!    *still* fails its audit aborts the unit.
//!
//! Every rung taken is recorded as a [`DegradationEvent`] (and budget
//! trips additionally as [`BudgetEvent`]s) in the unit's
//! [`UnitMetrics`], so `--stats` makes degradations visible. The
//! all-heap fallback is always sound — it is precisely the plan the
//! mcc model uses, with no storage sharing to get wrong — which is why
//! it anchors the bottom of the ladder.

use crate::compile::Compiled;
use matc_analysis::{audit_function_budgeted, lint_program, Diagnostics, Severity};
use matc_frontend::ast::Program;
use matc_gctd::{
    isolate, plan_function_budgeted, BudgetEvent, DegradationEvent, FaultPlan, FaultSite,
    GctdOptions, Phase, ProgramPlan, StoragePlan, UnitMetrics,
};
use matc_ir::ids::FuncId;
use matc_ir::lower::LowerError;
use matc_ir::{build_ssa, ssa_destruct, Budget, BudgetError, IrProgram};
use matc_passes::{optimize_program_budgeted, OptStats};
use matc_typeinf::{infer_program_budgeted, ProgramTypes};
use std::fmt;
use std::time::Instant;

/// Why a unit could not be compiled even with every ladder rung taken.
#[derive(Debug)]
pub enum ResilientError {
    /// Lowering failed (undefined names, unsupported constructs) — no
    /// ladder applies, the program never reached SSA.
    Lower(LowerError),
    /// The wall-clock budget was exceeded even on the conservative
    /// path (fuel trips never reach here; they degrade instead).
    Budget(BudgetError),
    /// The conservative fallback plan itself panicked — nothing sound
    /// is left to emit.
    FallbackPanic {
        /// The function whose fallback planning panicked.
        func: String,
        /// The captured panic message.
        message: String,
    },
    /// The conservative fallback plan failed its audit — the unit has
    /// a soundness problem no plan can paper over.
    FallbackAudit {
        /// The function whose fallback plan was rejected.
        func: String,
        /// Summary of the rejecting findings.
        detail: String,
    },
}

impl fmt::Display for ResilientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilientError::Lower(e) => e.fmt(f),
            ResilientError::Budget(e) => e.fmt(f),
            ResilientError::FallbackPanic { func, message } => {
                write!(f, "fallback plan for `{func}` panicked: {message}")
            }
            ResilientError::FallbackAudit { func, detail } => {
                write!(f, "fallback plan for `{func}` failed its audit: {detail}")
            }
        }
    }
}

impl std::error::Error for ResilientError {}

impl From<LowerError> for ResilientError {
    fn from(e: LowerError) -> ResilientError {
        ResilientError::Lower(e)
    }
}

/// Panics when the seeded plan says this probe fires — the injection
/// point exercised by `FaultSite::PhasePanic`.
fn maybe_panic(faults: &FaultPlan, key: &str) {
    if faults.fires(FaultSite::PhasePanic, key) {
        panic!("injected fault: panic at `{key}`");
    }
}

/// One line summarizing the error findings of a rejected audit.
fn summarize_errors(d: &Diagnostics) -> String {
    let first = d
        .iter()
        .find(|f| f.severity == Severity::Error)
        .map(|f| f.to_string())
        .unwrap_or_default();
    format!("{} audit error(s); first: {first}", d.error_count())
}

fn note_budget(rec: &mut UnitMetrics, be: &BudgetError) {
    rec.budget_exceeded.push(BudgetEvent {
        phase: be.phase.to_string(),
        kind: be.kind.to_string(),
    });
}

fn degrade(rec: &mut UnitMetrics, func: &str, stage: &'static str, reason: String) {
    rec.degradations.push(DegradationEvent {
        unit: rec.unit.clone(),
        func: func.to_string(),
        stage,
        reason,
    });
}

/// The [`crate::compile::compile_audited`] pipeline with the
/// degradation ladder, phase budgets and fault-injection probes (see
/// the module docs). With an unlimited budget and a quiet fault plan
/// the output is byte-identical to the non-resilient pipeline.
///
/// Degradations and budget trips are recorded in `rec`; the returned
/// [`Diagnostics`] always describe the plans actually emitted (a
/// degraded function contributes its *fallback* plan's findings — the
/// rejected plan's findings live in the degradation event's reason).
///
/// # Errors
///
/// Returns a [`ResilientError`] only when no rung of the ladder can
/// produce a sound artifact: lowering failures, wall-clock exhaustion
/// on the conservative path, or a fallback plan that panics or fails
/// its own audit.
///
/// # Panics
///
/// Injected `PhasePanic` faults at the optimizer and type-inference
/// probes deliberately panic out of this function (the batch driver's
/// unit-level [`isolate`] turns them into structured unit failures);
/// planner panics are caught here and degraded instead.
pub fn compile_resilient(
    ast: &Program,
    options: GctdOptions,
    budget: &Budget,
    faults: FaultPlan,
    rec: &mut UnitMetrics,
) -> Result<(Compiled, Diagnostics), ResilientError> {
    let mut front = compile_front(ast, options, budget, &faults, rec)?;
    let mut plans_vec: Vec<StoragePlan> = Vec::with_capacity(front.ir.functions.len());
    let mut audit_diags = Diagnostics::new();
    for i in 0..front.ir.functions.len() {
        let (plan, fd) = compile_function(&mut front, FuncId::new(i), budget, &faults, rec)?;
        audit_diags.merge(fd);
        plans_vec.push(plan);
    }
    Ok(assemble_compiled(ast, front, plans_vec, audit_diags, rec))
}

/// The unit-level half of the pipeline, everything that runs *before*
/// per-function planning: SSA build, the optimizer, and type inference,
/// with the unit-level rungs of the degradation ladder applied. The
/// incremental batch driver runs this half unconditionally (it is what
/// fragment cache keys are computed from), then compiles only the
/// functions whose fragments miss.
pub struct FrontHalf {
    /// The optimized (or, in conservative mode, freshly re-lowered)
    /// SSA program, before SSA destruction.
    pub ir: IrProgram,
    /// Inferred types. Planning one function only appends interned
    /// expressions to this context; it never rewrites another
    /// function's facts, which is what makes per-function caching
    /// sound.
    pub types: ProgramTypes,
    /// Optimizer statistics for the whole unit.
    pub opt_stats: OptStats,
    /// Whether a unit-level budget trip forced conservative mode
    /// (all-heap plans from unoptimized SSA).
    pub conservative: bool,
    /// The planning options actually in effect (the all-heap fallback
    /// configuration when [`FrontHalf::conservative`] is set).
    pub plan_options: GctdOptions,
    fallback_options: GctdOptions,
    unit: String,
}

/// Runs the front half of [`compile_resilient`] (see [`FrontHalf`]).
///
/// # Errors
///
/// Fails only for the unit-level reasons [`compile_resilient`] does:
/// lowering errors, expired deadlines, or budget exhaustion already on
/// the conservative path.
pub fn compile_front(
    ast: &Program,
    options: GctdOptions,
    budget: &Budget,
    faults: &FaultPlan,
    rec: &mut UnitMetrics,
) -> Result<FrontHalf, ResilientError> {
    // A request whose deadline already passed (queue wait under load)
    // fails fast before any phase runs: the ladder cannot buy time back.
    if budget.deadline_expired() {
        let be = BudgetError {
            phase: "start",
            kind: matc_ir::BudgetKind::Deadline,
        };
        note_budget(rec, &be);
        return Err(ResilientError::Budget(be));
    }

    let unit = rec.unit.clone();
    let s = ast.stats();
    rec.ast_functions = s.functions;
    rec.ast_statements = s.statements;
    rec.ast_expressions = s.expressions;

    let t = Instant::now();
    let mut ir = build_ssa(ast)?;
    rec.record(Phase::SsaBuild, t.elapsed());

    // Unit-level conservative mode: entered when the optimizer or type
    // inference trips its budget. The unit restarts from a fresh,
    // unoptimized lowering under a wall-clock-only budget (re-spending
    // the exhausted fuel on the cheaper path would trip instantly).
    let mut conservative = false;

    let t = Instant::now();
    maybe_panic(faults, &format!("{unit}/optimize"));
    let opt_stats = match optimize_program_budgeted(&mut ir, budget) {
        Ok(s) => s,
        Err(be) => {
            note_budget(rec, &be);
            if be.kind == matc_ir::BudgetKind::Deadline {
                // The request deadline has passed: no rung of the
                // ladder can finish in time, so fail fast instead of
                // burning more wall clock on the conservative path.
                return Err(ResilientError::Budget(be));
            }
            degrade(rec, "", "optimize_budget", be.to_string());
            conservative = true;
            OptStats::default()
        }
    };
    if conservative {
        // Discard the partially-optimized IR: the conservative path
        // compiles what the programmer wrote, not a half-transformed
        // intermediate state.
        ir = build_ssa(ast)?;
    }
    rec.record(Phase::Optimize, t.elapsed());
    rec.opt_removed = opt_stats.total();
    rec.ir_functions = ir.functions.len();
    rec.ir_blocks = ir.functions.iter().map(|f| f.blocks.len()).sum();
    rec.ir_instrs = ir
        .functions
        .iter()
        .flat_map(|f| f.blocks.iter())
        .map(|b| b.instrs.len())
        .sum();
    rec.ir_vars = ir.functions.iter().map(|f| f.vars.len()).sum();

    let relaxed = budget.without_fuel();

    let t = Instant::now();
    maybe_panic(faults, &format!("{unit}/type_infer"));
    let infer_budget = if conservative { &relaxed } else { budget };
    let types = match infer_program_budgeted(&ir, infer_budget) {
        Ok(ty) => ty,
        Err(be) => {
            note_budget(rec, &be);
            if conservative || be.kind == matc_ir::BudgetKind::Deadline {
                // Already on the cheapest path (or out of request
                // deadline); the unit genuinely cannot be compiled in
                // time.
                return Err(ResilientError::Budget(be));
            }
            degrade(rec, "", "type_infer_budget", be.to_string());
            conservative = true;
            ir = build_ssa(ast)?;
            infer_program_budgeted(&ir, &relaxed).map_err(ResilientError::Budget)?
        }
    };
    rec.record(Phase::TypeInfer, t.elapsed());
    let ts = types.summary();
    rec.typeinf_facts = ts.facts;
    rec.typeinf_scalars = ts.scalars;

    // `fallback_options` is the mcc-style all-heap configuration —
    // [`plan_function_budgeted`] short-circuits to
    // `plan_without_coalescing` when `coalesce` is off, so the fallback
    // never runs the coloring machinery that failed.
    let fallback_options = GctdOptions {
        coalesce: false,
        ..options
    };
    let plan_options = if conservative {
        fallback_options
    } else {
        options
    };
    Ok(FrontHalf {
        ir,
        types,
        opt_stats,
        conservative,
        plan_options,
        fallback_options,
        unit,
    })
}

/// Plans and audits one function through the per-function rungs of the
/// degradation ladder (configured plan → audit → all-heap fallback).
/// Returns the emitted plan together with that function's audit
/// findings; the caller merges the findings across functions.
///
/// # Errors
///
/// Fails only when no rung can produce a sound plan for this function
/// — budget exhaustion on the conservative path, or a fallback plan
/// that panics or fails its own audit.
pub fn compile_function(
    front: &mut FrontHalf,
    fid: FuncId,
    budget: &Budget,
    faults: &FaultPlan,
    rec: &mut UnitMetrics,
) -> Result<(StoragePlan, Diagnostics), ResilientError> {
    let FrontHalf {
        ir,
        types,
        conservative,
        plan_options,
        fallback_options,
        unit,
        ..
    } = front;
    let (conservative, plan_options, fallback_options) =
        (*conservative, *plan_options, *fallback_options);
    let relaxed = budget.without_fuel();
    let fname = ir.func(fid).name.clone();
    let plan_budget = if conservative { &relaxed } else { budget };

    // Rung 1: the configured plan, isolated and budgeted.
    let attempt = isolate(|| {
        maybe_panic(faults, &format!("{unit}/{fname}/plan"));
        plan_function_budgeted(
            ir.func(fid),
            fid,
            types,
            plan_options,
            plan_budget,
            Some(rec),
        )
    });
    let mut failure: Option<(&'static str, String)> = None;
    let mut plan = match attempt {
        Ok(Ok(p)) => Some(p),
        Ok(Err(be)) => {
            note_budget(rec, &be);
            if (be.kind == matc_ir::BudgetKind::WallClock && conservative)
                || be.kind == matc_ir::BudgetKind::Deadline
            {
                return Err(ResilientError::Budget(be));
            }
            failure = Some(("plan_budget", be.to_string()));
            None
        }
        Err(msg) => {
            failure = Some(("plan_panic", msg));
            None
        }
    };

    // Rung 2: audit the configured plan under the same budget the
    // plan ran on; a violation (real or injected) demotes the
    // function to the fallback, and so does a budget trip — the
    // audit's partial findings are discarded with it.
    let preds = ir.func(fid).predecessors();
    let mut audit_diags = Diagnostics::new();
    if let Some(p) = &plan {
        let t = Instant::now();
        let mut fd = Diagnostics::new();
        let audited = audit_function_budgeted(
            ir.func(fid),
            fid,
            types,
            p,
            plan_options,
            &preds,
            plan_budget,
            &mut fd,
        );
        rec.record(Phase::Audit, t.elapsed());
        match audited {
            Err(be) => {
                note_budget(rec, &be);
                if (be.kind == matc_ir::BudgetKind::WallClock && conservative)
                    || be.kind == matc_ir::BudgetKind::Deadline
                {
                    return Err(ResilientError::Budget(be));
                }
                failure = Some(("audit_budget", be.to_string()));
                plan = None;
            }
            Ok(stats) => {
                let injected = plan_options.coalesce
                    && faults.fires(FaultSite::AuditViolation, &format!("{unit}/{fname}"));
                if fd.has_errors() || injected {
                    failure = Some((
                        "audit",
                        if fd.has_errors() {
                            summarize_errors(&fd)
                        } else {
                            "injected audit violation".to_string()
                        },
                    ));
                    plan = None;
                } else {
                    rec.audit_edges += stats.cfg_edges;
                    audit_diags.merge(fd);
                }
            }
        }
    }

    // Rung 3: the all-heap fallback, re-audited before use.
    let plan = match plan {
        Some(p) => p,
        None => {
            let (stage, reason) = failure.expect("missing plan implies a recorded failure");
            degrade(rec, &fname, stage, reason);
            let fb = isolate(|| {
                plan_function_budgeted(ir.func(fid), fid, types, fallback_options, &relaxed, None)
            });
            let fb = match fb {
                Ok(Ok(p)) => p,
                Ok(Err(be)) => return Err(ResilientError::Budget(be)),
                Err(message) => {
                    return Err(ResilientError::FallbackPanic {
                        func: fname,
                        message,
                    })
                }
            };
            let t = Instant::now();
            let mut fd = Diagnostics::new();
            let audited = audit_function_budgeted(
                ir.func(fid),
                fid,
                types,
                &fb,
                fallback_options,
                &preds,
                &relaxed,
                &mut fd,
            );
            rec.record(Phase::Audit, t.elapsed());
            let stats = audited.map_err(ResilientError::Budget)?;
            if fd.has_errors() {
                return Err(ResilientError::FallbackAudit {
                    func: fname,
                    detail: summarize_errors(&fd),
                });
            }
            rec.audit_edges += stats.cfg_edges;
            audit_diags.merge(fd);
            fb
        }
    };
    Ok((plan, audit_diags))
}

/// The back half of [`compile_resilient`]: lints, merges the
/// per-function audit findings, records the plan totals, destroys SSA
/// form under the plans' sharing relation, and packages the
/// [`Compiled`] unit. The incremental batch driver only reaches this
/// point on full recompiles; composed partial hits stitch cached
/// fragments instead.
pub fn assemble_compiled(
    ast: &Program,
    front: FrontHalf,
    plans_vec: Vec<StoragePlan>,
    audit_diags: Diagnostics,
    rec: &mut UnitMetrics,
) -> (Compiled, Diagnostics) {
    let FrontHalf {
        mut ir,
        types,
        opt_stats,
        plan_options,
        ..
    } = front;
    let plans = ProgramPlan {
        plans: plans_vec,
        options: plan_options,
    };
    rec.plan = plans.total_stats();

    let t = Instant::now();
    let mut diags = lint_program(ast);
    diags.merge(audit_diags);
    rec.record(Phase::Audit, t.elapsed());
    rec.audit_errors = diags.error_count();
    rec.audit_warnings = diags.warning_count();

    let t = Instant::now();
    for (i, f) in ir.functions.iter_mut().enumerate() {
        let plan = &plans.plans[i];
        ssa_destruct(f, |dst, src| plan.share_storage(dst, src));
    }
    rec.record(Phase::SsaInvert, t.elapsed());

    (
        Compiled {
            ir,
            plans,
            types,
            opt_stats,
        },
        diags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_audited;
    use matc_frontend::parser::parse_program;
    use std::time::Duration;

    fn sample() -> Program {
        parse_program([
            "function f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n",
        ])
        .unwrap()
    }

    fn run(
        ast: &Program,
        budget: &Budget,
        faults: FaultPlan,
    ) -> (Result<(Compiled, Diagnostics), ResilientError>, UnitMetrics) {
        let mut m = UnitMetrics::new("t");
        let r = compile_resilient(ast, GctdOptions::default(), budget, faults, &mut m);
        (r, m)
    }

    #[test]
    fn clean_run_matches_compile_audited() {
        let ast = sample();
        let mut m_ref = UnitMetrics::new("t");
        let (reference, ref_diags) =
            compile_audited(&ast, GctdOptions::default(), Some(&mut m_ref)).unwrap();
        let (res, m) = run(&ast, &Budget::unlimited(), FaultPlan::quiet(0));
        let (compiled, diags) = res.unwrap();
        assert_eq!(diags.to_json(), ref_diags.to_json());
        assert!(m.degradations.is_empty());
        assert!(m.budget_exceeded.is_empty());
        // Identical plans ⇒ identical slots text and stats.
        assert_eq!(compiled.plans.total_stats(), reference.plans.total_stats());
        assert_eq!(m.plan, m_ref.plan);
        assert_eq!(m.ir_instrs, m_ref.ir_instrs);
    }

    #[test]
    fn injected_audit_violation_degrades_to_all_heap() {
        let ast = sample();
        let (res, m) = run(
            &ast,
            &Budget::unlimited(),
            FaultPlan::quiet(5).audit_violations(100),
        );
        let (compiled, diags) = res.unwrap();
        assert_eq!(diags.error_count(), 0, "fallback plans audit clean");
        assert_eq!(m.degradations.len(), 1);
        assert_eq!(m.degradations[0].stage, "audit");
        assert!(m.degradations[0].reason.contains("injected"));
        // The emitted plan really is the all-heap one: no stack slots.
        for p in &compiled.plans.plans {
            assert!(p
                .slots
                .iter()
                .all(|s| matches!(s.kind, matc_gctd::SlotKind::Heap)));
        }
    }

    #[test]
    fn planner_panic_degrades_to_all_heap() {
        let ast = sample();
        // A seed whose 50% panic rate hits the planner probe for `f`
        // but misses the unit-level optimize/type_infer probes — panic
        // decisions are keyed, so such seeds are dense.
        let seed = (0..10_000u64)
            .find(|s| {
                let p = FaultPlan::quiet(*s).panics(50);
                p.fires(FaultSite::PhasePanic, "t/f/plan")
                    && !p.fires(FaultSite::PhasePanic, "t/optimize")
                    && !p.fires(FaultSite::PhasePanic, "t/type_infer")
            })
            .expect("a plan-only panic seed exists");
        let (res, m) = run(
            &ast,
            &Budget::unlimited(),
            FaultPlan::quiet(seed).panics(50),
        );
        let (_compiled, diags) = res.unwrap();
        assert_eq!(diags.error_count(), 0, "fallback plan audits clean");
        assert_eq!(m.degradations.len(), 1);
        assert_eq!(m.degradations[0].stage, "plan_panic");
        assert!(m.degradations[0].reason.contains("injected fault"));
    }

    #[test]
    fn unit_level_panic_probes_propagate_for_the_driver_to_isolate() {
        let ast = sample();
        let caught = isolate(|| run(&ast, &Budget::unlimited(), FaultPlan::quiet(5).panics(100)));
        let msg = caught.expect_err("100% panic rate fires at optimize");
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn expired_request_deadline_fails_fast_without_degrading() {
        let ast = sample();
        let budget = Budget::new(None, None)
            .with_deadline(std::time::Instant::now() - Duration::from_millis(1));
        let (res, m) = run(&ast, &budget, FaultPlan::quiet(0));
        match res {
            Err(ResilientError::Budget(be)) => {
                assert_eq!(be.kind, matc_ir::BudgetKind::Deadline);
            }
            other => panic!("expected a deadline budget error, got {other:?}"),
        }
        assert!(
            m.degradations.is_empty(),
            "an out-of-time request must not burn time on the conservative path"
        );
        assert_eq!(m.budget_exceeded.len(), 1);
        assert_eq!(m.budget_exceeded[0].kind, "deadline");
    }

    #[test]
    fn generous_deadline_compiles_identically_to_unlimited() {
        let ast = sample();
        let budget = Budget::new(None, None)
            .with_deadline(std::time::Instant::now() + Duration::from_secs(3600));
        let (res, m) = run(&ast, &budget, FaultPlan::quiet(0));
        let (compiled, diags) = res.unwrap();
        assert_eq!(diags.error_count(), 0);
        assert!(m.degradations.is_empty() && m.budget_exceeded.is_empty());
        let (reference, _) = run(&ast, &Budget::unlimited(), FaultPlan::quiet(0))
            .0
            .unwrap();
        assert_eq!(compiled.plans.total_stats(), reference.plans.total_stats());
    }

    #[test]
    fn tiny_fuel_degrades_but_still_compiles() {
        let ast = sample();
        let budget = Budget::new(None, Some(1));
        let (res, m) = run(&ast, &budget, FaultPlan::quiet(0));
        let (_compiled, diags) = res.unwrap();
        assert_eq!(diags.error_count(), 0);
        assert!(
            !m.budget_exceeded.is_empty(),
            "one-unit fuel must trip somewhere"
        );
        assert!(!m.degradations.is_empty());
    }
}
