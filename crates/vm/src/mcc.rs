//! The mcc-model baseline VM (§4.4).
//!
//! Reproduces how The MathWorks' `mcc` 2.2 generated C behaves at run
//! time: **every** array — scalars included — is a heap-allocated
//! `mxArray` with an 88-byte descriptor; library operators perform
//! run-time conformance checks (modeled as a fixed dispatch cost per
//! operation); assignments share data copy-on-write; temporaries are
//! freed immediately after use. No static storage analysis is applied:
//! the VM executes the *unoptimized* IR (see
//! [`crate::compile::lower_for_mcc`]).

use crate::dispatch::{self, Arg, Shared};
use matc_ir::ids::{FuncId, VarId};
use matc_ir::instr::{Const, InstrKind, Op, Operand, Terminator};
use matc_ir::{Builtin, FuncIr, IrProgram};
use matc_runtime::error::{err, Result};
use matc_runtime::format;
use matc_runtime::mem::{ImageModel, MemRecorder};
use matc_runtime::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// The `mxArray` descriptor size in mcc 2.2 (§4.4).
pub const MX_HEADER: u64 = 88;

/// Modeled per-operation run-time dispatch/conformance cost (logical
/// clock units).
pub const DISPATCH_COST: u64 = 24;

/// One variable binding: shared data plus the bytes charged to it.
struct Binding {
    data: Rc<Value>,
    charged: u64,
}

/// The mcc-model executor.
pub struct MccVm<'p> {
    ir: &'p IrProgram,
    /// Shared RNG + output.
    pub shared: Shared,
    /// Heap-only memory accounting under the mcc image model.
    pub mem: MemRecorder,
    call_depth: usize,
}

impl<'p> MccVm<'p> {
    /// Creates an executor over (unoptimized) non-SSA IR.
    pub fn new(ir: &'p IrProgram) -> MccVm<'p> {
        MccVm {
            ir,
            shared: Shared::new(),
            mem: MemRecorder::new(ImageModel::mcc()),
            call_depth: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shared = Shared::with_seed(seed);
        self
    }

    /// Runs the entry function; returns collected output.
    ///
    /// # Errors
    ///
    /// Propagates run-time errors.
    pub fn run(&mut self) -> Result<String> {
        let entry = self
            .ir
            .entry
            .ok_or_else(|| matc_runtime::RtError::new("program has no entry function"))?;
        self.call(entry, vec![])?;
        Ok(std::mem::take(&mut self.shared.out))
    }

    fn call(&mut self, fid: FuncId, args: Vec<Rc<Value>>) -> Result<Vec<Rc<Value>>> {
        self.call_depth += 1;
        // MATLAB's default RecursionLimit is 100; enforcing it also
        // bounds the host stack in debug builds.
        if self.call_depth > 100 {
            self.call_depth -= 1;
            return err("maximum recursion depth exceeded");
        }
        let func = self.ir.func(fid);
        let mut frame: HashMap<VarId, Binding> = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            // Arguments are passed as handles; mcc allocates a fresh
            // descriptor per formal.
            let charged = self.mem.heap_alloc(MX_HEADER);
            frame.insert(*p, Binding { data: v, charged });
        }
        let result = self.exec(func, &mut frame);
        // Free everything still bound.
        for (_, b) in frame.drain() {
            self.mem.heap_free(b.charged);
        }
        self.call_depth -= 1;
        result
    }

    fn exec(
        &mut self,
        func: &'p FuncIr,
        frame: &mut HashMap<VarId, Binding>,
    ) -> Result<Vec<Rc<Value>>> {
        let mut block = func.entry;
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > 500_000_000 {
                return err("execution exceeded the instruction guard");
            }
            for instr in &func.block(block).instrs {
                self.instr(func, instr, frame)?;
            }
            match &func.block(block).term {
                Terminator::Jump(b) => block = *b,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.read(*cond, frame)?;
                    // Run-time truth check costs a dispatch.
                    self.mem.advance(DISPATCH_COST / 4);
                    block = if c.is_true() { *then_bb } else { *else_bb };
                }
                Terminator::Return => {
                    let outs = if func.ssa_outs.is_empty() {
                        func.outs.clone()
                    } else {
                        func.ssa_outs.clone()
                    };
                    let mut vals = Vec::with_capacity(outs.len());
                    for o in outs {
                        vals.push(
                            frame
                                .get(&o)
                                .map(|b| Rc::clone(&b.data))
                                .unwrap_or_else(|| Rc::new(Value::empty())),
                        );
                    }
                    return Ok(vals);
                }
            }
        }
    }

    fn read(&self, v: VarId, frame: &HashMap<VarId, Binding>) -> Result<Rc<Value>> {
        frame
            .get(&v)
            .map(|b| Rc::clone(&b.data))
            .ok_or_else(|| matc_runtime::RtError::new("read of unset variable (mcc vm)"))
    }

    /// Binds `v` to a freshly allocated mxArray holding `data`.
    fn bind_new(&mut self, v: VarId, data: Value, frame: &mut HashMap<VarId, Binding>) {
        let charged = self.mem.heap_alloc(MX_HEADER + data.payload_bytes());
        if let Some(old) = frame.insert(
            v,
            Binding {
                data: Rc::new(data),
                charged,
            },
        ) {
            self.mem.heap_free(old.charged);
        }
    }

    /// Binds `v` as a copy-on-write alias of existing data (only a new
    /// descriptor is allocated).
    fn bind_alias(&mut self, v: VarId, data: Rc<Value>, frame: &mut HashMap<VarId, Binding>) {
        let charged = self.mem.heap_alloc(MX_HEADER);
        if let Some(old) = frame.insert(v, Binding { data, charged }) {
            self.mem.heap_free(old.charged);
        }
    }

    fn instr(
        &mut self,
        _func: &FuncIr,
        instr: &'p matc_ir::Instr,
        frame: &mut HashMap<VarId, Binding>,
    ) -> Result<()> {
        match &instr.kind {
            InstrKind::Const { dst, value } => {
                let v = const_value(value);
                self.mem.advance(1);
                self.bind_new(*dst, v, frame);
            }
            InstrKind::Copy { dst, src } => {
                // Copy-on-write sharing: descriptor only.
                let data = self.read(*src, frame)?;
                self.mem.advance(1);
                self.bind_alias(*dst, data, frame);
            }
            InstrKind::Compute { dst, op, args } => {
                let result = self.compute(op, args, frame)?;
                let cost = result.numel() as u64 + DISPATCH_COST;
                self.mem.advance(cost);
                self.bind_new(*dst, result, frame);
            }
            InstrKind::Phi { .. } => {
                return err("mcc vm executes non-SSA code; φ encountered");
            }
            InstrKind::CallMulti {
                dsts,
                func: name,
                args,
            } => {
                let vals = self.gather(args, frame)?;
                if let Some(fid) = self.ir.by_name.get(name).copied() {
                    let outs = self.call(fid, vals)?;
                    for (d, o) in dsts.iter().zip(outs) {
                        self.bind_alias(*d, o, frame);
                    }
                } else if let Some(b) = Builtin::from_name(name) {
                    let refs: Vec<&Value> = vals.iter().map(|r| r.as_ref()).collect();
                    let outs = dispatch::eval_builtin_multi(
                        b,
                        dsts.len().max(1),
                        &refs,
                        &mut self.shared,
                    )?;
                    self.mem.advance(DISPATCH_COST);
                    for (d, o) in dsts.iter().zip(outs) {
                        self.bind_new(*d, o, frame);
                    }
                } else {
                    return err(format!("undefined function `{name}`"));
                }
            }
            InstrKind::Display { value, label } => {
                let v = self.read(*value, frame)?;
                self.shared.out.push_str(&format::echo(label, &v));
                self.mem.advance(4);
            }
            InstrKind::Effect { builtin, args } => {
                let vals = self.gather(args, frame)?;
                let refs: Vec<&Value> = vals.iter().map(|r| r.as_ref()).collect();
                dispatch::eval_builtin(*builtin, &refs, &mut self.shared)?;
                self.mem.advance(DISPATCH_COST);
            }
        }
        Ok(())
    }

    fn gather(
        &mut self,
        args: &[Operand],
        frame: &HashMap<VarId, Binding>,
    ) -> Result<Vec<Rc<Value>>> {
        args.iter()
            .map(|a| match a {
                Operand::Var(v) => self.read(*v, frame),
                Operand::ColonAll => err("unexpected `:` outside subscripts"),
            })
            .collect()
    }

    fn compute(
        &mut self,
        op: &Op,
        args: &[Operand],
        frame: &mut HashMap<VarId, Binding>,
    ) -> Result<Value> {
        if let Op::Call(name) = op {
            let vals = self.gather(args, frame)?;
            let fid = *self
                .ir
                .by_name
                .get(name)
                .ok_or_else(|| matc_runtime::RtError::new(format!("undefined `{name}`")))?;
            let mut outs = self.call(fid, vals)?;
            return outs
                .drain(..)
                .next()
                .map(|rc| (*rc).clone())
                .ok_or_else(|| matc_runtime::RtError::new(format!("`{name}` returned nothing")));
        }
        // Hold strong references so Arg borrows stay valid.
        let mut held: Vec<Option<Rc<Value>>> = Vec::with_capacity(args.len());
        for a in args {
            held.push(match a {
                Operand::Var(v) => Some(self.read(*v, frame)?),
                Operand::ColonAll => None,
            });
        }
        let arg_refs: Vec<Arg<'_>> = held
            .iter()
            .map(|h| match h {
                Some(rc) => Arg::Val(rc.as_ref()),
                None => Arg::Colon,
            })
            .collect();
        dispatch::eval_op(op, &arg_refs, &mut self.shared)
    }
}

fn const_value(c: &Const) -> Value {
    match c {
        Const::Num(v) => Value::scalar(*v),
        Const::Imag(v) => Value::complex_scalar(0.0, *v),
        Const::Str(s) => Value::string(s),
        Const::Empty => Value::empty(),
        Const::Bool(b) => Value::logical(*b),
    }
}

/// Exposes the constant conversion for other executors.
pub(crate) fn value_of_const(c: &Const) -> Value {
    const_value(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::lower_for_mcc;
    use matc_frontend::parser::parse_program;

    fn run(srcs: &[&str]) -> (String, MemStats) {
        let ast = parse_program(srcs.iter().copied()).unwrap();
        let ir = lower_for_mcc(&ast).unwrap();
        let mut vm = MccVm::new(&ir);
        let out = vm.run().unwrap_or_else(|e| panic!("mcc vm error: {e}"));
        (
            out,
            MemStats {
                live_blocks: vm.mem.live_blocks(),
                avg_heap: vm.mem.avg_heap(),
            },
        )
    }

    struct MemStats {
        live_blocks: u64,
        avg_heap: f64,
    }

    #[test]
    fn executes_loops() {
        let (out, _) =
            run(&["function f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n"]);
        assert_eq!(out, "55\n");
    }

    #[test]
    fn all_storage_freed_at_exit() {
        let (_, stats) =
            run(&["function f()\na = rand(10, 10);\nb = a + 1;\nfprintf('%g\\n', sum(sum(b)));\n"]);
        assert_eq!(stats.live_blocks, 0, "all mxArrays released");
    }

    #[test]
    fn heap_reflects_mxarray_headers() {
        // Even a scalar-only program pays 88 bytes per live scalar.
        let (_, stats) = run(&["function f()\nx = 1;\ny = 2;\nz = x + y;\nfprintf('%d\\n', z);\n"]);
        assert!(stats.avg_heap > 0.0);
    }

    #[test]
    fn user_calls_work() {
        let (out, _) = run(&[
            "function f()\nfprintf('%d\\n', g(4));\nend\nfunction y = g(n)\ny = n * n;\nend\n",
        ]);
        assert_eq!(out, "16\n");
    }

    #[test]
    fn matches_interpreter_output() {
        let src =
            "function f()\na = rand(5, 5);\nb = a * a;\nc = b(2, 3);\nfprintf('%.10f\\n', c);\n";
        let ast = parse_program([src]).unwrap();
        let ir = lower_for_mcc(&ast).unwrap();
        let mut vm = MccVm::new(&ir);
        let got = vm.run().unwrap();
        let mut interp = crate::interp::Interp::new(&ast);
        let want = interp.run().unwrap();
        assert_eq!(got, want);
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use crate::compile::lower_for_mcc;
    use matc_frontend::parser::parse_program;

    fn vm_after(src: &str) -> (String, MccVm<'static>) {
        // Leak the IR so the VM can be returned for inspection (tests
        // only; keeps the API lifetime honest elsewhere).
        let ast = parse_program([src]).unwrap();
        let ir = Box::leak(Box::new(lower_for_mcc(&ast).unwrap()));
        let mut vm = MccVm::new(ir);
        let out = vm.run().unwrap();
        (out, vm)
    }

    #[test]
    fn every_scalar_costs_a_descriptor() {
        // §4.4: "an mxArray structure ... will be allocated for scalars
        // that don't get folded at compile time" — the mcc model pays 88
        // bytes per live binding, so average heap exceeds payload bytes.
        let (_, vm) = vm_after(
            "function f()\nx = rand(1, 1);\ny = x + 1;\nz = y * 2;\nfprintf('%g\\n', z);\n",
        );
        assert!(
            vm.mem.avg_heap() > MX_HEADER as f64,
            "avg heap {} should exceed one descriptor",
            vm.mem.avg_heap()
        );
    }

    #[test]
    fn copies_share_payload_cow() {
        // A Copy binds an alias: only a descriptor is charged, so the
        // peak heap for `b = a` is far below two full payloads.
        let (_, vm) = vm_after("function f()\na = rand(64, 64);\nfprintf('%g\\n', a(1));\n");
        let single = vm.mem.peak_dynamic_data();
        // 64*64*8 = 32 KiB payload; peak should be near one payload, not
        // two (plus descriptors and the temporaries of a(1)).
        assert!(single < 2 * 64 * 64 * 8, "peak {single}");
    }

    #[test]
    fn dispatch_cost_advances_the_clock() {
        let (_, vm) = vm_after("function f()\nx = 1 + 1;\nfprintf('%d\\n', x);\n");
        assert!(vm.mem.elapsed() >= DISPATCH_COST);
    }

    #[test]
    fn deep_recursion_is_caught() {
        let ast = parse_program([
            "function f()\nfprintf('%d\\n', r(1));\nend\nfunction y = r(x)\ny = r(x + 1);\nend\n",
        ])
        .unwrap();
        let ir = lower_for_mcc(&ast).unwrap();
        let mut vm = MccVm::new(&ir);
        let e = vm.run().unwrap_err();
        assert!(e.message.contains("recursion"), "{e}");
    }
}
