//! # matc-vm
//!
//! The three executors of the PLDI 2003 evaluation:
//!
//! * [`interp::Interp`] — a tree-walking reference interpreter (the
//!   "MATLAB interpreter" bar of Figure 5 and the differential-testing
//!   oracle);
//! * [`mcc::MccVm`] — the mcc model (§4.4): every value a heap
//!   `mxArray` with an 88-byte descriptor, copy-on-write sharing,
//!   run-time dispatch on unoptimized IR;
//! * [`planned::PlannedVm`] — the mat2c model: optimized IR executed
//!   under a GCTD [`matc_gctd::StoragePlan`], with fixed stack frames,
//!   resize-on-the-fly heap slots and genuine in-place operations.
//!
//! All three share one operation dispatcher ([`dispatch`]) and one
//! seeded RNG stream, so outputs are bitwise comparable.
//!
//! ## Example
//!
//! ```
//! use matc_frontend::parser::parse_program;
//! use matc_gctd::GctdOptions;
//! use matc_vm::{compile::compile, interp::Interp, planned::PlannedVm};
//!
//! let src = "function f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n";
//! let ast = parse_program([src]).unwrap();
//! let compiled = compile(&ast, GctdOptions::default()).unwrap();
//! let out = PlannedVm::new(&compiled).run()?;
//! let reference = Interp::new(&ast).run()?;
//! assert_eq!(out, reference);
//! # Ok::<(), matc_runtime::RtError>(())
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod dispatch;
pub mod interp;
pub mod mcc;
pub mod planned;
pub mod resilient;

pub use compile::{compile, compile_audited, compile_with, lower_for_mcc, Compiled};
pub use interp::Interp;
pub use mcc::{MccVm, MX_HEADER};
pub use planned::PlannedVm;
pub use resilient::{
    assemble_compiled, compile_front, compile_function, compile_resilient, FrontHalf,
    ResilientError,
};
