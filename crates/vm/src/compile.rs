//! The full `mat2c`-style compilation pipeline, producing executable IR
//! plus GCTD storage plans.

use matc_frontend::ast::Program;
use matc_gctd::{plan_program, GctdOptions, ProgramPlan};
use matc_ir::ids::FuncId;
use matc_ir::lower::LowerError;
use matc_ir::{build_ssa, ssa_destruct, IrProgram};
use matc_passes::{optimize_program, OptStats};
use matc_typeinf::{infer_program, ProgramTypes};

/// A compiled program: out-of-SSA IR whose φs were replaced by copies
/// filtered through the storage plan (coalesced copies vanish, §2.2.1).
#[derive(Debug)]
pub struct Compiled {
    /// The executable IR (SSA-inverted).
    pub ir: IrProgram,
    /// Per-function storage plans.
    pub plans: ProgramPlan,
    /// Inference results (kept for the C backend).
    pub types: ProgramTypes,
    /// Optimization statistics.
    pub opt_stats: OptStats,
}

/// Runs the mat2c pipeline: lower → SSA → classic passes → type
/// inference → GCTD → SSA inversion.
///
/// # Errors
///
/// Returns lowering errors (undefined names, unsupported constructs).
pub fn compile(ast: &Program, options: GctdOptions) -> Result<Compiled, LowerError> {
    let mut ir = build_ssa(ast)?;
    let opt_stats = optimize_program(&mut ir);
    let mut types = infer_program(&ir);
    let plans = plan_program(&ir, &mut types, options);
    // Debug builds re-audit every plan with the independent checker
    // before SSA inversion bakes the sharing decisions into the IR.
    #[cfg(debug_assertions)]
    {
        let findings = matc_analysis::audit_program(&ir, &mut types, &plans);
        assert!(
            !findings.has_errors(),
            "storage plan failed its audit:\n{}",
            findings.render()
        );
    }
    for (i, f) in ir.functions.iter_mut().enumerate() {
        let plan = &plans.plans[i];
        ssa_destruct(f, |dst, src| plan.share_storage(dst, src));
    }
    Ok(Compiled {
        ir,
        plans,
        types,
        opt_stats,
    })
}

/// Lowers without optimization or planning — the execution substrate for
/// the mcc-model VM, which performs *run-time* type dispatch over the
/// unoptimized program (mcc does its own library-level optimization, not
/// static array analysis).
///
/// # Errors
///
/// Returns lowering errors.
pub fn lower_for_mcc(ast: &Program) -> Result<IrProgram, LowerError> {
    let mut ir = build_ssa(ast)?;
    for f in ir.functions.iter_mut() {
        ssa_destruct(f, |_, _| false);
    }
    Ok(ir)
}

impl Compiled {
    /// The entry function id.
    ///
    /// # Panics
    ///
    /// Panics if the program has no entry.
    pub fn entry(&self) -> FuncId {
        self.ir.entry.expect("compiled program has an entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;

    #[test]
    fn pipeline_produces_phi_free_ir() {
        let ast = parse_program([
            "function f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n",
        ])
        .unwrap();
        let c = compile(&ast, GctdOptions::default()).unwrap();
        for f in &c.ir.functions {
            assert!(!f.in_ssa);
            for b in f.block_ids() {
                assert_eq!(f.block(b).phis().count(), 0);
            }
        }
    }

    #[test]
    fn coalesced_phi_copies_vanish() {
        let ast = parse_program([
            "function f()\ns = 1;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n",
        ])
        .unwrap();
        let with_plan = compile(&ast, GctdOptions::default()).unwrap();
        let without = lower_for_mcc(&ast).unwrap();
        let count_copies = |ir: &IrProgram| -> usize {
            ir.functions
                .iter()
                .flat_map(|f| f.blocks.iter())
                .flat_map(|b| b.instrs.iter())
                .filter(|i| matches!(i.kind, matc_ir::InstrKind::Copy { .. }))
                .count()
        };
        assert!(
            count_copies(&with_plan.ir) < count_copies(&without),
            "φ-coalescing must remove inversion copies: {} vs {}",
            count_copies(&with_plan.ir),
            count_copies(&without)
        );
    }
}
