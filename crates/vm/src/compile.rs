//! The full `mat2c`-style compilation pipeline, producing executable IR
//! plus GCTD storage plans.

use matc_analysis::{audit_program_with_stats, lint_program, Diagnostics};
use matc_frontend::ast::Program;
use matc_gctd::{plan_program, plan_program_with, GctdOptions, Phase, ProgramPlan, UnitMetrics};
use matc_ir::ids::FuncId;
use matc_ir::lower::LowerError;
use matc_ir::{build_ssa, ssa_destruct, IrProgram};
use matc_passes::{optimize_program, OptStats};
use matc_typeinf::{infer_program, ProgramTypes};
use std::time::Instant;

/// A compiled program: out-of-SSA IR whose φs were replaced by copies
/// filtered through the storage plan (coalesced copies vanish, §2.2.1).
#[derive(Debug)]
pub struct Compiled {
    /// The executable IR (SSA-inverted).
    pub ir: IrProgram,
    /// Per-function storage plans.
    pub plans: ProgramPlan,
    /// Inference results (kept for the C backend).
    pub types: ProgramTypes,
    /// Optimization statistics.
    pub opt_stats: OptStats,
}

/// Runs the mat2c pipeline: lower → SSA → classic passes → type
/// inference → GCTD → SSA inversion.
///
/// # Errors
///
/// Returns lowering errors (undefined names, unsupported constructs).
pub fn compile(ast: &Program, options: GctdOptions) -> Result<Compiled, LowerError> {
    compile_with(ast, options, None)
}

/// [`compile`] with phase observability: per-phase wall times (SSA
/// build, optimization, inference, planning sub-phases, inversion) and
/// AST/IR/plan sizes accumulate into `rec` when given. Produces exactly
/// the same program as the unrecorded entry point.
///
/// # Errors
///
/// Returns lowering errors (undefined names, unsupported constructs).
pub fn compile_with(
    ast: &Program,
    options: GctdOptions,
    rec: Option<&mut UnitMetrics>,
) -> Result<Compiled, LowerError> {
    let (compiled, _, _) = compile_inner(ast, options, rec, false, false)?;
    Ok(compiled)
}

/// [`compile`] that also returns the optimized SSA program exactly as
/// the storage planner saw it — the form *before* SSA inversion bakes
/// the sharing decisions into the IR. The shadow replay (`matc shadow`)
/// needs this snapshot: its liveness cross-check (S104) must use the
/// same CFG and SSA names the auditor's facts were computed over, while
/// the returned [`Compiled`] still carries the executable, inverted IR.
///
/// # Errors
///
/// Returns lowering errors (undefined names, unsupported constructs).
pub fn compile_traced(
    ast: &Program,
    options: GctdOptions,
) -> Result<(Compiled, IrProgram), LowerError> {
    let (compiled, _, ssa) = compile_inner(ast, options, None, false, true)?;
    Ok((
        compiled,
        ssa.expect("traced pipeline captures the SSA program"),
    ))
}

/// [`compile_with`] plus the independent checkers: AST lints and the
/// storage-plan audit, run *before* SSA inversion bakes the sharing
/// decisions into the IR (the auditor needs φs and live SSA names).
/// The returned [`Diagnostics`] merge both; compilation proceeds even
/// when the audit errors, so callers can report findings alongside the
/// artifacts they describe.
///
/// # Errors
///
/// Returns lowering errors (undefined names, unsupported constructs).
pub fn compile_audited(
    ast: &Program,
    options: GctdOptions,
    rec: Option<&mut UnitMetrics>,
) -> Result<(Compiled, Diagnostics), LowerError> {
    let (compiled, diags, _) = compile_inner(ast, options, rec, true, false)?;
    Ok((
        compiled,
        diags.expect("audited pipeline produces diagnostics"),
    ))
}

#[allow(clippy::type_complexity)]
fn compile_inner(
    ast: &Program,
    options: GctdOptions,
    mut rec: Option<&mut UnitMetrics>,
    want_audit: bool,
    want_ssa: bool,
) -> Result<(Compiled, Option<Diagnostics>, Option<IrProgram>), LowerError> {
    if let Some(r) = rec.as_deref_mut() {
        let s = ast.stats();
        r.ast_functions = s.functions;
        r.ast_statements = s.statements;
        r.ast_expressions = s.expressions;
    }

    let t = Instant::now();
    let mut ir = build_ssa(ast)?;
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::SsaBuild, t.elapsed());
    }

    let t = Instant::now();
    let opt_stats = optimize_program(&mut ir);
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::Optimize, t.elapsed());
        r.opt_removed = opt_stats.total();
        r.ir_functions = ir.functions.len();
        r.ir_blocks = ir.functions.iter().map(|f| f.blocks.len()).sum();
        r.ir_instrs = ir
            .functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.instrs.len())
            .sum();
        r.ir_vars = ir.functions.iter().map(|f| f.vars.len()).sum();
    }

    let t = Instant::now();
    let mut types = infer_program(&ir);
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::TypeInfer, t.elapsed());
        let s = types.summary();
        r.typeinf_facts = s.facts;
        r.typeinf_scalars = s.scalars;
    }

    let plans = match rec.as_deref_mut() {
        Some(r) => {
            let p = plan_program_with(&ir, &mut types, options, r);
            r.plan = p.total_stats();
            p
        }
        None => plan_program(&ir, &mut types, options),
    };

    let diags = if want_audit {
        let t = Instant::now();
        let mut diags = lint_program(ast);
        let (findings, stats) = audit_program_with_stats(&ir, &mut types, &plans);
        diags.merge(findings);
        if let Some(r) = rec.as_deref_mut() {
            r.record(Phase::Audit, t.elapsed());
            r.audit_errors = diags.error_count();
            r.audit_warnings = diags.warning_count();
            r.audit_edges = stats.cfg_edges;
        }
        Some(diags)
    } else {
        // Debug builds re-audit every plan with the independent checker
        // before SSA inversion bakes the sharing decisions into the IR.
        // Same preds-threaded entry as the audited path, so both hooks
        // exercise identical code.
        #[cfg(debug_assertions)]
        {
            let (findings, _stats) = audit_program_with_stats(&ir, &mut types, &plans);
            assert!(
                !findings.has_errors(),
                "storage plan failed its audit:\n{}",
                findings.render()
            );
        }
        None
    };

    let ssa_snapshot = want_ssa.then(|| ir.clone());

    let t = Instant::now();
    for (i, f) in ir.functions.iter_mut().enumerate() {
        let plan = &plans.plans[i];
        ssa_destruct(f, |dst, src| plan.share_storage(dst, src));
    }
    if let Some(r) = rec {
        r.record(Phase::SsaInvert, t.elapsed());
    }

    Ok((
        Compiled {
            ir,
            plans,
            types,
            opt_stats,
        },
        diags,
        ssa_snapshot,
    ))
}

/// Lowers without optimization or planning — the execution substrate for
/// the mcc-model VM, which performs *run-time* type dispatch over the
/// unoptimized program (mcc does its own library-level optimization, not
/// static array analysis).
///
/// # Errors
///
/// Returns lowering errors.
pub fn lower_for_mcc(ast: &Program) -> Result<IrProgram, LowerError> {
    let mut ir = build_ssa(ast)?;
    for f in ir.functions.iter_mut() {
        ssa_destruct(f, |_, _| false);
    }
    Ok(ir)
}

impl Compiled {
    /// The entry function id.
    ///
    /// # Panics
    ///
    /// Panics if the program has no entry.
    pub fn entry(&self) -> FuncId {
        self.ir.entry.expect("compiled program has an entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;

    #[test]
    fn pipeline_produces_phi_free_ir() {
        let ast = parse_program([
            "function f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n",
        ])
        .unwrap();
        let c = compile(&ast, GctdOptions::default()).unwrap();
        for f in &c.ir.functions {
            assert!(!f.in_ssa);
            for b in f.block_ids() {
                assert_eq!(f.block(b).phis().count(), 0);
            }
        }
    }

    #[test]
    fn coalesced_phi_copies_vanish() {
        let ast = parse_program([
            "function f()\ns = 1;\nfor i = 1:10\ns = s + i;\nend\nfprintf('%d\\n', s);\n",
        ])
        .unwrap();
        let with_plan = compile(&ast, GctdOptions::default()).unwrap();
        let without = lower_for_mcc(&ast).unwrap();
        let count_copies = |ir: &IrProgram| -> usize {
            ir.functions
                .iter()
                .flat_map(|f| f.blocks.iter())
                .flat_map(|b| b.instrs.iter())
                .filter(|i| matches!(i.kind, matc_ir::InstrKind::Copy { .. }))
                .count()
        };
        assert!(
            count_copies(&with_plan.ir) < count_copies(&without),
            "φ-coalescing must remove inversion copies: {} vs {}",
            count_copies(&with_plan.ir),
            count_copies(&without)
        );
    }
}
