//! The reference interpreter: a direct AST walker with MATLAB
//! semantics.
//!
//! Plays two roles: the *oracle* for differential testing (every
//! executor must match its output exactly), and the "MATLAB interpreter"
//! bar of Figure 5. Values live in per-call hash-map environments; every
//! operation allocates — the slowest, simplest model.

use crate::dispatch::{eval_binop, eval_builtin, eval_builtin_multi, eval_unop, Shared};
use matc_frontend::ast::{BinOp, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind, UnOp};
use matc_ir::Builtin;
use matc_runtime::error::{err, Result};
use matc_runtime::format;
use matc_runtime::mem::{ImageModel, MemRecorder};
use matc_runtime::ops::index::{self, Sub};
use matc_runtime::value::Value;
use std::collections::HashMap;

/// The tree-walking interpreter.
pub struct Interp<'p> {
    program: &'p Program,
    /// Shared RNG + output.
    pub shared: Shared,
    /// Memory recorder (interpreter image model).
    pub mem: MemRecorder,
    call_depth: usize,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

struct Frame {
    vars: HashMap<String, Value>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            shared: Shared::new(),
            mem: MemRecorder::new(ImageModel::interpreter()),
            call_depth: 0,
        }
    }

    /// Sets the RNG seed (all executors must agree for differential
    /// runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shared = Shared::with_seed(seed);
        self
    }

    /// Runs the entry function with no arguments and returns the
    /// collected output.
    ///
    /// # Errors
    ///
    /// Propagates MATLAB run-time errors.
    pub fn run(&mut self) -> Result<String> {
        let entry = self.program.entry_function();
        self.call(entry, vec![])?;
        Ok(std::mem::take(&mut self.shared.out))
    }

    /// Calls a user function with `args`, returning its outputs.
    fn call(&mut self, func: &'p Function, args: Vec<Value>) -> Result<Vec<Value>> {
        self.call_depth += 1;
        // MATLAB's default RecursionLimit is 100; enforcing it also
        // bounds the host stack in debug builds.
        if self.call_depth > 100 {
            self.call_depth -= 1;
            return err("maximum recursion depth exceeded");
        }
        if args.len() > func.params.len() {
            self.call_depth -= 1;
            return err(format!("too many inputs to `{}`", func.name));
        }
        let mut frame = Frame {
            vars: HashMap::new(),
        };
        let mut arg_bytes = 0;
        for (p, v) in func.params.iter().zip(args) {
            arg_bytes += v.payload_bytes() + 32;
            frame.vars.insert(p.clone(), v);
        }
        // Interpreter model: activation records live on the heap
        // (hash-map environments), a small constant plus argument copies.
        let frame_charge = self.mem.heap_alloc(256 + arg_bytes);
        let flow = self.block(&func.body, &mut frame);
        let result = match flow {
            Err(e) => Err(e),
            Ok(_) => {
                let mut outs = Vec::with_capacity(func.outs.len());
                for o in &func.outs {
                    match frame.vars.get(o) {
                        Some(v) => outs.push(v.clone()),
                        None => {
                            // Unassigned outputs are only an error if
                            // requested; return empty to keep arity.
                            outs.push(Value::empty());
                        }
                    }
                }
                Ok(outs)
            }
        };
        self.mem.heap_free(frame_charge);
        self.call_depth -= 1;
        result
    }

    fn block(&mut self, stmts: &'p [Stmt], frame: &mut Frame) -> Result<Flow> {
        for s in stmts {
            match self.stmt(s, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, stmt: &'p Stmt, frame: &mut Frame) -> Result<Flow> {
        match &stmt.kind {
            StmtKind::Assign { lhs, rhs, display } => {
                let value = self.expr(rhs, frame)?;
                self.assign(lhs, value, *display, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::MultiAssign {
                lhss,
                func,
                args,
                display,
            } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.expr(a, frame))
                    .collect::<Result<_>>()?;
                let outs = self.call_by_name(func, argv, lhss.len())?;
                for (lhs, v) in lhss.iter().zip(outs) {
                    if !matches!(lhs, LValue::Ignore) {
                        self.assign(lhs, v, *display, frame)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::ExprStmt { expr, display } => {
                // Effect builtins produce no `ans`.
                if let ExprKind::Apply { name, args } = &expr.kind {
                    if !frame.vars.contains_key(name) {
                        if let Some(b) = Builtin::from_name(name) {
                            if b.is_effect() {
                                let argv: Vec<Value> = args
                                    .iter()
                                    .map(|a| self.expr(a, frame))
                                    .collect::<Result<_>>()?;
                                let refs: Vec<&Value> = argv.iter().collect();
                                eval_builtin(b, &refs, &mut self.shared)?;
                                self.mem.advance(4);
                                return Ok(Flow::Normal);
                            }
                        }
                        if self.program.function(name).is_some() {
                            let argv: Vec<Value> = args
                                .iter()
                                .map(|a| self.expr(a, frame))
                                .collect::<Result<_>>()?;
                            let outs = self.call_by_name(name, argv, 0)?;
                            if let (true, Some(v)) = (*display, outs.first()) {
                                self.shared.out.push_str(&format::echo("ans", v));
                            }
                            return Ok(Flow::Normal);
                        }
                    }
                }
                let v = self.expr(expr, frame)?;
                if *display {
                    self.shared.out.push_str(&format::echo("ans", &v));
                }
                frame.vars.insert("ans".to_string(), v);
                Ok(Flow::Normal)
            }
            StmtKind::If { arms, else_body } => {
                for (cond, body) in arms {
                    let c = self.expr(cond, frame)?;
                    if c.is_true() {
                        return self.block(body, frame);
                    }
                }
                if let Some(body) = else_body {
                    return self.block(body, frame);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                let mut guard = 0u64;
                loop {
                    let c = self.expr(cond, frame)?;
                    if !c.is_true() {
                        return Ok(Flow::Normal);
                    }
                    match self.block(body, frame)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                    guard += 1;
                    if guard > 100_000_000 {
                        return err("while loop exceeded the iteration guard");
                    }
                }
            }
            StmtKind::For { var, iter, body } => {
                let seq = self.expr(iter, frame)?;
                // MATLAB iterates over the *columns* of the iterable.
                let d = seq.dims();
                let (rows, cols) = (d[0], d[1..].iter().product::<usize>());
                for c in 0..cols {
                    let col = if rows == 1 {
                        let (re, im) = seq.at(c);
                        if im == 0.0 {
                            Value::scalar(re)
                        } else {
                            Value::complex_scalar(re, im)
                        }
                    } else {
                        let sub = Sub::Indices((0..rows).map(|r| r + rows * c).collect());
                        index::subsref(&seq, &[sub])?
                    };
                    frame.vars.insert(var.clone(), col);
                    match self.block(body, frame)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return => Ok(Flow::Return),
        }
    }

    fn assign(
        &mut self,
        lhs: &'p LValue,
        value: Value,
        display: bool,
        frame: &mut Frame,
    ) -> Result<()> {
        match lhs {
            LValue::Var(name) => {
                self.account_value(&value);
                if display {
                    self.shared.out.push_str(&format::echo(name, &value));
                }
                frame.vars.insert(name.clone(), value);
            }
            LValue::Index { name, args } => {
                let old = frame.vars.remove(name).unwrap_or_else(Value::empty);
                let subs = self.subscripts(name, args, &old, frame)?;
                let new = index::subsasgn(old, &value, &subs)?;
                self.account_value(&new);
                if display {
                    self.shared.out.push_str(&format::echo(name, &new));
                }
                frame.vars.insert(name.clone(), new);
            }
            LValue::Ignore => {}
        }
        Ok(())
    }

    fn account_value(&mut self, v: &Value) {
        self.mem.advance(v.numel() as u64 / 4 + 1);
    }

    fn call_by_name(&mut self, name: &str, args: Vec<Value>, nouts: usize) -> Result<Vec<Value>> {
        if let Some(f) = self.program.function(name) {
            let outs = self.call(f, args)?;
            return Ok(outs);
        }
        if let Some(b) = Builtin::from_name(name) {
            let refs: Vec<&Value> = args.iter().collect();
            return eval_builtin_multi(b, nouts.max(1), &refs, &mut self.shared);
        }
        err(format!("undefined function `{name}`"))
    }

    /// Evaluates subscripts with `end`/`:` resolved against `array`.
    /// Also returns the evaluated subscript values (for the MATLAB rule
    /// that `a(v)` takes a matrix subscript's shape).
    fn subscripts_with_values(
        &mut self,
        args: &'p [Expr],
        array: &Value,
        frame: &Frame,
    ) -> Result<(Vec<Sub>, Vec<Option<Value>>)> {
        let ndims = args.len();
        let mut subs = Vec::with_capacity(ndims);
        let mut vals = Vec::with_capacity(ndims);
        for (k, a) in args.iter().enumerate() {
            if matches!(a.kind, ExprKind::Colon) {
                subs.push(Sub::Colon);
                vals.push(None);
                continue;
            }
            let end_value = if ndims == 1 {
                array.numel()
            } else {
                // Folded trailing dims for the last subscript.
                let d = array.dims();
                if k + 1 == ndims && ndims < d.len() {
                    d[k..].iter().product()
                } else {
                    d.get(k).copied().unwrap_or(1)
                }
            };
            let v = self.expr_with_end(a, frame, Some(end_value as f64))?;
            subs.push(Sub::from_value(&v)?);
            vals.push(Some(v));
        }
        Ok((subs, vals))
    }

    /// Evaluates subscripts, discarding the values.
    fn subscripts(
        &mut self,
        _name: &str,
        args: &'p [Expr],
        array: &Value,
        frame: &Frame,
    ) -> Result<Vec<Sub>> {
        Ok(self.subscripts_with_values(args, array, frame)?.0)
    }

    fn expr(&mut self, e: &'p Expr, frame: &Frame) -> Result<Value> {
        self.expr_with_end(e, frame, None)
    }

    fn expr_with_end(&mut self, e: &'p Expr, frame: &Frame, end_val: Option<f64>) -> Result<Value> {
        self.mem.advance(1);
        match &e.kind {
            ExprKind::Number(v) => Ok(Value::scalar(*v)),
            ExprKind::ImagNumber(v) => Ok(Value::complex_scalar(0.0, *v)),
            ExprKind::Str(s) => Ok(Value::string(s)),
            ExprKind::End => match end_val {
                Some(v) => Ok(Value::scalar(v)),
                None => err("`end` used outside of an indexing context"),
            },
            ExprKind::Colon => err("`:` used outside of an indexing context"),
            ExprKind::Ident(name) => {
                if let Some(v) = frame.vars.get(name) {
                    return Ok(v.clone());
                }
                if let Some(f) = self.program.function(name) {
                    let mut outs = self.call(f, vec![])?;
                    if outs.is_empty() {
                        return err("function returned nothing");
                    }
                    return Ok(outs.swap_remove(0));
                }
                if let Some(b) = Builtin::from_name(name) {
                    return eval_builtin(b, &[], &mut self.shared);
                }
                err(format!("undefined variable or function `{name}`"))
            }
            ExprKind::Range { start, step, stop } => {
                let a = self.expr_with_end(start, frame, end_val)?;
                let b = self.expr_with_end(stop, frame, end_val)?;
                let s = match step {
                    Some(s) => Some(self.expr_with_end(s, frame, end_val)?),
                    None => None,
                };
                index::range(&a, s.as_ref(), &b)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.expr_with_end(operand, frame, end_val)?;
                if *op == UnOp::Plus {
                    return Ok(v);
                }
                self.account_value(&v);
                eval_unop(*op, &v)
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::ShortAnd => {
                    let l = self.expr_with_end(lhs, frame, end_val)?;
                    if !l.is_true() {
                        return Ok(Value::logical(false));
                    }
                    let r = self.expr_with_end(rhs, frame, end_val)?;
                    Ok(Value::logical(r.is_true()))
                }
                BinOp::ShortOr => {
                    let l = self.expr_with_end(lhs, frame, end_val)?;
                    if l.is_true() {
                        return Ok(Value::logical(true));
                    }
                    let r = self.expr_with_end(rhs, frame, end_val)?;
                    Ok(Value::logical(r.is_true()))
                }
                _ => {
                    let l = self.expr_with_end(lhs, frame, end_val)?;
                    let r = self.expr_with_end(rhs, frame, end_val)?;
                    let result = eval_binop(*op, &l, &r)?;
                    self.account_value(&result);
                    Ok(result)
                }
            },
            ExprKind::Apply { name, args } => {
                if let Some(array) = frame.vars.get(name) {
                    // Indexing (no clone: the frame is only read here).
                    let (subs, vals) = self.subscripts_with_values(args, array, frame)?;
                    let r = index::subsref(array, &subs)?;
                    // MATLAB rule: a(v) with a matrix (non-vector,
                    // non-logical) subscript takes v's shape.
                    if subs.len() == 1 {
                        if let Some(sv) = &vals[0] {
                            if !sv.is_vector() && sv.class() != matc_runtime::Class::Logical {
                                self.account_value(&r);
                                return Ok(index::reshape_like(r, sv.dims()));
                            }
                        }
                    }
                    self.account_value(&r);
                    Ok(r)
                } else if self.program.function(name).is_some() {
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|a| self.expr(a, frame))
                        .collect::<Result<_>>()?;
                    let mut outs = self.call_by_name(name, argv, 1)?;
                    if outs.is_empty() {
                        err(format!("`{name}` returned nothing"))
                    } else {
                        Ok(outs.swap_remove(0))
                    }
                } else if let Some(b) = Builtin::from_name(name) {
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|a| self.expr(a, frame))
                        .collect::<Result<_>>()?;
                    let refs: Vec<&Value> = argv.iter().collect();
                    let r = eval_builtin(b, &refs, &mut self.shared)?;
                    self.account_value(&r);
                    Ok(r)
                } else {
                    err(format!("undefined variable or function `{name}`"))
                }
            }
            ExprKind::Matrix { rows } => {
                let mut vals: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut rv = Vec::with_capacity(row.len());
                    for el in row {
                        rv.push(self.expr_with_end(el, frame, end_val)?);
                    }
                    vals.push(rv);
                }
                let grid: Vec<Vec<&Value>> = vals.iter().map(|row| row.iter().collect()).collect();
                let r = matc_runtime::ops::concat::matrix_build(&grid)?;
                self.account_value(&r);
                Ok(r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;

    fn run(srcs: &[&str]) -> String {
        let p = parse_program(srcs.iter().copied()).unwrap();
        let mut i = Interp::new(&p);
        i.run().unwrap_or_else(|e| panic!("runtime error: {e}"))
    }

    fn run_err(srcs: &[&str]) -> String {
        let p = parse_program(srcs.iter().copied()).unwrap();
        let mut i = Interp::new(&p);
        i.run().unwrap_err().message
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run(&["function f()\nx = 2 + 3 * 4;\nfprintf('%d\\n', x);\n"]);
        assert_eq!(out, "14\n");
    }

    #[test]
    fn loops_and_conditionals() {
        let out = run(&[
            "function f()\ns = 0;\nfor i = 1:10\nif mod(i, 2) == 0\ns = s + i;\nend\nend\nfprintf('%d\\n', s);\n",
        ]);
        assert_eq!(out, "30\n");
    }

    #[test]
    fn while_with_break_continue() {
        let out = run(&[
            "function f()\nk = 0;\nn = 0;\nwhile 1\nk = k + 1;\nif k > 10\nbreak\nend\nif mod(k, 3) ~= 0\ncontinue\nend\nn = n + k;\nend\nfprintf('%d\\n', n);\n",
        ]);
        assert_eq!(out, "18\n"); // 3 + 6 + 9
    }

    #[test]
    fn functions_and_recursion() {
        let out = run(&[
            "function f()\nfprintf('%d\\n', fact(5));\nend\nfunction y = fact(n)\nif n <= 1\ny = 1;\nelse\ny = n * fact(n - 1);\nend\nend\n",
        ]);
        assert_eq!(out, "120\n");
    }

    #[test]
    fn multiple_outputs() {
        let out = run(&["function f()\n[m, i] = max([3 9 4]);\nfprintf('%d %d\\n', m, i);\nend\n"]);
        assert_eq!(out, "9 2\n");
    }

    #[test]
    fn matrix_indexing_with_end() {
        let out = run(&[
            "function f()\na = [1 2 3; 4 5 6];\nfprintf('%d %d %d\\n', a(end, end), a(1, end-1), a(end));\n",
        ]);
        // a(end,end)=6; a(1,end-1)=2; a(end) linear = a(2,1)... column
        // major: elements 1 4 2 5 3 6; a(end)=6.
        assert_eq!(out, "6 2 6\n");
    }

    #[test]
    fn growing_array() {
        let out = run(&[
            "function f()\na = [];\nfor i = 1:5\na(i) = i * i;\nend\nfprintf('%d ', a);\nfprintf('\\n');\n",
        ]);
        assert_eq!(out, "1 4 9 16 25 \n");
    }

    #[test]
    fn colon_slice_assignment() {
        let out = run(&[
            "function f()\na = zeros(2, 3);\na(1, :) = [7 8 9];\nfprintf('%g ', sum(a));\nfprintf('\\n');\n",
        ]);
        assert_eq!(out, "7 8 9 \n");
    }

    #[test]
    fn display_echo() {
        let out = run(&["function f()\nx = 3\n"]);
        assert!(out.starts_with("x =\n"), "{out}");
        assert!(out.contains('3'));
    }

    #[test]
    fn short_circuit_avoids_rhs() {
        // Without short-circuit, 1/0 == Inf but x(2) errors; && must skip.
        let out = run(&[
            "function f()\nx = [1];\nif numel(x) > 1 && x(2) > 0\nfprintf('yes\\n');\nelse\nfprintf('no\\n');\nend\n",
        ]);
        assert_eq!(out, "no\n");
    }

    #[test]
    fn for_over_vector_and_matrix_columns() {
        let out = run(&[
            "function f()\ns = 0;\nfor x = [1 2; 3 4]\ns = s + sum(x);\nend\nfprintf('%d\\n', s);\n",
        ]);
        assert_eq!(out, "10\n");
    }

    #[test]
    fn runtime_error_surfaces() {
        let msg = run_err(&["function f()\na = [1 2];\nb = a(5);\n"]);
        assert!(msg.contains("exceeds"), "{msg}");
    }

    #[test]
    fn error_builtin() {
        let msg = run_err(&["function f()\nerror('custom failure');\n"]);
        assert_eq!(msg, "custom failure");
    }

    #[test]
    fn rand_determinism_across_runs() {
        let src = "function f()\na = rand(2, 2);\nfprintf('%.6f\\n', sum(sum(a)));\n";
        assert_eq!(run(&[src]), run(&[src]));
    }

    #[test]
    fn complex_path() {
        let out = run(&["function f()\nz = sqrt(-4);\nfprintf('%g %g\\n', real(z), imag(z));\n"]);
        assert_eq!(out, "0 2\n");
    }

    #[test]
    fn nested_function_calls() {
        let out = run(&[
            "function f()\nfprintf('%d\\n', g(h(2)));\nend\nfunction y = g(x)\ny = x + 1;\nend\nfunction y = h(x)\ny = x * 10;\nend\n",
        ]);
        assert_eq!(out, "21\n");
    }

    #[test]
    fn memory_recorder_active() {
        let p = parse_program(["function f()\na = rand(100, 100);\ndisp(sum(sum(a)));\n"]).unwrap();
        let mut i = Interp::new(&p);
        i.run().unwrap();
        assert!(i.mem.elapsed() > 0);
    }
}
