//! Shared operation dispatch: one implementation of every builtin and IR
//! operation, used by all three executors so their outputs are
//! bit-identical (the differential-testing backbone).

use matc_frontend::ast::{BinOp, UnOp};
use matc_ir::instr::Op;
use matc_ir::Builtin;
use matc_runtime::error::{err, Result};
use matc_runtime::ops::index::Sub;
use matc_runtime::ops::{arith, concat, index, linalg, maps, reduce};
use matc_runtime::value::{Class, Value};
use matc_runtime::Rng;

/// Mutable execution environment shared across ops: the RNG stream and
/// the output sink.
#[derive(Debug)]
pub struct Shared {
    /// Deterministic RNG (same stream in every executor).
    pub rng: Rng,
    /// Collected program output (`disp`, `fprintf`, echoes).
    pub out: String,
}

impl Shared {
    /// Creates an environment with the default seed.
    pub fn new() -> Shared {
        Shared {
            rng: Rng::default(),
            out: String::new(),
        }
    }

    /// Creates an environment with an explicit RNG seed.
    pub fn with_seed(seed: u64) -> Shared {
        Shared {
            rng: Rng::new(seed),
            out: String::new(),
        }
    }
}

impl Default for Shared {
    fn default() -> Self {
        Shared::new()
    }
}

/// An operand for [`eval_op`]: a value or the `:` subscript marker.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'v> {
    /// A concrete value.
    Val(&'v Value),
    /// The colon subscript.
    Colon,
}

impl<'v> Arg<'v> {
    fn value(&self) -> Result<&'v Value> {
        match self {
            Arg::Val(v) => Ok(v),
            Arg::Colon => err("`:` is only valid as a subscript"),
        }
    }
}

fn subs_from(args: &[Arg<'_>]) -> Result<Vec<Sub>> {
    args.iter()
        .map(|a| match a {
            Arg::Colon => Ok(Sub::Colon),
            Arg::Val(v) => Sub::from_value(v),
        })
        .collect()
}

/// Evaluates a single-result IR operation.
///
/// # Errors
///
/// Propagates MATLAB semantic errors (conformance, bounds, singularity).
pub fn eval_op(op: &Op, args: &[Arg<'_>], sh: &mut Shared) -> Result<Value> {
    match op {
        Op::Bin(b) => {
            let x = args[0].value()?;
            let y = args[1].value()?;
            eval_binop(*b, x, y)
        }
        Op::Un(u) => {
            let x = args[0].value()?;
            eval_unop(*u, x)
        }
        Op::Subsref => {
            let a = args[0].value()?;
            let subs = subs_from(&args[1..])?;
            let r = index::subsref(a, &subs)?;
            // A single non-vector subscript shapes the result like the
            // subscript (MATLAB a(v) with matrix v).
            if subs.len() == 1 {
                if let Arg::Val(v) = args[1] {
                    if !v.is_vector() && v.class() != Class::Logical {
                        return Ok(index::reshape_like(r, v.dims()));
                    }
                }
            }
            Ok(r)
        }
        Op::Subsasgn => {
            let a = args[0].value()?.clone();
            let r = args[1].value()?;
            let subs = subs_from(&args[2..])?;
            index::subsasgn(a, r, &subs)
        }
        Op::Range2 => {
            let a = args[0].value()?;
            let b = args[1].value()?;
            index::range(a, None, b)
        }
        Op::Range3 => {
            let a = args[0].value()?;
            let s = args[1].value()?;
            let b = args[2].value()?;
            index::range(a, Some(s), b)
        }
        Op::MatrixBuild { rows } => {
            let mut vals: Vec<&Value> = Vec::with_capacity(args.len());
            for a in args {
                vals.push(a.value()?);
            }
            let mut grid: Vec<Vec<&Value>> = Vec::with_capacity(rows.len());
            let mut k = 0;
            for &len in rows {
                grid.push(vals[k..k + len].to_vec());
                k += len;
            }
            concat::matrix_build(&grid)
        }
        Op::Builtin(b) => {
            let mut vals: Vec<&Value> = Vec::with_capacity(args.len());
            for a in args {
                vals.push(a.value()?);
            }
            eval_builtin(*b, &vals, sh)
        }
        Op::Call(name) => err(format!(
            "user call `{name}` must be handled by the executor"
        )),
    }
}

/// Evaluates a binary operator.
pub fn eval_binop(b: BinOp, x: &Value, y: &Value) -> Result<Value> {
    match b {
        BinOp::Add => arith::add(x, y),
        BinOp::Sub => arith::sub(x, y),
        BinOp::MatMul => linalg::matmul(x, y),
        BinOp::ElemMul => arith::elem_mul(x, y),
        BinOp::MatDiv => linalg::right_div(x, y),
        BinOp::ElemDiv => arith::elem_div(x, y),
        BinOp::MatLeftDiv => linalg::left_div(x, y),
        BinOp::ElemLeftDiv => arith::elem_left_div(x, y),
        BinOp::MatPow => linalg::matpow(x, y),
        BinOp::ElemPow => arith::elem_pow_auto(x, y),
        BinOp::Eq => arith::eq(x, y),
        BinOp::Ne => arith::ne(x, y),
        BinOp::Lt => arith::lt(x, y),
        BinOp::Le => arith::le(x, y),
        BinOp::Gt => arith::gt(x, y),
        BinOp::Ge => arith::ge(x, y),
        BinOp::And => arith::and(x, y),
        BinOp::Or => arith::or(x, y),
        BinOp::ShortAnd => Ok(Value::logical(x.is_true() && y.is_true())),
        BinOp::ShortOr => Ok(Value::logical(x.is_true() || y.is_true())),
    }
}

/// Evaluates a unary operator.
pub fn eval_unop(u: UnOp, x: &Value) -> Result<Value> {
    match u {
        UnOp::Neg => Ok(arith::neg(x)),
        UnOp::Plus => Ok(x.clone()),
        UnOp::Not => Ok(arith::not(x)),
        UnOp::Transpose => concat::transpose(x),
        UnOp::CTranspose => concat::ctranspose(x),
    }
}

fn extents(args: &[&Value]) -> Result<Vec<usize>> {
    match args.len() {
        0 => Ok(vec![1, 1]),
        1 => {
            let n = args[0].as_extent()?;
            Ok(vec![n, n])
        }
        _ => args.iter().map(|a| a.as_extent()).collect(),
    }
}

/// Evaluates a single-output builtin call.
///
/// # Errors
///
/// Fails on arity or semantic errors; `error(...)` always fails with the
/// user's message.
pub fn eval_builtin(b: Builtin, args: &[&Value], sh: &mut Shared) -> Result<Value> {
    use Builtin::*;
    let one_arg = |name: &str| -> Result<&Value> {
        args.first()
            .copied()
            .ok_or_else(|| matc_runtime::RtError::new(format!("`{name}` needs an argument")))
    };
    Ok(match b {
        Zeros => Value::filled(extents(args)?, 0.0, Class::Double),
        Ones => Value::filled(extents(args)?, 1.0, Class::Double),
        Eye => {
            let d = extents(args)?;
            let (r, c) = (d[0], d.get(1).copied().unwrap_or(d[0]));
            Value::eye(r, c)
        }
        Rand => {
            let d = extents(args)?;
            let n: usize = d.iter().product();
            let mut re = Vec::with_capacity(n);
            for _ in 0..n {
                re.push(sh.rng.next_f64());
            }
            Value::from_parts(d, re)
        }
        Size => {
            let a = one_arg("size")?;
            if args.len() >= 2 {
                let k = args[1].as_subscript()?;
                let d = a.dims().get(k - 1).copied().unwrap_or(1);
                Value::scalar(d as f64)
            } else {
                Value::row(a.dims().iter().map(|d| *d as f64).collect())
            }
        }
        Length => Value::scalar(one_arg("length")?.length() as f64),
        Numel => Value::scalar(one_arg("numel")?.numel() as f64),
        Ndims => Value::scalar(one_arg("ndims")?.dims().len() as f64),
        Disp => {
            let a = one_arg("disp")?;
            sh.out.push_str(&matc_runtime::format::display_string(a));
            sh.out.push('\n');
            Value::empty()
        }
        Fprintf => {
            let fmt = one_arg("fprintf")?;
            let rendered = matc_runtime::format::fprintf(fmt, &args[1..])?;
            sh.out.push_str(&rendered);
            Value::empty()
        }
        Sqrt => maps::sqrt(one_arg("sqrt")?),
        Abs => maps::abs(one_arg("abs")?),
        Sin => maps::sin(one_arg("sin")?),
        Cos => maps::cos(one_arg("cos")?),
        Tan => maps::tan(one_arg("tan")?),
        Atan => maps::atan(one_arg("atan")?),
        Atan2 => arith::atan2(args[0], args[1])?,
        Exp => maps::exp(one_arg("exp")?),
        Log => maps::log(one_arg("log")?),
        Floor => maps::floor(one_arg("floor")?),
        Ceil => maps::ceil(one_arg("ceil")?),
        Round => maps::round(one_arg("round")?),
        Fix => maps::fix(one_arg("fix")?),
        Mod => arith::modulo(args[0], args[1])?,
        Rem => arith::rem(args[0], args[1])?,
        Max => {
            if args.len() >= 2 {
                arith::max2(args[0], args[1])?
            } else {
                reduce::max1(one_arg("max")?)?.0
            }
        }
        Min => {
            if args.len() >= 2 {
                arith::min2(args[0], args[1])?
            } else {
                reduce::min1(one_arg("min")?)?.0
            }
        }
        Sum => reduce::sum(one_arg("sum")?),
        Prod => reduce::prod(one_arg("prod")?),
        Mean => reduce::mean(one_arg("mean")?),
        Norm => reduce::norm(one_arg("norm")?),
        Real => maps::real(one_arg("real")?),
        Imag => maps::imag(one_arg("imag")?),
        Conj => maps::conj(one_arg("conj")?),
        IsEmpty => Value::logical(one_arg("isempty")?.is_empty()),
        Any => reduce::any(one_arg("any")?),
        All => reduce::all(one_arg("all")?),
        Sign => maps::sign(one_arg("sign")?),
        Linspace => {
            let a = args[0]
                .as_scalar()
                .ok_or_else(|| matc_runtime::RtError::new("linspace endpoints must be scalars"))?;
            let b2 = args[1]
                .as_scalar()
                .ok_or_else(|| matc_runtime::RtError::new("linspace endpoints must be scalars"))?;
            let n = if args.len() >= 3 {
                args[2].as_extent()?
            } else {
                100
            };
            let mut re = Vec::with_capacity(n);
            for k in 0..n {
                let t = if n <= 1 {
                    1.0
                } else {
                    k as f64 / (n - 1) as f64
                };
                re.push(a + (b2 - a) * t);
            }
            Value::from_parts(vec![1, n], re)
        }
        Pi => Value::scalar(std::f64::consts::PI),
        Inf => Value::scalar(f64::INFINITY),
        Eps => Value::scalar(f64::EPSILON),
        NaN => Value::scalar(f64::NAN),
        ErrorFn => {
            let msg = args
                .first()
                .map(|v| matc_runtime::format::display_string(v))
                .unwrap_or_else(|| "error".to_string());
            return err(msg);
        }
        RangeCount => {
            let a = args[0].as_scalar().unwrap_or(f64::NAN);
            let s = args[1].as_scalar().unwrap_or(f64::NAN);
            let b2 = args[2].as_scalar().unwrap_or(f64::NAN);
            if s == 0.0 || !a.is_finite() || !s.is_finite() || !b2.is_finite() {
                return err("invalid for-loop range");
            }
            Value::scalar((((b2 - a) / s).floor() + 1.0).max(0.0))
        }
        IsTrue => Value::logical(one_arg("istrue")?.is_true()),
        LoopIndex => {
            let a = args[0].as_scalar().unwrap_or(f64::NAN);
            let s = args[1].as_scalar().unwrap_or(f64::NAN);
            let k = args[3].as_scalar().unwrap_or(f64::NAN);
            if !a.is_finite() || !s.is_finite() || !k.is_finite() {
                return err("invalid for-loop index");
            }
            Value::scalar(a + s * (k - 1.0))
        }
    })
}

/// Evaluates a multi-output builtin (`[m, n] = size(a)`, `[v, i] =
/// max(a)`).
///
/// # Errors
///
/// Fails for builtins without a multi-output form.
pub fn eval_builtin_multi(
    b: Builtin,
    nouts: usize,
    args: &[&Value],
    sh: &mut Shared,
) -> Result<Vec<Value>> {
    use Builtin::*;
    match b {
        Size if nouts >= 2 => {
            let a = args[0];
            let d = a.dims();
            let mut outs = Vec::with_capacity(nouts);
            for k in 0..nouts {
                let v = if k + 1 < nouts {
                    d.get(k).copied().unwrap_or(1) as f64
                } else {
                    // The last output collects the remaining extents.
                    d.get(k..)
                        .map(|rest| rest.iter().product::<usize>())
                        .unwrap_or(1) as f64
                };
                outs.push(Value::scalar(v));
            }
            Ok(outs)
        }
        Max if nouts == 2 => {
            let (m, i) = reduce::max1(args[0])?;
            Ok(vec![m, i])
        }
        Min if nouts == 2 => {
            let (m, i) = reduce::min1(args[0])?;
            Ok(vec![m, i])
        }
        _ if nouts <= 1 => {
            let v = eval_builtin(b, args, sh)?;
            Ok(vec![v])
        }
        _ => err(format!(
            "builtin `{}` does not support {nouts} outputs",
            b.name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let mut sh = Shared::new();
        let z = eval_builtin(Builtin::Zeros, &[&Value::scalar(3.0)], &mut sh).unwrap();
        assert_eq!(z.dims(), &[3, 3]);
        let o = eval_builtin(
            Builtin::Ones,
            &[&Value::scalar(2.0), &Value::scalar(4.0)],
            &mut sh,
        )
        .unwrap();
        assert_eq!(o.dims(), &[2, 4]);
        assert!(o.re().iter().all(|x| *x == 1.0));
        let z3 = eval_builtin(
            Builtin::Zeros,
            &[
                &Value::scalar(2.0),
                &Value::scalar(3.0),
                &Value::scalar(4.0),
            ],
            &mut sh,
        )
        .unwrap();
        assert_eq!(z3.dims(), &[2, 3, 4]);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut a = Shared::with_seed(9);
        let mut b = Shared::with_seed(9);
        let x = eval_builtin(Builtin::Rand, &[&Value::scalar(2.0)], &mut a).unwrap();
        let y = eval_builtin(Builtin::Rand, &[&Value::scalar(2.0)], &mut b).unwrap();
        assert_eq!(x.re(), y.re());
    }

    #[test]
    fn size_forms() {
        let mut sh = Shared::new();
        let a = Value::filled(vec![2, 5], 0.0, Class::Double);
        let s = eval_builtin(Builtin::Size, &[&a], &mut sh).unwrap();
        assert_eq!(s.re(), &[2.0, 5.0]);
        let s2 = eval_builtin(Builtin::Size, &[&a, &Value::scalar(2.0)], &mut sh).unwrap();
        assert_eq!(s2.as_scalar(), Some(5.0));
        let s9 = eval_builtin(Builtin::Size, &[&a, &Value::scalar(9.0)], &mut sh).unwrap();
        assert_eq!(s9.as_scalar(), Some(1.0), "trailing dims are 1");
        let multi = eval_builtin_multi(Builtin::Size, 2, &[&a], &mut sh).unwrap();
        assert_eq!(multi[0].as_scalar(), Some(2.0));
        assert_eq!(multi[1].as_scalar(), Some(5.0));
    }

    #[test]
    fn size_multi_folds_trailing() {
        let mut sh = Shared::new();
        let a = Value::filled(vec![2, 3, 4], 0.0, Class::Double);
        let multi = eval_builtin_multi(Builtin::Size, 2, &[&a], &mut sh).unwrap();
        assert_eq!(multi[1].as_scalar(), Some(12.0));
    }

    #[test]
    fn output_sinks() {
        let mut sh = Shared::new();
        eval_builtin(Builtin::Disp, &[&Value::scalar(5.0)], &mut sh).unwrap();
        eval_builtin(
            Builtin::Fprintf,
            &[&Value::string("%d!\n"), &Value::scalar(7.0)],
            &mut sh,
        )
        .unwrap();
        assert_eq!(sh.out, "    5\n7!\n");
    }

    #[test]
    fn error_builtin_fails() {
        let mut sh = Shared::new();
        let e = eval_builtin(Builtin::ErrorFn, &[&Value::string("boom")], &mut sh).unwrap_err();
        assert_eq!(e.message, "boom");
    }

    #[test]
    fn op_subsref_with_colon() {
        let mut sh = Shared::new();
        let a = Value::from_parts(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let col2 = Value::scalar(2.0);
        let r = eval_op(
            &Op::Subsref,
            &[Arg::Val(&a), Arg::Colon, Arg::Val(&col2)],
            &mut sh,
        )
        .unwrap();
        assert_eq!(r.re(), &[3.0, 4.0]);
    }

    #[test]
    fn matrix_subscript_shapes_result() {
        let mut sh = Shared::new();
        let a = Value::row(vec![10.0, 20.0, 30.0, 40.0]);
        let idx = Value::from_parts(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = eval_op(&Op::Subsref, &[Arg::Val(&a), Arg::Val(&idx)], &mut sh).unwrap();
        assert_eq!(r.dims(), &[2, 2], "a(v) takes v's shape");
    }

    #[test]
    fn linspace_endpoints() {
        let mut sh = Shared::new();
        let r = eval_builtin(
            Builtin::Linspace,
            &[
                &Value::scalar(0.0),
                &Value::scalar(1.0),
                &Value::scalar(5.0),
            ],
            &mut sh,
        )
        .unwrap();
        assert_eq!(r.re(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn max_multi_output() {
        let mut sh = Shared::new();
        let v = Value::row(vec![2.0, 9.0, 4.0]);
        let outs = eval_builtin_multi(Builtin::Max, 2, &[&v], &mut sh).unwrap();
        assert_eq!(outs[0].as_scalar(), Some(9.0));
        assert_eq!(outs[1].as_scalar(), Some(2.0));
    }
}
