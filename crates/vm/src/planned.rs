//! The GCTD-planned VM — the `mat2c` execution model.
//!
//! Storage follows the [`StoragePlan`]: each function activation carries
//! a fixed **stack frame** holding every stack slot at its maximal group
//! size (§3.2.1), plus **heap slots** resized on the fly per the `∘`/`+`/
//! `±` definition annotations (§3.2.2). Variables bound to the same slot
//! genuinely share one buffer: elementwise updates whose destination
//! shares its operand's slot mutate the buffer in place (Figure 1's
//! specialization), and `subsasgn` grows within the slot.
//!
//! Soundness telemetry: if a definition ever needs more bytes than a
//! `∘`-annotated slot holds (which a correct plan rules out), the VM
//! grows the slot anyway, counts a **plan violation**, and fails the
//! run with a hard error once output is collected. Under
//! [`PlannedVm::with_shadow`] the VM instead *observes*: every slot
//! definition, read and heap event is appended to a
//! [`ShadowLog`](matc_analysis::ShadowLog) for the plan-vs-reality
//! replay (`matc shadow`), and violations are reported, not fatal.

use crate::compile::Compiled;
use crate::dispatch::{self, Arg, Shared};
use matc_analysis::shadow::{DefAction, ShadowLog};
use matc_frontend::ast::BinOp;
use matc_gctd::{ResizeKind, SlotKind, StoragePlan};
use matc_ir::ids::{FuncId, VarId};
use matc_ir::instr::{InstrKind, Op, Operand, Terminator};
use matc_ir::{Builtin, FuncIr};
use matc_runtime::error::{err, Result};
use matc_runtime::format;
use matc_runtime::mem::{ImageModel, MemRecorder};
use matc_runtime::ops::arith;
use matc_runtime::value::Value;
use std::collections::HashMap;

/// One storage slot at run time.
struct Slot {
    value: Value,
    /// Bytes charged to the heap for this slot (0 for stack slots and
    /// unallocated heap slots).
    charged: u64,
    kind: SlotKind,
    /// Whether any definition has written the slot yet.
    initialized: bool,
}

/// One function activation.
struct Frame {
    slots: Vec<Slot>,
    /// Immediates and unplanned temporaries (code literals, registers).
    aux: HashMap<VarId, Value>,
    stack_bytes: u64,
}

/// Borrows the current value of `v` from its slot or the immediates
/// table — the zero-copy read path.
fn operand_value<'a>(frame: &'a Frame, plan: &StoragePlan, v: VarId) -> Result<&'a Value> {
    if let Some(val) = frame.aux.get(&v) {
        return Ok(val);
    }
    match plan.slot_of(v) {
        Some(i) if frame.slots[i].initialized => Ok(&frame.slots[i].value),
        _ => err(format!("read of unset variable v{} (planned vm)", v.0)),
    }
}

/// The planned executor.
pub struct PlannedVm<'p> {
    compiled: &'p Compiled,
    /// Shared RNG + output.
    pub shared: Shared,
    /// Memory accounting under the mat2c image model.
    pub mem: MemRecorder,
    /// Definitions that outgrew a `∘` annotation or a stack slot —
    /// zero for a sound plan.
    pub plan_violations: u64,
    call_depth: usize,
    /// When observing, the probe log (`None` disables all recording).
    shadow: Option<ShadowLog>,
    /// Index of the currently-executing function (for probe events).
    cur_func: usize,
    /// Index of the currently-executing block (for probe events).
    cur_block: usize,
}

impl<'p> PlannedVm<'p> {
    /// Creates an executor over a compiled program.
    pub fn new(compiled: &'p Compiled) -> PlannedVm<'p> {
        PlannedVm {
            compiled,
            shared: Shared::new(),
            mem: MemRecorder::new(ImageModel::mat2c()),
            plan_violations: 0,
            call_depth: 0,
            shadow: None,
            cur_func: 0,
            cur_block: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shared = Shared::with_seed(seed);
        self
    }

    /// Enables shadow observation: slot definitions, reads and heap
    /// events are recorded into a [`ShadowLog`], and plan violations
    /// are counted instead of failing the run.
    pub fn with_shadow(mut self) -> Self {
        self.shadow = Some(ShadowLog::new());
        self
    }

    /// Takes the probe log recorded by a [`PlannedVm::with_shadow`]
    /// run (`None` if observation was never enabled).
    pub fn take_shadow(&mut self) -> Option<ShadowLog> {
        self.shadow.take()
    }

    /// Runs the entry function; returns the collected output.
    ///
    /// # Errors
    ///
    /// Propagates run-time errors — including, outside shadow mode, a
    /// hard error when any definition violated the storage plan (a `∘`
    /// slot resized or a stack slot overflowed): a violated plan means
    /// the generated C would have corrupted memory, so the run cannot
    /// be trusted in any build profile.
    pub fn run(&mut self) -> Result<String> {
        let entry = self.compiled.entry();
        self.call(entry, vec![])?;
        let out = std::mem::take(&mut self.shared.out);
        if self.plan_violations > 0 && self.shadow.is_none() {
            return err(format!(
                "storage plan violated {} time(s) at run time (a `∘` slot resized or a \
                 stack slot overflowed); the plan is unsound for this execution",
                self.plan_violations
            ));
        }
        Ok(out)
    }

    fn call(&mut self, fid: FuncId, args: Vec<Value>) -> Result<Vec<Value>> {
        self.call_depth += 1;
        // MATLAB's default RecursionLimit is 100; enforcing it also
        // bounds the host stack in debug builds.
        if self.call_depth > 100 {
            self.call_depth -= 1;
            return err("maximum recursion depth exceeded");
        }
        let func = self.compiled.ir.func(fid);
        let plan = self.compiled.plans.plan(fid);
        let (saved_func, saved_block) = (self.cur_func, self.cur_block);
        self.cur_func = fid.index();
        self.cur_block = func.entry.index();
        if let Some(log) = self.shadow.as_mut() {
            log.record_frame();
        }

        // Build the activation: one fixed stack frame for all stack
        // slots, heap slots start unallocated.
        let mut slots = Vec::with_capacity(plan.slots.len());
        let mut stack_bytes = 0u64;
        for info in &plan.slots {
            if let SlotKind::Stack { bytes } = info.kind {
                stack_bytes += bytes;
            }
            slots.push(Slot {
                value: Value::empty(),
                charged: 0,
                kind: info.kind,
                initialized: false,
            });
        }
        stack_bytes += 96; // saved registers, return address, locals
        self.mem.stack_push(stack_bytes);
        let mut frame = Frame {
            slots,
            aux: HashMap::new(),
            stack_bytes,
        };
        // Bind parameters.
        for (p, v) in func.params.iter().zip(args) {
            self.store(func, plan, &mut frame, *p, v)?;
        }

        let result = self.exec(func, plan, &mut frame);

        // Tear down: free heap slots, pop the stack frame.
        for s in &frame.slots {
            if s.charged > 0 {
                self.mem.heap_free(s.charged);
                let (t, level) = (self.mem.elapsed(), self.mem.live_heap());
                if let Some(log) = self.shadow.as_mut() {
                    log.record_heap_event(t, level);
                }
            }
        }
        self.mem.stack_pop(frame.stack_bytes);
        self.call_depth -= 1;
        self.cur_func = saved_func;
        self.cur_block = saved_block;
        result
    }

    fn exec(
        &mut self,
        func: &'p FuncIr,
        plan: &'p StoragePlan,
        frame: &mut Frame,
    ) -> Result<Vec<Value>> {
        let mut block = func.entry;
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > 500_000_000 {
                return err("execution exceeded the instruction guard");
            }
            self.cur_block = block.index();
            for instr in &func.block(block).instrs {
                self.instr(func, plan, instr, frame)?;
            }
            match &func.block(block).term {
                Terminator::Jump(b) => block = *b,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.read_operand(frame, plan, *cond)?;
                    let t = c.is_true();
                    self.mem.advance(1);
                    block = if t { *then_bb } else { *else_bb };
                }
                Terminator::Return => {
                    let outs = if func.ssa_outs.is_empty() {
                        func.outs.clone()
                    } else {
                        func.ssa_outs.clone()
                    };
                    let mut vals = Vec::with_capacity(outs.len());
                    for o in outs {
                        vals.push(
                            self.read_operand(frame, plan, o)
                                .unwrap_or_else(|_| Value::empty()),
                        );
                    }
                    return Ok(vals);
                }
            }
        }
    }

    /// Stores `value` as the new definition of `v`, applying the slot
    /// discipline and resize annotations.
    fn store(
        &mut self,
        _func: &FuncIr,
        plan: &StoragePlan,
        frame: &mut Frame,
        v: VarId,
        value: Value,
    ) -> Result<()> {
        let Some(si) = plan.slot_of(v) else {
            frame.aux.insert(v, value);
            return Ok(());
        };
        // Size under the *planned* element type — the C backend declares
        // BOOLEAN arrays as 1-byte, INTEGER as 4-byte, etc. (§3.2). A
        // complex value landing in a non-complex slot is a plan bug.
        let intrinsic = plan.slots[si].intrinsic;
        let needed = if value.is_complex() && !intrinsic.is_complex() {
            self.plan_violations += 1;
            value.payload_bytes()
        } else {
            value.numel() as u64 * intrinsic.byte_size()
        };
        let slot = &mut frame.slots[si];
        let action;
        match slot.kind {
            SlotKind::Stack { bytes } => {
                if needed > bytes {
                    self.plan_violations += 1;
                }
                slot.value = value;
                slot.initialized = true;
                action = DefAction::Stack;
            }
            SlotKind::Heap => {
                match plan.resize_of(v) {
                    ResizeKind::NoResize => {
                        if slot.charged == 0 {
                            slot.charged = self.mem.heap_alloc(needed);
                            action = DefAction::Alloc;
                        } else if needed > slot.charged {
                            self.plan_violations += 1;
                            slot.charged = self.mem.heap_realloc(slot.charged, needed);
                            action = DefAction::Realloc;
                        } else {
                            action = DefAction::Reuse;
                        }
                    }
                    ResizeKind::Grow => {
                        if slot.charged == 0 {
                            slot.charged = self.mem.heap_alloc(needed);
                            action = DefAction::Alloc;
                        } else if needed + matc_runtime::mem::BLOCK_OVERHEAD > slot.charged {
                            slot.charged = self.mem.heap_realloc(slot.charged, needed);
                            action = DefAction::Realloc;
                        } else {
                            action = DefAction::Reuse;
                        }
                    }
                    ResizeKind::Resize => {
                        if slot.charged == 0 {
                            slot.charged = self.mem.heap_alloc(needed);
                            action = DefAction::Alloc;
                        } else if slot.charged != needed + matc_runtime::mem::BLOCK_OVERHEAD {
                            slot.charged = self.mem.heap_realloc(slot.charged, needed);
                            action = DefAction::Realloc;
                        } else {
                            action = DefAction::Reuse;
                        }
                    }
                }
                slot.value = value;
                slot.initialized = true;
            }
        }
        let fi = self.cur_func;
        let charged = frame.slots[si].charged;
        let (t, level) = (self.mem.elapsed(), self.mem.live_heap());
        if let Some(log) = self.shadow.as_mut() {
            log.record_def(fi, v.index(), si, needed, charged, action);
            if matches!(action, DefAction::Alloc | DefAction::Realloc) {
                log.record_heap_event(t, level);
            }
        }
        Ok(())
    }

    fn instr(
        &mut self,
        func: &'p FuncIr,
        plan: &'p StoragePlan,
        instr: &'p matc_ir::Instr,
        frame: &mut Frame,
    ) -> Result<()> {
        match &instr.kind {
            InstrKind::Const { dst, value } => {
                let v = crate::mcc::value_of_const(value);
                self.mem.advance(1);
                self.store(func, plan, frame, *dst, v)?;
            }
            InstrKind::Copy { dst, src } => {
                // Copies between distinct slots materialize; same-slot
                // copies were removed by the plan-aware SSA inversion.
                let v = self.read_operand(frame, plan, *src)?;
                self.mem.advance(v.numel() as u64);
                self.store(func, plan, frame, *dst, v)?;
            }
            InstrKind::Compute { dst, op, args } => {
                let result = self.compute(plan, frame, *dst, op, args)?;
                self.mem.advance(result.numel() as u64);
                self.store(func, plan, frame, *dst, result)?;
            }
            InstrKind::Phi { .. } => {
                return err("planned vm executes non-SSA code; φ encountered");
            }
            InstrKind::CallMulti {
                dsts,
                func: name,
                args,
            } => {
                let vals = self.gather(frame, plan, args)?;
                if let Some(fid) = self.compiled.ir.by_name.get(name).copied() {
                    let outs = self.call(fid, vals)?;
                    for (d, o) in dsts.iter().zip(outs) {
                        self.store(func, plan, frame, *d, o)?;
                    }
                } else if let Some(b) = Builtin::from_name(name) {
                    let refs: Vec<&Value> = vals.iter().collect();
                    let outs = dispatch::eval_builtin_multi(
                        b,
                        dsts.len().max(1),
                        &refs,
                        &mut self.shared,
                    )?;
                    self.mem.advance(4);
                    for (d, o) in dsts.iter().zip(outs) {
                        self.store(func, plan, frame, *d, o)?;
                    }
                } else {
                    return err(format!("undefined function `{name}`"));
                }
            }
            InstrKind::Display { value, label } => {
                let v = self.read_operand(frame, plan, *value)?;
                self.shared.out.push_str(&format::echo(label, &v));
                self.mem.advance(4);
            }
            InstrKind::Effect { builtin, args } => {
                let vals = self.gather(frame, plan, args)?;
                let refs: Vec<&Value> = vals.iter().collect();
                dispatch::eval_builtin(*builtin, &refs, &mut self.shared)?;
                self.mem.advance(4);
            }
        }
        Ok(())
    }

    fn read_operand(&mut self, frame: &Frame, plan: &StoragePlan, v: VarId) -> Result<Value> {
        let value = operand_value(frame, plan, v).cloned()?;
        if plan.slot_of(v).is_some() {
            let (fi, bi) = (self.cur_func, self.cur_block);
            if let Some(log) = self.shadow.as_mut() {
                log.record_read(fi, bi, v.index());
            }
        }
        Ok(value)
    }

    fn gather(
        &mut self,
        frame: &Frame,
        plan: &StoragePlan,
        args: &[Operand],
    ) -> Result<Vec<Value>> {
        args.iter()
            .map(|a| match a {
                Operand::Var(v) => self.read_operand(frame, plan, *v),
                Operand::ColonAll => err("unexpected `:` outside subscripts"),
            })
            .collect()
    }

    /// Computes an operation, taking the allocation-free in-place path
    /// when the destination shares its array operand's slot.
    fn compute(
        &mut self,
        plan: &StoragePlan,
        frame: &mut Frame,
        dst: VarId,
        op: &Op,
        args: &[Operand],
    ) -> Result<Value> {
        // In-place elementwise: dst and first-or-second operand in the
        // same slot, real data (Figure 1's generated-C specialization).
        if let (Op::Bin(b), Some(dslot)) = (op, plan.slot_of(dst)) {
            // (kernel, commutative, other-must-be-scalar): `*` and `/`
            // are elementwise — hence in-place — only against a scalar
            // operand (§2.3's dual semantics of `*`).
            type InplaceKernel = (fn(f64, f64) -> f64, bool, bool);
            let kernel: Option<InplaceKernel> = match b {
                BinOp::Add => Some((|x, y| x + y, true, false)),
                BinOp::Sub => Some((|x, y| x - y, false, false)),
                BinOp::ElemMul => Some((|x, y| x * y, true, false)),
                BinOp::ElemDiv => Some((|x, y| x / y, false, false)),
                BinOp::MatMul => Some((|x, y| x * y, true, true)),
                BinOp::MatDiv => Some((|x, y| x / y, false, true)),
                _ => None,
            };
            if let Some((k, commutative, need_scalar)) = kernel {
                let v0 = args[0].as_var();
                let v1 = args[1].as_var();
                let slot_of = |v: Option<VarId>| v.and_then(|v| plan.slot_of(v));
                // dst in-place in operand 0?
                let try_inplace = |frame: &mut Frame,
                                   buf_var: VarId,
                                   other_var: VarId|
                 -> Result<Option<Value>> {
                    if need_scalar {
                        let other = if other_var == buf_var {
                            &frame.slots[dslot].value
                        } else {
                            operand_value(frame, plan, other_var)?
                        };
                        if !other.is_scalar() {
                            return Ok(None); // true matrix op: allocate
                        }
                    }
                    let mut buf = std::mem::replace(&mut frame.slots[dslot].value, Value::empty());
                    // `c = a op a`: the operand is the taken buffer itself.
                    let done = if other_var == buf_var {
                        let rhs = buf.clone();
                        arith::ew_assign(&mut buf, &rhs, k)
                    } else {
                        let other = operand_value(frame, plan, other_var)?;
                        arith::ew_assign(&mut buf, other, k)
                    };
                    if done {
                        Ok(Some(buf))
                    } else {
                        frame.slots[dslot].value = buf;
                        Ok(None)
                    }
                };
                if slot_of(v0) == Some(dslot) && frame.slots[dslot].initialized {
                    if let Some(r) = try_inplace(frame, v0.unwrap(), v1.unwrap())? {
                        return Ok(r);
                    }
                } else if commutative
                    && slot_of(v1) == Some(dslot)
                    && frame.slots[dslot].initialized
                {
                    if let Some(r) = try_inplace(frame, v1.unwrap(), v0.unwrap())? {
                        return Ok(r);
                    }
                }
            }
        }
        // In-place subsasgn: move the array out of the shared slot and
        // let the growth logic reuse its buffer.
        if let (Op::Subsasgn, Some(dslot)) = (op, plan.slot_of(dst)) {
            if let Some(Operand::Var(a)) = args.first() {
                if plan.slot_of(*a) == Some(dslot) && frame.slots[dslot].initialized {
                    let arr = std::mem::replace(&mut frame.slots[dslot].value, Value::empty());
                    let r = self.read_operand(frame, plan, args[1].as_var().unwrap())?;
                    let mut subs = Vec::with_capacity(args.len() - 2);
                    for s in &args[2..] {
                        subs.push(match s {
                            Operand::ColonAll => matc_runtime::ops::index::Sub::Colon,
                            Operand::Var(v) => matc_runtime::ops::index::Sub::from_value(
                                &self.read_operand(frame, plan, *v)?,
                            )?,
                        });
                    }
                    return matc_runtime::ops::index::subsasgn(arr, &r, &subs);
                }
            }
        }
        if let Op::Call(name) = op {
            let vals = self.gather(frame, plan, args)?;
            let fid = *self
                .compiled
                .ir
                .by_name
                .get(name)
                .ok_or_else(|| matc_runtime::RtError::new(format!("undefined `{name}`")))?;
            let mut outs = self.call(fid, vals)?;
            return outs
                .drain(..)
                .next()
                .ok_or_else(|| matc_runtime::RtError::new(format!("`{name}` returned nothing")));
        }
        // General path: operands are borrowed straight from their slots.
        let mut arg_refs: Vec<Arg<'_>> = Vec::with_capacity(args.len());
        for a in args {
            arg_refs.push(match a {
                Operand::Var(v) => Arg::Val(operand_value(frame, plan, *v)?),
                Operand::ColonAll => Arg::Colon,
            });
        }
        dispatch::eval_op(op, &arg_refs, &mut self.shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp::Interp;
    use matc_frontend::parser::parse_program;
    use matc_gctd::GctdOptions;

    fn run_both(srcs: &[&str]) -> (String, String, u64) {
        let ast = parse_program(srcs.iter().copied()).unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        let got = vm.run().unwrap_or_else(|e| panic!("planned vm error: {e}"));
        let mut interp = Interp::new(&ast);
        let want = interp.run().unwrap_or_else(|e| panic!("interp error: {e}"));
        (got, want, vm.plan_violations)
    }

    #[test]
    fn matches_interpreter_on_loops() {
        let (got, want, violations) = run_both(&[
            "function f()\ns = 0;\nfor i = 1:100\ns = s + i * i;\nend\nfprintf('%d\\n', s);\n",
        ]);
        assert_eq!(got, want);
        assert_eq!(violations, 0);
    }

    #[test]
    fn matches_interpreter_on_arrays() {
        let (got, want, violations) = run_both(&[
            "function f()\na = rand(8, 8);\nb = a + 1;\nc = b .* b;\nd = c * c;\nfprintf('%.10f\\n', sum(sum(d)));\n",
        ]);
        assert_eq!(got, want);
        assert_eq!(violations, 0);
    }

    #[test]
    fn matches_interpreter_on_growth() {
        let (got, want, violations) = run_both(&[
            "function f()\na = [];\nfor i = 1:20\na(i) = i * 2;\nend\nfprintf('%d ', a);\nfprintf('\\n');\n",
        ]);
        assert_eq!(got, want);
        assert_eq!(violations, 0);
    }

    #[test]
    fn matches_interpreter_on_calls_and_branches() {
        let (got, want, violations) = run_both(&[
            "function f()\nfor i = 1:10\nfprintf('%d ', collatz(i));\nend\nfprintf('\\n');\nend\nfunction n = collatz(x)\nn = 0;\nwhile x ~= 1\nif mod(x, 2) == 0\nx = x / 2;\nelse\nx = 3 * x + 1;\nend\nn = n + 1;\nend\nend\n",
        ]);
        assert_eq!(got, want);
        assert_eq!(violations, 0);
    }

    #[test]
    fn matches_on_matrix_ops() {
        let (got, want, violations) = run_both(&[
            "function f()\na = [2 1; 1 3];\nb = [3; 5];\nx = a \\ b;\nfprintf('%.8f %.8f\\n', x(1), x(2));\ny = a';\nfprintf('%g\\n', sum(sum(y)));\n",
        ]);
        assert_eq!(got, want);
        assert_eq!(violations, 0);
    }

    #[test]
    fn stack_frame_accounting() {
        let ast =
            parse_program(["function f()\na = rand(16, 16);\nfprintf('%.6f\\n', sum(sum(a)));\n"])
                .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        vm.run().unwrap();
        // The 16x16 double lives on the stack: segment grew past a page.
        assert!(
            vm.mem.stack_segment() >= 16 * 16 * 8,
            "stack segment {}",
            vm.mem.stack_segment()
        );
        assert_eq!(vm.mem.live_heap(), 0, "nothing left on the heap");
    }

    #[test]
    fn heap_slots_for_symbolic_sizes() {
        let ast = parse_program([
            "function driver()\nkernel(rand(1, 1) * 10 + 5);\nend\nfunction kernel(x)\nn = floor(x);\na = rand(n, n);\nfprintf('%.6f\\n', sum(sum(a)));\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        vm.run().unwrap();
        assert_eq!(vm.mem.live_heap(), 0, "heap slots freed at teardown");
        assert_eq!(vm.plan_violations, 0);
    }

    #[test]
    fn example1_chain_reuses_one_heap_slot() {
        // Paper Example 1 as an executable: four symbolic-shape arrays in
        // one slot; heap blocks stay at ~1 during the chain.
        let ast = parse_program([
            "function driver()\nt3 = chain(rand(32, 32));\nfprintf('%.6f\\n', sum(sum(abs(t3))));\nend\nfunction t3 = chain(t0)\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\nt3 = tan(t2);\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        let out = vm.run().unwrap();
        let mut interp = Interp::new(&ast);
        let want = interp.run().unwrap();
        assert_eq!(out, want);
        assert_eq!(vm.plan_violations, 0);
    }

    #[test]
    fn without_gctd_mode_still_correct() {
        let ast = parse_program([
            "function f()\na = rand(6, 6);\nb = a + 1;\nc = b .* 2;\nfprintf('%.8f\\n', sum(sum(c)));\n",
        ])
        .unwrap();
        let on = compile(&ast, GctdOptions::default()).unwrap();
        let off = compile(
            &ast,
            GctdOptions {
                coalesce: false,
                ..GctdOptions::default()
            },
        )
        .unwrap();
        let out_on = PlannedVm::new(&on).run().unwrap();
        let mut vm_off = PlannedVm::new(&off);
        let out_off = vm_off.run().unwrap();
        assert_eq!(out_on, out_off);
        // The baseline heap-allocates every array; GCTD's plan carries
        // the arrays in one coalesced stack frame instead.
        assert!(on.plans.total_stats().stack_bytes_total > 0);
        assert_eq!(off.plans.total_stats().stack_bytes_total, 0);
        assert!(vm_off.mem.avg_heap() > 0.0, "baseline lives on the heap");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::compile::compile;
    use matc_frontend::parser::parse_program;
    use matc_gctd::GctdOptions;

    #[test]
    fn deep_recursion_is_caught() {
        let ast = parse_program([
            "function f()\nfprintf('%d\\n', r(1));\nend\nfunction y = r(x)\ny = r(x + 1);\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        let e = vm.run().unwrap_err();
        assert!(e.message.contains("recursion"), "{e}");
    }

    #[test]
    fn runtime_error_propagates_through_calls() {
        let ast = parse_program([
            "function f()\nfprintf('%g\\n', g());\nend\nfunction y = g()\na = [1 2];\ny = a(1) / a(2);\nerror('boom');\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let e = PlannedVm::new(&compiled).run().unwrap_err();
        assert_eq!(e.message, "boom");
    }

    #[test]
    fn multi_output_user_call_through_slots() {
        let ast = parse_program([
            "function f()\n[a, b, c] = three(2);\nfprintf('%g %g %g\\n', a, b, c);\nend\nfunction [x, y, z] = three(k)\nx = k;\ny = k * k;\nz = k + 10;\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let out = PlannedVm::new(&compiled).run().unwrap();
        assert_eq!(out, "2 4 12\n");
    }

    #[test]
    fn recursive_function_with_arrays() {
        // Each activation gets its own frame; slots must not leak across
        // recursion levels.
        let ast = parse_program([
            "function f()\nfprintf('%.6f\\n', walk(4));\nend\nfunction s = walk(n)\na = rand(3, 3);\nif n <= 0\ns = sum(sum(a));\nelse\ns = sum(sum(a)) + walk(n - 1);\nend\nend\n",
        ])
        .unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mut vm = PlannedVm::new(&compiled);
        let out = vm.run().unwrap();
        let mut interp = crate::interp::Interp::new(&ast);
        assert_eq!(out, interp.run().unwrap());
        assert_eq!(vm.plan_violations, 0);
        assert_eq!(vm.mem.live_heap(), 0);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let ast =
            parse_program(["function f()\nfprintf('%.12f\\n', sum(sum(rand(4, 4))));\n"]).unwrap();
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let a = PlannedVm::new(&compiled).with_seed(7).run().unwrap();
        let b = PlannedVm::new(&compiled).with_seed(7).run().unwrap();
        let c = PlannedVm::new(&compiled).with_seed(8).run().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
