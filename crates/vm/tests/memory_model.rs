//! The §4.5 memory-model behaviors Figures 2–4 rest on, asserted
//! directly: per-array `mxArray` descriptor charges in the mcc model,
//! stack-frame versus heap placement in the planned (mat2c) model, the
//! grow-only stack segment, and the GCTD-versus-none heap gap.

use matc_frontend::parser::parse_program;
use matc_gctd::GctdOptions;
use matc_runtime::mem::{BLOCK_OVERHEAD, PAGE};
use matc_vm::compile::compile;
use matc_vm::{MccVm, PlannedVm};

/// A fully statically-sized program: three 20×20 REAL arrays.
const STATIC_PROG: &str = "a = rand(20, 20);\nb = a + 1;\nc = b * b;\ndisp(sum(sum(c)));\n";

fn compiled(src: &str, opts: GctdOptions) -> matc_vm::compile::Compiled {
    let ast = parse_program([src]).unwrap();
    compile(&ast, opts).unwrap()
}

#[test]
fn mcc_charges_descriptor_plus_payload_per_array() {
    let c = compiled(STATIC_PROG, GctdOptions::default());
    let mut vm = MccVm::new(&c.ir);
    vm.run().unwrap();
    // At peak, the three 20x20 REAL arrays are live simultaneously on
    // the heap: 3 x (88-byte mxArray descriptor + 3200-byte payload),
    // each plus allocator overhead.
    let one = matc_vm::MX_HEADER + 20 * 20 * 8 + 2 * BLOCK_OVERHEAD;
    let floor = 3 * one;
    let peak = vm.mem.peak_dynamic_data();
    assert!(
        peak >= floor,
        "mcc peak {peak}B below the 3-array floor {floor}B"
    );
    // And the mcc model keeps the stack at its initial page: arrays
    // never live in the frame.
    assert!((vm.mem.avg_stack() - PAGE as f64).abs() < 1.0);
}

#[test]
fn planned_vm_stack_allocates_static_programs() {
    let c = compiled(STATIC_PROG, GctdOptions::default());
    let mut vm = PlannedVm::new(&c);
    vm.run().unwrap();
    assert_eq!(vm.plan_violations, 0);
    // Every variable is statically estimable, so the plan spends zero
    // heap; the whole working set is the fixed stack frame.
    assert_eq!(
        vm.mem.avg_heap(),
        0.0,
        "static program touched the heap:\n{:?}",
        c.plans.total_stats()
    );
    // The frame holds at least one 3200-byte array (after coalescing
    // possibly exactly one), so the stack segment grew past one page.
    assert!(vm.mem.peak_dynamic_data() >= PAGE);
}

#[test]
fn planned_vm_beats_mcc_on_average_dynamic_data() {
    // The Figure 2 direction on a static benchmark: the planned VM's
    // time-weighted dynamic data sits below the mcc model's.
    let c = compiled(STATIC_PROG, GctdOptions::default());
    let mut planned = PlannedVm::new(&c);
    planned.run().unwrap();
    let mut mcc = MccVm::new(&c.ir);
    mcc.run().unwrap();
    assert!(
        planned.mem.avg_dynamic_data() < mcc.mem.avg_dynamic_data(),
        "planned {} >= mcc {}",
        planned.mem.avg_dynamic_data(),
        mcc.mem.avg_dynamic_data()
    );
}

#[test]
fn gctd_plan_uses_no_more_storage_than_no_gctd() {
    // A fiff-like rotation keeps three arrays live in sequence; with
    // coalescing they fold into fewer slots, without it each SSA
    // version gets its own storage.
    let src = "u0 = rand(30, 30);\nu1 = u0 + 1;\nfor t = 1:5\n  u2 = u1 .* 2 - u0;\n  u0 = u1;\n  u1 = u2;\nend\ndisp(sum(sum(u1)));\n";
    let with = compiled(src, GctdOptions::default());
    let without = compiled(
        src,
        GctdOptions {
            coalesce: false,
            ..GctdOptions::default()
        },
    );
    let mut a = PlannedVm::new(&with);
    let out_a = a.run().unwrap();
    let mut b = PlannedVm::new(&without);
    let out_b = b.run().unwrap();
    assert_eq!(out_a, out_b, "plans changed observable behavior");
    assert!(
        a.mem.peak_dynamic_data() <= b.mem.peak_dynamic_data(),
        "GCTD peak {} exceeds no-GCTD peak {}",
        a.mem.peak_dynamic_data(),
        b.mem.peak_dynamic_data()
    );
    assert!(
        a.mem.avg_dynamic_data() < b.mem.avg_dynamic_data(),
        "GCTD avg {} not below no-GCTD avg {}",
        a.mem.avg_dynamic_data(),
        b.mem.avg_dynamic_data()
    );
}

#[test]
fn stack_segment_never_shrinks() {
    // Solaris semantics (§4.5.1): the stack segment is a high watermark.
    // After a deep call returns, the planned VM's segment stays grown.
    // 9 live frames x 3200-byte arrays comfortably exceed one 8 KB page.
    let src = "function main()\nx = go(8);\ndisp(x);\ny = 1 + 1;\ndisp(y);\n\nfunction r = go(k)\nif k <= 0\n  r = 0;\nelse\n  a = rand(20, 20);\n  r = go(k - 1) + sum(sum(a));\nend\n";
    let c = compiled(src, GctdOptions::default());
    let mut vm = PlannedVm::new(&c);
    vm.run().unwrap();
    let samples = vm.mem.samples();
    let peak_stack = samples.iter().map(|s| s.stack).max().unwrap();
    let last_stack = samples.last().unwrap().stack;
    assert_eq!(
        last_stack, peak_stack,
        "stack segment shrank from {peak_stack} to {last_stack}"
    );
    assert!(peak_stack > PAGE, "recursion never grew the segment");
}
