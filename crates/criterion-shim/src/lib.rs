//! A small, offline, drop-in subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace aliases `criterion` to this shim (see the root
//! `Cargo.toml`). It supports the surface our benches use — benchmark
//! groups, `sample_size`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — and reports the
//! median wall-clock time per iteration on stdout. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    /// Optional substring filter taken from argv, mirroring
    /// `cargo bench -- <filter>`.
    filter: Option<String>,
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_with_input(BenchmarkId::from_parameter(""), &(), {
            let mut f = f;
            move |b, _| f(b)
        });
        g.finish();
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher, input);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed / bencher.iters);
            }
        }
        let median = median(&mut samples).unwrap_or_default();
        println!(
            "{full_id}: median {median:?} over {} samples",
            samples.len()
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The upper median of `samples` (sorts in place; `None` when empty).
/// Shared by the bench reporter above and the `matc perf-bench` gate.
pub fn median<T: Ord + Copy>(samples: &mut [T]) -> Option<T> {
    samples.sort_unstable();
    samples.get(samples.len() / 2).copied()
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::median;

    #[test]
    fn median_picks_the_middle_sample() {
        assert_eq!(median::<u64>(&mut []), None);
        assert_eq!(median(&mut [7u64]), Some(7));
        assert_eq!(median(&mut [3u64, 9, 1]), Some(3));
        assert_eq!(median(&mut [4u64, 2, 8, 6]), Some(6));
    }
}
