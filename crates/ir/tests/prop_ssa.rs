//! Property tests for SSA machinery: parallel-copy sequentialization
//! must implement exact parallel semantics for arbitrary copy sets, and
//! SSA construction + optimization must preserve verifier invariants on
//! randomly structured programs.

use matc_ir::ids::VarId;
use matc_ir::ssa_out::sequentialize;
use proptest::prelude::*;

proptest! {
    #[test]
    fn sequentialize_implements_parallel_semantics(
        srcs in proptest::collection::vec(0..8usize, 1..8)
    ) {
        // Destinations 0..n (distinct), sources arbitrary (may repeat,
        // may alias destinations — including permutations and cycles).
        let copies: Vec<(VarId, VarId)> = srcs
            .iter()
            .enumerate()
            .map(|(d, s)| (VarId::new(d), VarId::new(*s)))
            .collect();
        let mut next_temp = 100usize;
        let seq = sequentialize(
            &copies,
            || {
                next_temp += 1;
                VarId::new(next_temp)
            },
            &mut |_, _| false,
        );
        // Parallel semantics: every dst ends with its src's ORIGINAL value.
        let mut env: Vec<i64> = (0..200).map(|i| i as i64 * 10).collect();
        let expected: Vec<i64> = copies.iter().map(|(_, s)| env[s.index()]).collect();
        for (d, s) in &seq {
            env[d.index()] = env[s.index()];
        }
        for ((d, _), want) in copies.iter().zip(expected) {
            prop_assert_eq!(env[d.index()], want, "copy set {:?} seq {:?}", copies, seq);
        }
    }

    #[test]
    fn ssa_of_random_structured_programs_verifies(
        ops in proptest::collection::vec((0..4usize, 0..4usize, 0..3u8), 1..12)
    ) {
        // Build nested structured code from an op list.
        let mut body = String::new();
        for i in 0..4 {
            body.push_str(&format!("v{i} = {i};\n"));
        }
        for (a, b, kind) in &ops {
            match kind {
                0 => body.push_str(&format!("v{a} = v{a} + v{b};\n")),
                1 => body.push_str(&format!(
                    "if v{a} > v{b}\nv{a} = v{b} * 2;\nelse\nv{b} = v{a} + 1;\nend\n"
                )),
                _ => body.push_str(&format!(
                    "for q = 1:3\nv{a} = v{a} + v{b};\nend\n"
                )),
            }
        }
        body.push_str("fprintf('%g %g %g %g\\n', v0, v1, v2, v3);\n");
        let src = format!("function f()\n{body}");
        let ast = matc_frontend::parser::parse_program([src.as_str()]).unwrap();
        let mut ir = matc_ir::build_ssa(&ast).unwrap();
        matc_ir::verify_program(&ir).unwrap();
        matc_passes::optimize_program(&mut ir);
        matc_ir::verify_program(&ir).unwrap();
        // Destruction leaves a φ-free program.
        for f in ir.functions.iter_mut() {
            matc_ir::ssa_destruct(f, |_, _| false);
            for b in f.block_ids() {
                prop_assert_eq!(f.block(b).phis().count(), 0);
            }
        }
    }
}
