//! Dominator-tree correctness on random control flow: the CHK
//! iterative algorithm's results are checked against the definitional
//! naive computation (a dominates b iff deleting a disconnects b from
//! the entry), and the dominance frontier against its definition.

use matc_frontend::parser::parse_program;
use matc_ir::dom::DomTree;
use matc_ir::instr::Terminator;
use matc_ir::{lower_program, BlockId, FuncIr};
use proptest::prelude::*;

/// Random structured control flow (the only kind the frontend makes —
/// which is exactly what the compiler will ever see).
fn arb_block(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..3usize, 1..9i32).prop_map(|(v, k)| format!("v{v} = v{v} + {k};\n")),
        Just("".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_block(depth - 1);
    prop_oneof![
        leaf,
        (0..3usize, sub.clone(), sub.clone())
            .prop_map(|(v, a, b)| format!("if v{v} > 0\n{a}else\n{b}end\n")),
        (0..3usize, sub.clone()).prop_map(|(v, a)| format!("if v{v} > 1\n{a}end\n")),
        (sub.clone()).prop_map(|a| format!("for t = 1:3\n{a}end\n")),
        (0..3usize, sub.clone())
            .prop_map(|(v, a)| format!("while v{v} < 5\nv{v} = v{v} + 1;\n{a}end\n")),
        (sub.clone()).prop_map(|a| format!("for t = 1:4\n{a}if t > 2\nbreak;\nend\nend\n")),
        (sub.clone()).prop_map(|a| format!("for t = 1:4\nif t == 2\ncontinue;\nend\n{a}end\n")),
    ]
    .boxed()
}

fn successors(f: &FuncIr, b: BlockId) -> Vec<BlockId> {
    match &f.block(b).term {
        Terminator::Jump(t) => vec![*t],
        Terminator::Branch {
            then_bb, else_bb, ..
        } => vec![*then_bb, *else_bb],
        Terminator::Return => vec![],
    }
}

/// Blocks reachable from `entry` without passing through `skip`.
fn reachable_avoiding(f: &FuncIr, skip: Option<BlockId>) -> Vec<bool> {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    if skip == Some(f.entry) {
        return seen;
    }
    let mut stack = vec![f.entry];
    seen[f.entry.index()] = true;
    while let Some(b) = stack.pop() {
        for s in successors(f, b) {
            if Some(s) != skip && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn chk_matches_definitional_dominance(body in arb_block(3)) {
        let src = format!("v0 = 1;\nv1 = 2;\nv2 = 3;\n{body}disp(v0 + v1 + v2);\n");
        let ast = parse_program([src.as_str()]).unwrap();
        let prog = lower_program(&ast).unwrap();
        let f = prog.entry_func();
        let dom = DomTree::compute(f);
        let reach = reachable_avoiding(f, None);

        for a in f.block_ids() {
            if !reach[a.index()] {
                continue;
            }
            let cut = reachable_avoiding(f, Some(a));
            for b in f.block_ids() {
                if !reach[b.index()] {
                    continue;
                }
                // Definition: a dom b ⟺ every entry→b path passes a.
                let dom_by_def = a == b || !cut[b.index()];
                prop_assert_eq!(
                    dom.dominates(a, b),
                    dom_by_def,
                    "dominates({:?}, {:?}) wrong in\n{}",
                    a,
                    b,
                    f
                );
            }
        }
    }

    #[test]
    fn frontier_matches_definition(body in arb_block(3)) {
        // DF(a) = { y : a dominates a predecessor of y, a !sdom y }.
        let src = format!("v0 = 1;\nv1 = 2;\nv2 = 3;\n{body}disp(v0 + v1 + v2);\n");
        let ast = parse_program([src.as_str()]).unwrap();
        let prog = lower_program(&ast).unwrap();
        let f = prog.entry_func();
        let dom = DomTree::compute(f);
        let reach = reachable_avoiding(f, None);
        let preds = f.predecessors();

        for a in f.block_ids() {
            if !reach[a.index()] {
                continue;
            }
            let mut expect: Vec<BlockId> = f
                .block_ids()
                .filter(|y| {
                    reach[y.index()]
                        && preds[y.index()]
                            .iter()
                            .any(|p| reach[p.index()] && dom.dominates(a, *p))
                        && !(a != *y && dom.dominates(a, *y))
                })
                .collect();
            expect.sort();
            let mut got: Vec<BlockId> = dom.frontier(a).to_vec();
            got.sort();
            got.dedup();
            prop_assert_eq!(got, expect, "DF({:?}) wrong in\n{}", a, f);
        }
    }
}
