//! AST → SO-form CFG lowering.
//!
//! Produces the *Single Operator* form of §2.3: every assignment carries
//! at most one MATLAB operation, with temporaries introduced for compound
//! expressions. Also performed here:
//!
//! * call-vs-index resolution (`a(i)` is `subsref` when `a` is assigned
//!   anywhere in the function, a call otherwise);
//! * `end` rewriting to `numel`/`size` of the innermost indexed array;
//! * short-circuit `&&`/`||` lowering to control flow;
//! * `if`/`while` conditions wrapped in the internal `istrue` builtin;
//! * `for` over a literal range lowered to a scalar counting loop (no
//!   range vector is materialized), other iterables to indexed traversal;
//! * indexed assignment lowered to `a <- subsasgn(a, r, subs...)`;
//! * MATLAB's deletion/shrinkage form `a(i) = []` rejected, as in the
//!   paper's translator (§2.3.3).

use crate::builtins::Builtin;
use crate::cfg::{FuncIr, IrProgram, VarInfo};
use crate::ids::{BlockId, VarId};
use crate::instr::{Const, Instr, InstrKind, Op, Operand, Terminator};
use matc_frontend::ast::{BinOp, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind, UnOp};
use matc_frontend::span::Span;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An error produced during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Description, lowercase, no trailing punctuation.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl LowerError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        LowerError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a parsed program to SO-form IR (not yet SSA).
///
/// # Errors
///
/// Fails on undefined names, misplaced `end`/`:`, the unsupported
/// shrinkage form `a(i) = []`, and arity mismatches on user calls.
///
/// # Examples
///
/// ```
/// use matc_frontend::parser::parse_program;
/// use matc_ir::lower::lower_program;
///
/// let ast = parse_program(["function y = f(x)\ny = x + 1;\n"]).unwrap();
/// let ir = lower_program(&ast)?;
/// assert_eq!(ir.entry_func().name, "f");
/// # Ok::<(), matc_ir::lower::LowerError>(())
/// ```
pub fn lower_program(ast: &Program) -> Result<IrProgram, LowerError> {
    let mut signatures = HashMap::new();
    for f in &ast.functions {
        signatures.insert(f.name.clone(), (f.params.len(), f.outs.len()));
    }
    let mut prog = IrProgram::default();
    for f in &ast.functions {
        let ir = FunctionLowerer::new(f, &signatures).lower()?;
        prog.add(ir);
    }
    prog.entry = prog.by_name.get(&ast.entry).copied();
    Ok(prog)
}

/// Tracks the array and dimension position that `end` refers to.
struct EndCtx {
    array: VarId,
    dim: usize,
    ndims: usize,
}

struct LoopCtx {
    break_target: BlockId,
    continue_target: BlockId,
}

struct FunctionLowerer<'a> {
    ast: &'a Function,
    signatures: &'a HashMap<String, (usize, usize)>,
    func: FuncIr,
    vars: HashMap<String, VarId>,
    /// Names assigned anywhere in this function (so `n(i)` is indexing).
    assigned: HashSet<String>,
    current: BlockId,
    exit_block: BlockId,
    loops: Vec<LoopCtx>,
    end_stack: Vec<EndCtx>,
    /// Whether the current block already ended (after break/return).
    terminated: bool,
}

impl<'a> FunctionLowerer<'a> {
    fn new(ast: &'a Function, signatures: &'a HashMap<String, (usize, usize)>) -> Self {
        let mut func = FuncIr::new(ast.name.clone());
        let exit_block = func.add_block();
        func.block_mut(exit_block).term = Terminator::Return;
        let mut assigned = HashSet::new();
        for p in &ast.params {
            assigned.insert(p.clone());
        }
        for o in &ast.outs {
            assigned.insert(o.clone());
        }
        collect_assigned(&ast.body, &mut assigned);
        FunctionLowerer {
            ast,
            signatures,
            current: func.entry,
            exit_block,
            func,
            vars: HashMap::new(),
            assigned,
            loops: Vec::new(),
            end_stack: Vec::new(),
            terminated: false,
        }
    }

    fn lower(mut self) -> Result<FuncIr, LowerError> {
        for p in &self.ast.params {
            let v = self.source_var(p);
            self.func.params.push(v);
        }
        for o in &self.ast.outs {
            let v = self.source_var(o);
            self.func.outs.push(v);
        }
        for stmt in &self.ast.body {
            self.stmt(stmt)?;
        }
        if !self.terminated {
            let exit = self.exit_block;
            self.set_term(Terminator::Jump(exit));
        }
        Ok(self.func)
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    fn source_var(&mut self, name: &str) -> VarId {
        if let Some(v) = self.vars.get(name) {
            return *v;
        }
        let v = self.func.vars.push(VarInfo::source(name));
        self.vars.insert(name.to_string(), v);
        v
    }

    fn temp(&mut self) -> VarId {
        self.func.new_temp()
    }

    fn emit(&mut self, kind: InstrKind, span: Span) {
        if self.terminated {
            // Unreachable code after break/return: drop it, matching
            // MATLAB semantics (it can never run).
            return;
        }
        let cur = self.current;
        self.func.block_mut(cur).instrs.push(Instr::new(kind, span));
    }

    fn set_term(&mut self, term: Terminator) {
        if self.terminated {
            return;
        }
        let cur = self.current;
        self.func.block_mut(cur).term = term;
        self.terminated = true;
    }

    fn start_block(&mut self, b: BlockId) {
        self.current = b;
        self.terminated = false;
    }

    fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    fn const_into(&mut self, value: Const, span: Span) -> VarId {
        let dst = self.temp();
        self.emit(InstrKind::Const { dst, value }, span);
        dst
    }

    fn compute_into(
        &mut self,
        dst: Option<VarId>,
        op: Op,
        args: Vec<Operand>,
        span: Span,
    ) -> VarId {
        let dst = dst.unwrap_or_else(|| self.temp());
        self.emit(InstrKind::Compute { dst, op, args }, span);
        dst
    }

    fn is_variable(&self, name: &str) -> bool {
        self.assigned.contains(name)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match &stmt.kind {
            StmtKind::Assign { lhs, rhs, display } => self.assign(lhs, rhs, *display, stmt.span),
            StmtKind::MultiAssign {
                lhss,
                func,
                args,
                display,
            } => self.multi_assign(lhss, func, args, *display, stmt.span),
            StmtKind::ExprStmt { expr, display } => self.expr_stmt(expr, *display),
            StmtKind::If { arms, else_body } => self.if_stmt(arms, else_body.as_deref()),
            StmtKind::While { cond, body } => self.while_stmt(cond, body),
            StmtKind::For { var, iter, body } => self.for_stmt(var, iter, body, stmt.span),
            StmtKind::Break => {
                let target = match self.loops.last() {
                    Some(l) => l.break_target,
                    None => {
                        return Err(LowerError::new("`break` outside a loop", stmt.span));
                    }
                };
                self.set_term(Terminator::Jump(target));
                Ok(())
            }
            StmtKind::Continue => {
                let target = match self.loops.last() {
                    Some(l) => l.continue_target,
                    None => {
                        return Err(LowerError::new("`continue` outside a loop", stmt.span));
                    }
                };
                self.set_term(Terminator::Jump(target));
                Ok(())
            }
            StmtKind::Return => {
                let exit = self.exit_block;
                self.set_term(Terminator::Jump(exit));
                Ok(())
            }
        }
    }

    fn assign(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        display: bool,
        span: Span,
    ) -> Result<(), LowerError> {
        match lhs {
            LValue::Var(name) => {
                let dst = self.source_var(name);
                self.expr_into(Some(dst), rhs)?;
                if display {
                    self.emit(
                        InstrKind::Display {
                            value: dst,
                            label: name.clone(),
                        },
                        span,
                    );
                }
                Ok(())
            }
            LValue::Index { name, args } => {
                // Shrinkage `a(i) = []` is unsupported, as in the paper.
                if matches!(&rhs.kind, ExprKind::Matrix { rows } if rows.is_empty()) {
                    return Err(LowerError::new(
                        "array shrinkage `a(...) = []` is not supported by the translator",
                        span,
                    ));
                }
                if !self.is_variable(name) {
                    return Err(LowerError::new(
                        format!("indexed assignment to non-variable `{name}`"),
                        span,
                    ));
                }
                let arr = self.source_var(name);
                let value = self.expr_into(None, rhs)?;
                let subs = self.lower_subscripts(arr, args)?;
                let mut op_args = vec![Operand::Var(arr), Operand::Var(value)];
                op_args.extend(subs);
                self.compute_into(Some(arr), Op::Subsasgn, op_args, span);
                if display {
                    self.emit(
                        InstrKind::Display {
                            value: arr,
                            label: name.clone(),
                        },
                        span,
                    );
                }
                Ok(())
            }
            LValue::Ignore => {
                // `~ = rhs` is not legal MATLAB outside multi-assign.
                Err(LowerError::new(
                    "`~` is only valid in `[...] = f(...)`",
                    span,
                ))
            }
        }
    }

    fn multi_assign(
        &mut self,
        lhss: &[LValue],
        fname: &str,
        args: &[Expr],
        display: bool,
        span: Span,
    ) -> Result<(), LowerError> {
        // Validate callee: user function or multi-output builtin.
        let is_user = self.signatures.contains_key(fname);
        let is_builtin = Builtin::from_name(fname).is_some();
        if !is_user && !is_builtin {
            return Err(LowerError::new(
                format!("undefined function `{fname}`"),
                span,
            ));
        }
        if is_user {
            let (nparams, nouts) = self.signatures[fname];
            if args.len() > nparams {
                return Err(LowerError::new(
                    format!(
                        "too many inputs to `{fname}`: {} given, {} declared",
                        args.len(),
                        nparams
                    ),
                    span,
                ));
            }
            if lhss.len() > nouts {
                return Err(LowerError::new(
                    format!(
                        "too many outputs from `{fname}`: {} requested, {} declared",
                        lhss.len(),
                        nouts
                    ),
                    span,
                ));
            }
        }
        let mut arg_ops = Vec::with_capacity(args.len());
        for a in args {
            let v = self.expr_into(None, a)?;
            arg_ops.push(Operand::Var(v));
        }
        // Destinations: plain vars bind directly; indexed lvalues go via
        // a temporary and a subsasgn; `~` discards into a temp.
        let mut dsts = Vec::with_capacity(lhss.len());
        let mut post: Vec<(VarId, &LValue)> = Vec::new();
        for lhs in lhss {
            match lhs {
                LValue::Var(name) => dsts.push(self.source_var(name)),
                LValue::Index { .. } => {
                    let t = self.temp();
                    dsts.push(t);
                    post.push((t, lhs));
                }
                LValue::Ignore => dsts.push(self.temp()),
            }
        }
        self.emit(
            InstrKind::CallMulti {
                dsts: dsts.clone(),
                func: fname.to_string(),
                args: arg_ops,
            },
            span,
        );
        for (t, lhs) in post {
            if let LValue::Index { name, args } = lhs {
                if !self.is_variable(name) {
                    return Err(LowerError::new(
                        format!("indexed assignment to non-variable `{name}`"),
                        span,
                    ));
                }
                let arr = self.source_var(name);
                let subs = self.lower_subscripts(arr, args)?;
                let mut op_args = vec![Operand::Var(arr), Operand::Var(t)];
                op_args.extend(subs);
                self.compute_into(Some(arr), Op::Subsasgn, op_args, span);
            }
        }
        if display {
            for (dst, lhs) in dsts.iter().zip(lhss) {
                if let Some(name) = lhs.var_name() {
                    self.emit(
                        InstrKind::Display {
                            value: *dst,
                            label: name.to_string(),
                        },
                        span,
                    );
                }
            }
        }
        Ok(())
    }

    fn expr_stmt(&mut self, expr: &Expr, display: bool) -> Result<(), LowerError> {
        // Effect builtins in statement position become Effect instrs.
        if let ExprKind::Apply { name, args } = &expr.kind {
            if !self.is_variable(name) {
                if let Some(b) = Builtin::from_name(name) {
                    if b.is_effect() {
                        let mut ops = Vec::with_capacity(args.len());
                        for a in args {
                            let v = self.expr_into(None, a)?;
                            ops.push(Operand::Var(v));
                        }
                        self.emit(
                            InstrKind::Effect {
                                builtin: b,
                                args: ops,
                            },
                            expr.span,
                        );
                        return Ok(());
                    }
                }
                // A statement-position call of a user function with no
                // requested outputs.
                if let Some((nparams, _)) = self.signatures.get(name).copied() {
                    if args.len() > nparams {
                        return Err(LowerError::new(
                            format!("too many inputs to `{name}`"),
                            expr.span,
                        ));
                    }
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        let v = self.expr_into(None, a)?;
                        ops.push(Operand::Var(v));
                    }
                    self.emit(
                        InstrKind::CallMulti {
                            dsts: vec![],
                            func: name.clone(),
                            args: ops,
                        },
                        expr.span,
                    );
                    return Ok(());
                }
            }
        }
        // Otherwise: `ans = expr`, optionally displayed.
        let ans = self.source_var("ans");
        self.expr_into(Some(ans), expr)?;
        if display {
            self.emit(
                InstrKind::Display {
                    value: ans,
                    label: "ans".into(),
                },
                expr.span,
            );
        }
        Ok(())
    }

    fn if_stmt(
        &mut self,
        arms: &[(Expr, Vec<Stmt>)],
        else_body: Option<&[Stmt]>,
    ) -> Result<(), LowerError> {
        let join = self.new_block();
        let mut next_test = self.current;
        for (i, (cond, body)) in arms.iter().enumerate() {
            self.start_block(next_test);
            // The first test continues the current block; later ones get
            // their own, already created as `next_test`.
            let c = self.expr_into(None, cond)?;
            let t = self.compute_into(
                None,
                Op::Builtin(Builtin::IsTrue),
                vec![Operand::Var(c)],
                cond.span,
            );
            let body_bb = self.new_block();
            let is_last = i + 1 == arms.len();
            let else_bb = if is_last {
                match else_body {
                    Some(_) => self.new_block(),
                    None => join,
                }
            } else {
                self.new_block()
            };
            self.set_term(Terminator::Branch {
                cond: t,
                then_bb: body_bb,
                else_bb,
            });
            self.start_block(body_bb);
            for s in body {
                self.stmt(s)?;
            }
            self.set_term(Terminator::Jump(join));
            next_test = else_bb;
        }
        if let Some(body) = else_body {
            self.start_block(next_test);
            for s in body {
                self.stmt(s)?;
            }
            self.set_term(Terminator::Jump(join));
        }
        self.start_block(join);
        Ok(())
    }

    fn while_stmt(&mut self, cond: &Expr, body: &[Stmt]) -> Result<(), LowerError> {
        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Jump(header));
        self.start_block(header);
        let c = self.expr_into(None, cond)?;
        let t = self.compute_into(
            None,
            Op::Builtin(Builtin::IsTrue),
            vec![Operand::Var(c)],
            cond.span,
        );
        self.set_term(Terminator::Branch {
            cond: t,
            then_bb: body_bb,
            else_bb: exit,
        });
        self.start_block(body_bb);
        self.loops.push(LoopCtx {
            break_target: exit,
            continue_target: header,
        });
        for s in body {
            self.stmt(s)?;
        }
        self.loops.pop();
        self.set_term(Terminator::Jump(header));
        self.start_block(exit);
        Ok(())
    }

    /// `for v = iter` lowering. Literal ranges take a scalar counting
    /// loop (`k = 1..n`, `v = start + (k-1)*step`) so no range vector is
    /// ever materialized; other iterables are evaluated once and indexed.
    fn for_stmt(
        &mut self,
        var: &str,
        iter: &Expr,
        body: &[Stmt],
        span: Span,
    ) -> Result<(), LowerError> {
        enum IterPlan {
            Range {
                start: VarId,
                step: VarId,
                stop: VarId,
            },
            Vector(VarId),
        }

        let one = self.const_into(Const::Num(1.0), span);
        let (plan, count) = match &iter.kind {
            ExprKind::Range { start, step, stop } => {
                let sv = self.expr_into(None, start)?;
                let stepv = match step {
                    Some(e) => self.expr_into(None, e)?,
                    None => one,
                };
                let stopv = self.expr_into(None, stop)?;
                let n = self.compute_into(
                    None,
                    Op::Builtin(Builtin::RangeCount),
                    vec![Operand::Var(sv), Operand::Var(stepv), Operand::Var(stopv)],
                    iter.span,
                );
                (
                    IterPlan::Range {
                        start: sv,
                        step: stepv,
                        stop: stopv,
                    },
                    n,
                )
            }
            _ => {
                let vec = self.expr_into(None, iter)?;
                let n = self.compute_into(
                    None,
                    Op::Builtin(Builtin::Numel),
                    vec![Operand::Var(vec)],
                    iter.span,
                );
                (IterPlan::Vector(vec), n)
            }
        };

        // k = 0; header: k = k + 1; if k <= n goto body else exit.
        let k = self.temp();
        self.emit(
            InstrKind::Const {
                dst: k,
                value: Const::Num(0.0),
            },
            span,
        );
        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Jump(header));

        self.start_block(header);
        self.compute_into(
            Some(k),
            Op::Bin(BinOp::Add),
            vec![Operand::Var(k), Operand::Var(one)],
            span,
        );
        let cmp = self.compute_into(
            None,
            Op::Bin(BinOp::Le),
            vec![Operand::Var(k), Operand::Var(count)],
            span,
        );
        self.set_term(Terminator::Branch {
            cond: cmp,
            then_bb: body_bb,
            else_bb: exit,
        });

        self.start_block(body_bb);
        let loop_var = self.source_var(var);
        match plan {
            IterPlan::Range { start, step, stop } => {
                self.compute_into(
                    Some(loop_var),
                    Op::Builtin(Builtin::LoopIndex),
                    vec![
                        Operand::Var(start),
                        Operand::Var(step),
                        Operand::Var(stop),
                        Operand::Var(k),
                    ],
                    span,
                );
            }
            IterPlan::Vector(vecv) => {
                self.compute_into(
                    Some(loop_var),
                    Op::Subsref,
                    vec![Operand::Var(vecv), Operand::Var(k)],
                    span,
                );
            }
        }
        self.loops.push(LoopCtx {
            break_target: exit,
            continue_target: header,
        });
        for s in body {
            self.stmt(s)?;
        }
        self.loops.pop();
        self.set_term(Terminator::Jump(header));
        self.start_block(exit);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Lowers `expr`, producing its value in `dst` (or a fresh temp).
    fn expr_into(&mut self, dst: Option<VarId>, expr: &Expr) -> Result<VarId, LowerError> {
        let span = expr.span;
        match &expr.kind {
            ExprKind::Number(v) => {
                let d = dst.unwrap_or_else(|| self.temp());
                self.emit(
                    InstrKind::Const {
                        dst: d,
                        value: Const::Num(*v),
                    },
                    span,
                );
                Ok(d)
            }
            ExprKind::ImagNumber(v) => {
                let d = dst.unwrap_or_else(|| self.temp());
                self.emit(
                    InstrKind::Const {
                        dst: d,
                        value: Const::Imag(*v),
                    },
                    span,
                );
                Ok(d)
            }
            ExprKind::Str(s) => {
                let d = dst.unwrap_or_else(|| self.temp());
                self.emit(
                    InstrKind::Const {
                        dst: d,
                        value: Const::Str(s.clone()),
                    },
                    span,
                );
                Ok(d)
            }
            ExprKind::Ident(name) => {
                if self.is_variable(name) {
                    let v = self.source_var(name);
                    match dst {
                        Some(d) if d != v => {
                            self.emit(InstrKind::Copy { dst: d, src: v }, span);
                            Ok(d)
                        }
                        _ => Ok(v),
                    }
                } else if let Some(b) = Builtin::from_name(name) {
                    if b.is_effect() {
                        return Err(LowerError::new(
                            format!("`{name}` cannot be used as a value"),
                            span,
                        ));
                    }
                    Ok(self.compute_into(dst, Op::Builtin(b), vec![], span))
                } else if self.signatures.contains_key(name) {
                    // Zero-argument user call.
                    Ok(self.compute_into(dst, Op::Call(name.clone()), vec![], span))
                } else {
                    Err(LowerError::new(
                        format!("undefined variable or function `{name}`"),
                        span,
                    ))
                }
            }
            ExprKind::End => {
                let ctx = self.end_stack.last().ok_or_else(|| {
                    LowerError::new("`end` used outside of an indexing context", span)
                })?;
                let (array, dim, ndims) = (ctx.array, ctx.dim, ctx.ndims);
                if ndims == 1 {
                    Ok(self.compute_into(
                        dst,
                        Op::Builtin(Builtin::Numel),
                        vec![Operand::Var(array)],
                        span,
                    ))
                } else {
                    let d = self.const_into(Const::Num((dim + 1) as f64), span);
                    Ok(self.compute_into(
                        dst,
                        Op::Builtin(Builtin::Size),
                        vec![Operand::Var(array), Operand::Var(d)],
                        span,
                    ))
                }
            }
            ExprKind::Colon => Err(LowerError::new(
                "`:` used outside of an indexing context",
                span,
            )),
            ExprKind::Range { start, step, stop } => {
                let sv = self.expr_into(None, start)?;
                match step {
                    Some(stepe) => {
                        let stepv = self.expr_into(None, stepe)?;
                        let stopv = self.expr_into(None, stop)?;
                        Ok(self.compute_into(
                            dst,
                            Op::Range3,
                            vec![Operand::Var(sv), Operand::Var(stepv), Operand::Var(stopv)],
                            span,
                        ))
                    }
                    None => {
                        let stopv = self.expr_into(None, stop)?;
                        Ok(self.compute_into(
                            dst,
                            Op::Range2,
                            vec![Operand::Var(sv), Operand::Var(stopv)],
                            span,
                        ))
                    }
                }
            }
            ExprKind::Unary { op, operand } => {
                // `+x` is the identity on numeric values.
                if *op == UnOp::Plus {
                    return self.expr_into(dst, operand);
                }
                let v = self.expr_into(None, operand)?;
                Ok(self.compute_into(dst, Op::Un(*op), vec![Operand::Var(v)], span))
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::ShortAnd | BinOp::ShortOr => self.short_circuit(dst, *op, lhs, rhs, span),
                _ => {
                    let l = self.expr_into(None, lhs)?;
                    let r = self.expr_into(None, rhs)?;
                    Ok(self.compute_into(
                        dst,
                        Op::Bin(*op),
                        vec![Operand::Var(l), Operand::Var(r)],
                        span,
                    ))
                }
            },
            ExprKind::Apply { name, args } => {
                if self.is_variable(name) {
                    let arr = self.source_var(name);
                    let subs = self.lower_subscripts(arr, args)?;
                    let mut op_args = vec![Operand::Var(arr)];
                    op_args.extend(subs);
                    Ok(self.compute_into(dst, Op::Subsref, op_args, span))
                } else if let Some(b) = Builtin::from_name(name) {
                    if b.is_effect() {
                        return Err(LowerError::new(
                            format!("`{name}` cannot be used as a value"),
                            span,
                        ));
                    }
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        let v = self.expr_into(None, a)?;
                        ops.push(Operand::Var(v));
                    }
                    Ok(self.compute_into(dst, Op::Builtin(b), ops, span))
                } else if let Some((nparams, nouts)) = self.signatures.get(name).copied() {
                    if args.len() > nparams {
                        return Err(LowerError::new(
                            format!("too many inputs to `{name}`"),
                            span,
                        ));
                    }
                    if nouts == 0 {
                        return Err(LowerError::new(
                            format!("function `{name}` returns no value"),
                            span,
                        ));
                    }
                    let mut ops = Vec::with_capacity(args.len());
                    for a in args {
                        let v = self.expr_into(None, a)?;
                        ops.push(Operand::Var(v));
                    }
                    Ok(self.compute_into(dst, Op::Call(name.clone()), ops, span))
                } else {
                    Err(LowerError::new(
                        format!("undefined variable or function `{name}`"),
                        span,
                    ))
                }
            }
            ExprKind::Matrix { rows } => {
                if rows.is_empty() {
                    let d = dst.unwrap_or_else(|| self.temp());
                    self.emit(
                        InstrKind::Const {
                            dst: d,
                            value: Const::Empty,
                        },
                        span,
                    );
                    return Ok(d);
                }
                let mut row_lens = Vec::with_capacity(rows.len());
                let mut ops = Vec::new();
                for row in rows {
                    row_lens.push(row.len());
                    for el in row {
                        let v = self.expr_into(None, el)?;
                        ops.push(Operand::Var(v));
                    }
                }
                Ok(self.compute_into(dst, Op::MatrixBuild { rows: row_lens }, ops, span))
            }
        }
    }

    /// Lowers `a && b` / `a || b` with genuine short-circuit control flow.
    fn short_circuit(
        &mut self,
        dst: Option<VarId>,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<VarId, LowerError> {
        let result = dst.unwrap_or_else(|| self.temp());
        let l = self.expr_into(None, lhs)?;
        let lt = self.compute_into(
            None,
            Op::Builtin(Builtin::IsTrue),
            vec![Operand::Var(l)],
            lhs.span,
        );
        let rhs_bb = self.new_block();
        let settle_bb = self.new_block();
        let join = self.new_block();
        match op {
            BinOp::ShortAnd => {
                // If lhs true, evaluate rhs; else result = false.
                self.set_term(Terminator::Branch {
                    cond: lt,
                    then_bb: rhs_bb,
                    else_bb: settle_bb,
                });
                self.start_block(settle_bb);
                self.emit(
                    InstrKind::Const {
                        dst: result,
                        value: Const::Bool(false),
                    },
                    span,
                );
                self.set_term(Terminator::Jump(join));
            }
            BinOp::ShortOr => {
                self.set_term(Terminator::Branch {
                    cond: lt,
                    then_bb: settle_bb,
                    else_bb: rhs_bb,
                });
                self.start_block(settle_bb);
                self.emit(
                    InstrKind::Const {
                        dst: result,
                        value: Const::Bool(true),
                    },
                    span,
                );
                self.set_term(Terminator::Jump(join));
            }
            _ => unreachable!("short_circuit called with {op:?}"),
        }
        self.start_block(rhs_bb);
        let r = self.expr_into(None, rhs)?;
        self.compute_into(
            Some(result),
            Op::Builtin(Builtin::IsTrue),
            vec![Operand::Var(r)],
            rhs.span,
        );
        self.set_term(Terminator::Jump(join));
        self.start_block(join);
        Ok(result)
    }

    /// Lowers index subscripts for `array`, handling `:` and `end`.
    fn lower_subscripts(
        &mut self,
        array: VarId,
        args: &[Expr],
    ) -> Result<Vec<Operand>, LowerError> {
        let ndims = args.len();
        let mut out = Vec::with_capacity(ndims);
        for (dim, a) in args.iter().enumerate() {
            if matches!(a.kind, ExprKind::Colon) {
                out.push(Operand::ColonAll);
                continue;
            }
            self.end_stack.push(EndCtx { array, dim, ndims });
            let v = self.expr_into(None, a);
            self.end_stack.pop();
            out.push(Operand::Var(v?));
        }
        Ok(out)
    }
}

/// Collects every name assigned anywhere in `stmts` (including loop
/// variables and multi-assign outputs), for call-vs-index resolution.
fn collect_assigned(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { lhs, .. } => {
                if let Some(n) = lhs.var_name() {
                    out.insert(n.to_string());
                }
            }
            StmtKind::MultiAssign { lhss, .. } => {
                for l in lhss {
                    if let Some(n) = l.var_name() {
                        out.insert(n.to_string());
                    }
                }
            }
            StmtKind::ExprStmt { .. } => {
                out.insert("ans".to_string());
            }
            StmtKind::If { arms, else_body } => {
                for (_, body) in arms {
                    collect_assigned(body, out);
                }
                if let Some(b) = else_body {
                    collect_assigned(b, out);
                }
            }
            StmtKind::While { body, .. } => collect_assigned(body, out),
            StmtKind::For { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;

    fn lower(src: &str) -> IrProgram {
        let ast = parse_program([src]).unwrap();
        lower_program(&ast).unwrap_or_else(|e| panic!("lowering failed: {e}"))
    }

    fn lower_err(src: &str) -> LowerError {
        let ast = parse_program([src]).unwrap();
        lower_program(&ast).unwrap_err()
    }

    fn entry_text(prog: &IrProgram) -> String {
        prog.entry_func().to_string()
    }

    #[test]
    fn straight_line_so_form() {
        let p = lower("function y = f(a, b)\ny = a * b + 1;\n");
        let f = p.entry_func();
        // The compound RHS must be split into single-operator steps.
        let body = &f.block(f.entry).instrs;
        let computes = body
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Compute { .. }))
            .count();
        assert_eq!(computes, 2, "a*b, then +1:\n{f}");
    }

    #[test]
    fn index_vs_call_resolution() {
        // `n` is assigned, so `n(1)` is subsref; `g` is a function call.
        let p = lower(
            "function y = f(x)\nn = x;\ny = n(1) + g(x);\nend\nfunction y = g(x)\ny = x;\nend\n",
        );
        let txt = entry_text(&p);
        assert!(txt.contains("subsref"), "{txt}");
        assert!(txt.contains("call g"), "{txt}");
    }

    #[test]
    fn end_rewrites_to_numel_or_size() {
        let p = lower("function y = f(x)\ny = x(end);\n");
        assert!(entry_text(&p).contains("numel"));

        let p2 = lower("function y = f(x)\ny = x(1, end);\n");
        assert!(entry_text(&p2).contains("size"));
    }

    #[test]
    fn colon_subscript_is_colonall() {
        let p = lower("function y = f(x)\ny = x(:, 2);\n");
        assert!(entry_text(&p).contains("subsref(x, :,"));
    }

    #[test]
    fn subsasgn_form() {
        let p = lower("function a = f(a, v)\na(2, 3) = v;\n");
        let txt = entry_text(&p);
        assert!(txt.contains("a <- subsasgn(a, v"), "{txt}");
    }

    #[test]
    fn shrinkage_is_rejected() {
        let e = lower_err("function a = f(a)\na(2) = [];\n");
        assert!(e.message.contains("shrinkage"), "{e}");
    }

    #[test]
    fn undefined_name_is_rejected() {
        let e = lower_err("function y = f(x)\ny = nosuch(x, 1);\n");
        assert!(e.message.contains("undefined"), "{e}");
    }

    #[test]
    fn if_else_builds_diamond() {
        let p = lower("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\n");
        let f = p.entry_func();
        // entry, exit, join, then-body, else-body at minimum.
        assert!(f.blocks.len() >= 5, "{f}");
        assert!(entry_text(&p).contains("istrue"));
    }

    #[test]
    fn while_loop_shape() {
        let p = lower("function y = f(x)\ny = 0;\nwhile y < x\ny = y + 1;\nend\n");
        let f = p.entry_func();
        let branches = f
            .block_ids()
            .filter(|b| matches!(f.block(*b).term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 1, "{f}");
    }

    #[test]
    fn for_range_is_scalar_loop() {
        let p = lower("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n");
        let txt = entry_text(&p);
        assert!(txt.contains("range_count"), "{txt}");
        // No range vector materialized.
        assert!(!txt.contains("<- range("), "{txt}");
    }

    #[test]
    fn for_vector_materializes_and_indexes() {
        let p = lower("function s = f(v)\ns = 0;\nfor x = v * 2\ns = s + x;\nend\n");
        let txt = entry_text(&p);
        assert!(txt.contains("numel"), "{txt}");
        assert!(txt.contains("subsref"), "{txt}");
    }

    #[test]
    fn break_and_continue_target_loop_blocks() {
        let p =
            lower("function y = f(n)\ny = 0;\nfor i = 1:n\nif i > 2\nbreak\nend\ny = i;\nend\n");
        assert!(p.entry_func().blocks.len() > 5);
        let e = lower_err("function y = f(n)\nbreak\ny = 1;\n");
        assert!(e.message.contains("outside a loop"));
    }

    #[test]
    fn short_circuit_becomes_control_flow() {
        let p = lower("function y = f(a, b)\nif a > 0 && b > 0\ny = 1;\nelse\ny = 0;\nend\n");
        let f = p.entry_func();
        let branches = f
            .block_ids()
            .filter(|b| matches!(f.block(*b).term, Terminator::Branch { .. }))
            .count();
        assert!(branches >= 2, "short-circuit adds a branch:\n{f}");
    }

    #[test]
    fn multi_assign_lowers_to_call_multi() {
        let p = lower("function y = f(x)\n[m, n] = size(x);\ny = m + n;\n");
        let txt = entry_text(&p);
        assert!(txt.contains("[m, n] <- call size(x)"), "{txt}");
    }

    #[test]
    fn display_emitted_without_semicolon() {
        let p = lower("function y = f(x)\ny = x + 1\n");
        assert!(entry_text(&p).contains("display y"));
        let p2 = lower("function y = f(x)\ny = x + 1;\n");
        assert!(!entry_text(&p2).contains("display"));
    }

    #[test]
    fn effect_call_statement() {
        let p = lower("function f(x)\nfprintf('%d\\n', x);\n");
        assert!(entry_text(&p).contains("effect fprintf"));
    }

    #[test]
    fn matrix_literal_build() {
        let p = lower("function y = f(a)\ny = [a 1; 2 3];\n");
        assert!(entry_text(&p).contains("matrix[2, 2]"));
    }

    #[test]
    fn empty_matrix_is_const() {
        let p = lower("function y = f()\ny = [];\n");
        assert!(entry_text(&p).contains("y <- []"));
    }

    #[test]
    fn return_jumps_to_exit() {
        let p = lower("function y = f(x)\ny = 1;\nif x > 0\nreturn\nend\ny = 2;\n");
        let f = p.entry_func();
        let returns = f
            .block_ids()
            .filter(|b| matches!(f.block(*b).term, Terminator::Return))
            .count();
        assert_eq!(returns, 1, "single exit block:\n{f}");
    }

    #[test]
    fn unary_plus_is_identity() {
        let p = lower("function y = f(x)\ny = +x;\n");
        let f = p.entry_func();
        let has_un = f
            .block(f.entry)
            .instrs
            .iter()
            .any(|i| matches!(&i.kind, InstrKind::Compute { op: Op::Un(_), .. }));
        assert!(!has_un, "{f}");
    }

    #[test]
    fn constants_fold_into_dst() {
        let p = lower("function y = f()\ny = 42;\n");
        let f = p.entry_func();
        assert!(matches!(
            &f.block(f.entry).instrs[0].kind,
            InstrKind::Const { value: Const::Num(v), .. } if *v == 42.0
        ));
    }
}
