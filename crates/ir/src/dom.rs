//! Dominator tree and dominance frontiers.
//!
//! Implements Cooper, Harvey & Kennedy, *A Simple, Fast Dominance
//! Algorithm* — the standard engineering choice for CFGs of this size —
//! plus the dominance-frontier computation from the same paper, which
//! drives φ-placement in SSA construction.

use crate::cfg::FuncIr;
use crate::ids::BlockId;

/// The dominance information of one function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Dominance frontier of each block.
    frontier: Vec<Vec<BlockId>>,
    /// Reverse postorder of reachable blocks.
    rpo: Vec<BlockId>,
    /// rpo position of each block (usize::MAX for unreachable).
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Computes dominators and dominance frontiers for `func`.
    pub fn compute(func: &FuncIr) -> DomTree {
        let n = func.blocks.len();
        let rpo = func.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = func.predecessors();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[func.entry.index()] = Some(func.entry);

        // Iterate to a fixed point over reverse postorder.
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in &rpo {
            if b != func.entry {
                if let Some(d) = idom[b.index()] {
                    children[d.index()].push(b);
                }
            }
        }

        // Dominance frontiers (CHK): for each join point, walk up from
        // each predecessor to the idom, adding the join to frontiers.
        let mut frontier = vec![Vec::new(); n];
        for &b in &rpo {
            if preds[b.index()].len() >= 2 {
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != idom[b.index()] {
                        if !frontier[runner.index()].contains(&b) {
                            frontier[runner.index()].push(b);
                        }
                        runner = match idom[runner.index()] {
                            Some(r) => r,
                            None => break,
                        };
                    }
                }
            }
        }

        DomTree {
            idom,
            children,
            frontier,
            rpo,
            rpo_pos,
        }
    }

    /// The immediate dominator of `b` (`b` itself for the entry), or
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Dominator-tree children of `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        &self.frontier[b.index()]
    }

    /// Reachable blocks in reverse postorder.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::FuncIr;
    use crate::instr::Terminator;

    /// Builds the classic diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> FuncIr {
        let mut f = FuncIr::new("g");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.new_temp();
        f.block_mut(b0).term = Terminator::Branch {
            cond: c,
            then_bb: b1,
            else_bb: b2,
        };
        f.block_mut(b1).term = Terminator::Jump(b3);
        f.block_mut(b2).term = Terminator::Jump(b3);
        f
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let (b0, b1, b2, b3) = (
            BlockId::new(0),
            BlockId::new(1),
            BlockId::new(2),
            BlockId::new(3),
        );
        assert_eq!(dt.idom(b1), Some(b0));
        assert_eq!(dt.idom(b2), Some(b0));
        assert_eq!(dt.idom(b3), Some(b0), "join dominated by fork, not arms");
        assert!(dt.dominates(b0, b3));
        assert!(!dt.dominates(b1, b3));
        assert!(dt.dominates(b2, b2), "dominance is reflexive");
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let b3 = BlockId::new(3);
        assert_eq!(dt.frontier(BlockId::new(1)), &[b3]);
        assert_eq!(dt.frontier(BlockId::new(2)), &[b3]);
        assert!(dt.frontier(BlockId::new(0)).is_empty());
    }

    /// Loop: 0 -> 1(header) -> {2(body), 3(exit)}, 2 -> 1.
    fn simple_loop() -> FuncIr {
        let mut f = FuncIr::new("g");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let c = f.new_temp();
        f.block_mut(b0).term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Branch {
            cond: c,
            then_bb: b2,
            else_bb: b3,
        };
        f.block_mut(b2).term = Terminator::Jump(b1);
        f
    }

    #[test]
    fn loop_header_in_own_body_frontier() {
        let f = simple_loop();
        let dt = DomTree::compute(&f);
        let b1 = BlockId::new(1);
        // The body's frontier contains the header (back edge) and the
        // header's own frontier contains itself.
        assert!(dt.frontier(BlockId::new(2)).contains(&b1));
        assert!(dt.frontier(b1).contains(&b1));
        assert_eq!(dt.idom(BlockId::new(3)), Some(b1));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = diamond();
        let dead = f.add_block();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(dead), None);
        assert!(!dt.dominates(BlockId::new(0), dead));
    }

    #[test]
    fn dominator_tree_children_partition() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let kids = dt.children(BlockId::new(0));
        assert_eq!(kids.len(), 3, "b1, b2, b3 all idom'd by b0");
    }
}
