//! Index newtypes for IR entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            pub fn new(idx: usize) -> Self {
                $name(u32::try_from(idx).expect("id overflow"))
            }

            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a variable within one function's variable table.
    VarId,
    "v"
);
id_type!(
    /// Identifies a basic block within one function.
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a function within a [`crate::cfg::IrProgram`].
    FuncId,
    "fn"
);

/// A dense map from an id type to values, backed by a `Vec`.
///
/// # Examples
///
/// ```
/// use matc_ir::ids::{DenseMap, VarId};
///
/// let mut sizes: DenseMap<VarId, u64> = DenseMap::new();
/// let v = VarId::new(0);
/// sizes.insert(v, 16);
/// assert_eq!(sizes[v], 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMap<K, V> {
    items: Vec<Option<V>>,
    _marker: std::marker::PhantomData<K>,
}

impl<K, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        DenseMap {
            items: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Types usable as [`DenseMap`] keys.
pub trait DenseKey: Copy {
    /// The key's dense index.
    fn dense_index(self) -> usize;
}

impl DenseKey for VarId {
    fn dense_index(self) -> usize {
        self.index()
    }
}
impl DenseKey for BlockId {
    fn dense_index(self) -> usize {
        self.index()
    }
}
impl DenseKey for FuncId {
    fn dense_index(self) -> usize {
        self.index()
    }
}

impl<K: DenseKey, V> DenseMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            items: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Inserts `value` at `key`, growing the backing store as needed.
    /// Returns the previous value, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.dense_index();
        if i >= self.items.len() {
            self.items.resize_with(i + 1, || None);
        }
        self.items[i].replace(value)
    }

    /// Looks up `key`.
    pub fn get(&self, key: K) -> Option<&V> {
        self.items.get(key.dense_index()).and_then(|v| v.as_ref())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.items
            .get_mut(key.dense_index())
            .and_then(|v| v.as_mut())
    }

    /// Whether `key` has a value.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: K) -> Option<V> {
        self.items.get_mut(key.dense_index()).and_then(|v| v.take())
    }

    /// Iterates over present `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i, v)))
    }

    /// The number of present entries.
    pub fn len(&self) -> usize {
        self.items.iter().filter(|v| v.is_some()).count()
    }

    /// Whether no entries are present.
    pub fn is_empty(&self) -> bool {
        self.items.iter().all(|v| v.is_none())
    }
}

impl<K: DenseKey, V> std::ops::Index<K> for DenseMap<K, V> {
    type Output = V;

    fn index(&self, key: K) -> &V {
        self.get(key).expect("missing key in DenseMap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(VarId::new(3).to_string(), "v3");
        assert_eq!(BlockId::new(0).to_string(), "bb0");
        assert_eq!(format!("{:?}", FuncId::new(7)), "fn7");
    }

    #[test]
    fn dense_map_grows() {
        let mut m: DenseMap<VarId, &str> = DenseMap::new();
        assert!(m.is_empty());
        m.insert(VarId::new(5), "five");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(VarId::new(5)), Some(&"five"));
        assert_eq!(m.get(VarId::new(2)), None);
        assert_eq!(m.insert(VarId::new(5), "FIVE"), Some("five"));
        assert_eq!(m.remove(VarId::new(5)), Some("FIVE"));
        assert!(m.is_empty());
    }
}
