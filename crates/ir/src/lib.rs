//! # matc-ir
//!
//! The single-operator (SO) form control-flow-graph IR of `matc`, with
//! SSA construction and inversion — the substrate on which the GCTD
//! storage-optimization algorithm of *Static Array Storage Optimization
//! in MATLAB* (PLDI 2003) operates.
//!
//! Pipeline position: `matc-frontend` ASTs are lowered here
//! ([`lower::lower_program`]), converted to SSA
//! ([`ssa::ssa_construct_program`]), optimized (`matc-passes`), typed
//! (`matc-typeinf`), planned (`matc-gctd`), and finally inverted out of
//! SSA ([`ssa_out::ssa_destruct`]) for execution or C emission.
//!
//! ## Example
//!
//! ```
//! use matc_frontend::parser::parse_program;
//! use matc_ir::{lower::lower_program, ssa::ssa_construct_program, verify::verify_program};
//!
//! let ast = parse_program([
//!     "function s = total(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n",
//! ]).unwrap();
//! let mut ir = lower_program(&ast)?;
//! ssa_construct_program(&mut ir);
//! verify_program(&ir).expect("valid SSA");
//! # Ok::<(), matc_ir::lower::LowerError>(())
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod budget;
pub mod builtins;
pub mod cfg;
pub mod dom;
pub mod ids;
pub mod instr;
pub mod lower;
pub mod ssa;
pub mod ssa_out;
pub mod verify;

pub use bitset::{BitMatrix, BitSet};
pub use budget::{Budget, BudgetError, BudgetKind};
pub use builtins::Builtin;
pub use cfg::{Block, FuncIr, IrProgram, VarInfo, VarTable};
pub use ids::{BlockId, FuncId, VarId};
pub use instr::{Const, Instr, InstrKind, Op, Operand, Terminator};
pub use lower::{lower_program, LowerError};
pub use ssa::{ssa_construct, ssa_construct_program};
pub use ssa_out::ssa_destruct;
pub use verify::{verify_func, verify_program, VerifyError};

/// Lowers, SSA-converts and verifies a parsed program in one call — the
/// standard way to obtain analysis-ready IR.
///
/// # Errors
///
/// Returns lowering errors; verification failures panic, as they indicate
/// compiler bugs rather than bad input.
///
/// # Panics
///
/// Panics if the produced SSA fails verification (a compiler bug).
pub fn build_ssa(ast: &matc_frontend::ast::Program) -> Result<IrProgram, LowerError> {
    let mut prog = lower_program(ast)?;
    ssa_construct_program(&mut prog);
    if let Err(e) = verify_program(&prog) {
        panic!("internal error: generated invalid SSA: {e}");
    }
    Ok(prog)
}
