//! Single-operator (SO) form instructions.
//!
//! Every assignment carries at most one MATLAB operation on its right-hand
//! side (§2.3 of the paper); the AST lowering introduces temporaries to
//! reach this form, and code generation / the VMs map each instruction to
//! one runtime operation.

use crate::builtins::Builtin;
use crate::ids::{BlockId, VarId};
use matc_frontend::ast::{BinOp, UnOp};
use matc_frontend::span::Span;
use std::fmt;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// A real scalar.
    Num(f64),
    /// An imaginary scalar (`Imag(2.0)` is `2i`).
    Imag(f64),
    /// A character row vector.
    Str(String),
    /// The empty array `[]`.
    Empty,
    /// A logical scalar (produced by constant folding of comparisons).
    Bool(bool),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Num(v) => write!(f, "{v}"),
            Const::Imag(v) => write!(f, "{v}i"),
            Const::Str(s) => write!(f, "'{s}'"),
            Const::Empty => write!(f, "[]"),
            Const::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// An instruction operand: a variable or the magic colon subscript.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A variable reference.
    Var(VarId),
    /// The `:` subscript (whole dimension); legal only as a subscript of
    /// `subsref`/`subsasgn`.
    ColonAll,
}

impl Operand {
    /// The variable, if this operand is one.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::ColonAll => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::ColonAll => write!(f, ":"),
        }
    }
}

/// The single operation an SO-form assignment may carry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// A binary MATLAB operator (short-circuit forms are lowered to
    /// control flow and never appear here).
    Bin(BinOp),
    /// A unary MATLAB operator.
    Un(UnOp),
    /// `subsref(a, i1, ..., im)` — right-hand side indexing. The first
    /// operand is the array, the rest are subscripts (vars or `:`).
    Subsref,
    /// `b = subsasgn(a, r, l1, ..., lm)` — left-hand side indexing in SSA
    /// form. Operand 0 is the old array `a`, operand 1 the value `r`, the
    /// rest are subscripts.
    Subsasgn,
    /// `start:stop` (operands: start, stop).
    Range2,
    /// `start:step:stop` (operands: start, step, stop).
    Range3,
    /// Matrix build `[...]`; `rows[k]` is the number of elements in row
    /// `k` and operands are the elements in row-major source order.
    MatrixBuild {
        /// Elements per row.
        rows: Vec<usize>,
    },
    /// A builtin call.
    Builtin(Builtin),
    /// A call to a user-defined function (resolved by name; the IR
    /// program's function table owns the mapping).
    Call(String),
}

impl Op {
    /// A display name for dumps.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Bin(b) => format!("bin[{}]", b.symbol()),
            Op::Un(u) => format!("un[{}]", u.symbol()),
            Op::Subsref => "subsref".into(),
            Op::Subsasgn => "subsasgn".into(),
            Op::Range2 => "range".into(),
            Op::Range3 => "range3".into(),
            Op::MatrixBuild { rows } => format!("matrix{rows:?}"),
            Op::Builtin(b) => b.name().into(),
            Op::Call(name) => format!("call {name}"),
        }
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The instruction payload.
    pub kind: InstrKind,
    /// Source location for diagnostics.
    pub span: Span,
}

impl Instr {
    /// Creates an instruction.
    pub fn new(kind: InstrKind, span: Span) -> Self {
        Instr { kind, span }
    }

    /// The variables defined by this instruction, in order.
    pub fn defs(&self) -> Vec<VarId> {
        match &self.kind {
            InstrKind::Const { dst, .. }
            | InstrKind::Copy { dst, .. }
            | InstrKind::Compute { dst, .. }
            | InstrKind::Phi { dst, .. } => vec![*dst],
            InstrKind::CallMulti { dsts, .. } => dsts.clone(),
            InstrKind::Display { .. } | InstrKind::Effect { .. } => vec![],
        }
    }

    /// The variables used by this instruction.
    pub fn uses(&self) -> Vec<VarId> {
        match &self.kind {
            InstrKind::Const { .. } => vec![],
            InstrKind::Copy { src, .. } => vec![*src],
            InstrKind::Compute { args, .. } => args.iter().filter_map(|o| o.as_var()).collect(),
            InstrKind::Phi { args, .. } => args.iter().map(|(_, v)| *v).collect(),
            InstrKind::CallMulti { args, .. } => args.iter().filter_map(|o| o.as_var()).collect(),
            InstrKind::Display { value, .. } => vec![*value],
            InstrKind::Effect { args, .. } => args.iter().filter_map(|o| o.as_var()).collect(),
        }
    }

    /// Rewrites every used variable through `f` (definitions untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(VarId) -> VarId) {
        match &mut self.kind {
            InstrKind::Const { .. } => {}
            InstrKind::Copy { src, .. } => *src = f(*src),
            InstrKind::Compute { args, .. }
            | InstrKind::CallMulti { args, .. }
            | InstrKind::Effect { args, .. } => {
                for a in args {
                    if let Operand::Var(v) = a {
                        *v = f(*v);
                    }
                }
            }
            InstrKind::Phi { args, .. } => {
                for (_, v) in args {
                    *v = f(*v);
                }
            }
            InstrKind::Display { value, .. } => *value = f(*value),
        }
    }

    /// Whether this is a φ-instruction.
    pub fn is_phi(&self) -> bool {
        matches!(self.kind, InstrKind::Phi { .. })
    }

    /// Whether the instruction has observable effects beyond defining its
    /// destinations (I/O, RNG state, run-time errors from user calls).
    pub fn has_side_effects(&self) -> bool {
        match &self.kind {
            InstrKind::Display { .. } | InstrKind::Effect { .. } => true,
            InstrKind::Compute { op, .. } => match op {
                Op::Builtin(b) => !b.is_pure(),
                // A user call may perform I/O; calls are never deleted.
                Op::Call(_) => true,
                _ => false,
            },
            InstrKind::CallMulti { .. } => true,
            _ => false,
        }
    }
}

/// Instruction payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrKind {
    /// `dst <- constant`
    Const {
        /// Defined variable.
        dst: VarId,
        /// The constant value.
        value: Const,
    },
    /// `dst <- src` — a copy. The copy-propagation pass removes most of
    /// these before GCTD (§2.2).
    Copy {
        /// Defined variable.
        dst: VarId,
        /// Source variable.
        src: VarId,
    },
    /// `dst <- op(args)` — the single-operator compute form.
    Compute {
        /// Defined variable.
        dst: VarId,
        /// The operation.
        op: Op,
        /// Operands (variables, plus `:` markers for subscripts).
        args: Vec<Operand>,
    },
    /// `dst <- φ(pred₁: v₁, ..., predₖ: vₖ)`.
    Phi {
        /// Defined variable.
        dst: VarId,
        /// One incoming value per predecessor edge.
        args: Vec<(BlockId, VarId)>,
    },
    /// `[d1, ..., dn] <- call f(args)` — multi-output user/builtin call.
    CallMulti {
        /// Defined variables.
        dsts: Vec<VarId>,
        /// Callee name (user function or builtin like `size`).
        func: String,
        /// Call arguments.
        args: Vec<Operand>,
    },
    /// Echo `value` under the name `label` (a non-`;` statement).
    Display {
        /// The displayed variable.
        value: VarId,
        /// The variable name shown in the echo (`x = ...`).
        label: String,
    },
    /// An effect-only builtin call (`disp`, `fprintf`, `error`).
    Effect {
        /// Which effect builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<Operand>,
    },
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a scalar boolean variable.
    Branch {
        /// The condition (produced by `istrue` or a comparison).
        cond: VarId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Return,
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }

    /// The condition variable used, if any.
    pub fn used_var(&self) -> Option<VarId> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            _ => None,
        }
    }

    /// Rewrites successor block ids through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::new(
            InstrKind::Compute {
                dst: v(0),
                op: Op::Bin(BinOp::Add),
                args: vec![Operand::Var(v(1)), Operand::Var(v(2))],
            },
            Span::dummy(),
        );
        assert_eq!(i.defs(), vec![v(0)]);
        assert_eq!(i.uses(), vec![v(1), v(2)]);
    }

    #[test]
    fn colon_operand_is_not_a_use() {
        let i = Instr::new(
            InstrKind::Compute {
                dst: v(0),
                op: Op::Subsref,
                args: vec![Operand::Var(v(1)), Operand::ColonAll, Operand::Var(v(2))],
            },
            Span::dummy(),
        );
        assert_eq!(i.uses(), vec![v(1), v(2)]);
    }

    #[test]
    fn map_uses_rewrites_phi_args() {
        let mut i = Instr::new(
            InstrKind::Phi {
                dst: v(0),
                args: vec![(BlockId::new(0), v(1)), (BlockId::new(1), v(2))],
            },
            Span::dummy(),
        );
        i.map_uses(|u| VarId::new(u.index() + 10));
        assert_eq!(i.uses(), vec![v(11), v(12)]);
        assert_eq!(i.defs(), vec![v(0)], "defs untouched");
    }

    #[test]
    fn side_effects() {
        let eff = Instr::new(
            InstrKind::Effect {
                builtin: Builtin::Disp,
                args: vec![Operand::Var(v(1))],
            },
            Span::dummy(),
        );
        assert!(eff.has_side_effects());

        let rand = Instr::new(
            InstrKind::Compute {
                dst: v(0),
                op: Op::Builtin(Builtin::Rand),
                args: vec![],
            },
            Span::dummy(),
        );
        assert!(rand.has_side_effects(), "rand advances RNG state");

        let add = Instr::new(
            InstrKind::Compute {
                dst: v(0),
                op: Op::Bin(BinOp::Add),
                args: vec![Operand::Var(v(1)), Operand::Var(v(2))],
            },
            Span::dummy(),
        );
        assert!(!add.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: v(0),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Return.successors(), vec![]);
    }
}
