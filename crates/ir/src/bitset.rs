//! Dense bitsets for the dataflow and interference engines.
//!
//! The GCTD analyses ([`crate::cfg`] consumers in `matc-gctd`) operate
//! on sets drawn from two small, fixed universes: SSA variables and CFG
//! blocks. Both are dense integer ranges, so a word-packed bit
//! representation beats hashed sets on every operation the fixpoints
//! perform: union is a handful of `u64` ORs, difference is `AND NOT`,
//! membership is a shift, and — crucially for worklist algorithms —
//! *change detection* falls out of the union for free
//! ([`BitSet::union_with`] returns whether any bit was newly set), so
//! the steady state of a fixpoint allocates nothing.
//!
//! Two types:
//!
//! * [`BitSet`] — a single set over `0..len` with set-algebra and
//!   set-bit iteration;
//! * [`BitMatrix`] — `rows` independent rows over a shared column
//!   universe, stored contiguously, with row-to-row union (the shape of
//!   `live_out[b] ∪= live_in[succ]` and of bitset transitive closure).
//!
//! Like the rest of the crate this is dependency-free; it is the
//! in-tree analogue of the `bit-set`/`fixedbitset` crates, following
//! the repo's offline-shim convention.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `len` bits.
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A dense set of `usize` values drawn from a fixed universe `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// The universe size this set was created with (not the number of
    /// set bits — see [`BitSet::count`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Inserts `i`; returns `true` when the bit was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (w, m) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let old = self.words[w];
        self.words[w] = old | m;
        old & m == 0
    }

    /// Removes `i`; returns `true` when the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let (w, m) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        let old = self.words[w];
        self.words[w] = old & !m;
        old & m != 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self ∪= other`; returns `true` when any bit was newly set.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        union_into(&mut self.words, &other.words)
    }

    /// `self ∪= other` where `other` is a raw word row (e.g. a
    /// [`BitMatrix`] row); returns `true` when any bit was newly set.
    pub fn union_words(&mut self, other: &[u64]) -> bool {
        union_into(&mut self.words, other)
    }

    /// `self ∩= other`.
    pub fn intersect_words(&mut self, other: &[u64]) {
        for (d, s) in self.words.iter_mut().zip(other) {
            *d &= s;
        }
    }

    /// `self ∖= other`.
    pub fn subtract_words(&mut self, other: &[u64]) {
        for (d, s) in self.words.iter_mut().zip(other) {
            *d &= !s;
        }
    }

    /// The backing words (low bit of word 0 is element 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the set bits in ascending order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits::over(&self.words)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = SetBits<'a>;
    fn into_iter(self) -> SetBits<'a> {
        self.iter()
    }
}

/// `dst ∪= src` over raw word rows; returns `true` when any bit was
/// newly set. The rows must be the same width.
#[inline]
pub fn union_into(dst: &mut [u64], src: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), src.len(), "row width mismatch");
    let mut grew = 0u64;
    for (d, s) in dst.iter_mut().zip(src) {
        let old = *d;
        *d = old | s;
        grew |= *d ^ old;
    }
    grew != 0
}

/// Iterator over the set bits of a word row, ascending.
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> SetBits<'a> {
    /// Iterates the set bits of `words` (low bit of word 0 is bit 0).
    pub fn over(words: &'a [u64]) -> SetBits<'a> {
        SetBits {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A fixed-size matrix of bits: `rows` independent [`BitSet`]-like rows
/// over a shared column universe `0..cols`, stored contiguously.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix with `rows` rows over columns `0..cols`.
    pub fn new(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column universe size.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row (the dense width of one set).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn span(&self, r: usize) -> std::ops::Range<usize> {
        debug_assert!(r < self.rows, "row {r} out of {}", self.rows);
        let start = r * self.words_per_row;
        start..start + self.words_per_row
    }

    /// The words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[self.span(r)]
    }

    /// The words of row `r`, mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let span = self.span(r);
        &mut self.data[span]
    }

    /// Sets bit `(r, c)`; returns `true` when it was newly set.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.cols, "column {c} out of {}", self.cols);
        let (w, m) = (c / WORD_BITS, 1u64 << (c % WORD_BITS));
        let row = self.row_mut(r);
        let old = row[w];
        row[w] = old | m;
        old & m == 0
    }

    /// Clears bit `(r, c)`; returns `true` when it was previously set.
    #[inline]
    pub fn unset(&mut self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.cols, "column {c} out of {}", self.cols);
        let (w, m) = (c / WORD_BITS, 1u64 << (c % WORD_BITS));
        let row = self.row_mut(r);
        let old = row[w];
        row[w] = old & !m;
        old & m != 0
    }

    /// Tests bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.cols, "column {c} out of {}", self.cols);
        self.row(r)[c / WORD_BITS] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// `row dst ∪= row src`; returns `true` when any bit was newly set.
    /// `dst == src` is a no-op returning `false`.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let (d, s) = (self.span(dst), self.span(src));
        // The spans are disjoint (same width, different start), so a
        // split borrow around the later of the two is safe.
        if d.start < s.start {
            let (head, tail) = self.data.split_at_mut(s.start);
            union_into(&mut head[d], &tail[..self.words_per_row])
        } else {
            let (head, tail) = self.data.split_at_mut(d.start);
            union_into(&mut tail[..self.words_per_row], &head[s])
        }
    }

    /// `row r ∪= words`; returns `true` when any bit was newly set.
    pub fn union_row_words(&mut self, r: usize, words: &[u64]) -> bool {
        let span = self.span(r);
        union_into(&mut self.data[span], words)
    }

    /// Clears row `r`.
    pub fn clear_row(&mut self, r: usize) {
        self.row_mut(r).fill(0);
    }

    /// Number of set bits in row `r`.
    pub fn count_row(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set bits of row `r` in ascending order.
    pub fn iter_row(&self, r: usize) -> SetBits<'_> {
        SetBits::over(self.row(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(s.insert(64));
        assert!(!s.insert(64), "second insert reports no growth");
        assert_eq!(s.count(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn union_detects_change_and_is_idempotent() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(3);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union changes nothing");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 99]);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a = BitSet::new(70);
        for i in [1, 5, 64, 69] {
            a.insert(i);
        }
        let mut mask = BitSet::new(70);
        mask.insert(5);
        mask.insert(64);
        let mut inter = a.clone();
        inter.intersect_words(mask.words());
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![5, 64]);
        a.subtract_words(mask.words());
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 69]);
    }

    #[test]
    fn matrix_rows_are_independent_and_unionable() {
        let mut m = BitMatrix::new(4, 70);
        assert!(m.set(0, 69));
        assert!(!m.set(0, 69));
        assert!(m.set(2, 1));
        assert!(!m.get(1, 69));
        assert!(m.union_rows(1, 0));
        assert!(!m.union_rows(1, 0));
        assert!(m.get(1, 69));
        assert!(m.union_rows(0, 2));
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), vec![1, 69]);
        assert!(!m.union_rows(3, 3), "self-union is a no-op");
        assert_eq!(m.count_row(1), 1);
        assert!(m.unset(1, 69));
        assert_eq!(m.count_row(1), 0);
    }

    #[test]
    fn union_rows_works_in_both_directions() {
        let mut m = BitMatrix::new(3, 128);
        m.set(2, 127);
        m.set(0, 0);
        assert!(m.union_rows(0, 2), "src after dst");
        assert!(m.union_rows(2, 0), "dst after src");
        assert_eq!(m.iter_row(2).collect::<Vec<_>>(), vec![0, 127]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let m = BitMatrix::new(0, 0);
        assert_eq!(m.rows(), 0);
    }
}
