//! Control-flow graph containers: variables, blocks, functions, programs.

use crate::ids::{BlockId, FuncId, VarId};
use crate::instr::{Instr, InstrKind, Terminator};
use std::collections::HashMap;
use std::fmt;

/// Metadata for one IR variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// The source-level name, if the variable came from the program text;
    /// temporaries synthesized by lowering have `None`.
    pub name: Option<String>,
    /// For SSA names: the pre-SSA variable this name versions.
    pub ssa_origin: Option<VarId>,
    /// The SSA version number (0 for pre-SSA variables).
    pub ssa_version: u32,
}

impl VarInfo {
    /// A fresh source variable.
    pub fn source(name: impl Into<String>) -> Self {
        VarInfo {
            name: Some(name.into()),
            ssa_origin: None,
            ssa_version: 0,
        }
    }

    /// A fresh compiler temporary.
    pub fn temp() -> Self {
        VarInfo {
            name: None,
            ssa_origin: None,
            ssa_version: 0,
        }
    }
}

/// The variable table of one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarTable {
    infos: Vec<VarInfo>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Adds a variable and returns its id.
    pub fn push(&mut self, info: VarInfo) -> VarId {
        let id = VarId::new(self.infos.len());
        self.infos.push(info);
        id
    }

    /// Metadata lookup.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this table.
    pub fn info(&self, v: VarId) -> &VarInfo {
        &self.infos[v.index()]
    }

    /// The number of variables.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (VarId::new(i), info))
    }

    /// A printable name: `x` for source variables, `x.2` for SSA versions,
    /// `%t7` for temporaries.
    pub fn display_name(&self, v: VarId) -> String {
        let info = self.info(v);
        match (&info.name, info.ssa_version) {
            (Some(n), 0) => n.clone(),
            (Some(n), k) => format!("{n}.{k}"),
            (None, 0) => format!("%t{}", v.index()),
            (None, k) => format!("%t{}.{k}", v.index()),
        }
    }
}

/// One basic block: φ-then-straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in order; φ-instructions, if any, come first.
    pub instrs: Vec<Instr>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `Return` (placeholder during construction).
    pub fn new() -> Self {
        Block {
            instrs: Vec::new(),
            term: Terminator::Return,
        }
    }

    /// Iterates over the φ-instructions at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().take_while(|i| i.is_phi())
    }

    /// The index of the first non-φ instruction.
    pub fn first_non_phi(&self) -> usize {
        self.instrs.iter().take_while(|i| i.is_phi()).count()
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// The IR of a single function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    /// Function name.
    pub name: String,
    /// Input parameter variables, in order.
    pub params: Vec<VarId>,
    /// Output variables, in order. After SSA construction these are the
    /// pre-SSA ids; [`FuncIr::ssa_outs`] maps them at returns.
    pub outs: Vec<VarId>,
    /// All basic blocks; `BlockId` indexes into this.
    pub blocks: Vec<Block>,
    /// The entry block (no predecessors).
    pub entry: BlockId,
    /// The variable table.
    pub vars: VarTable,
    /// In SSA form: the SSA names carrying each output at function exit.
    /// Filled by SSA construction (empty before).
    pub ssa_outs: Vec<VarId>,
    /// Whether the function is currently in SSA form.
    pub in_ssa: bool,
}

impl FuncIr {
    /// Creates a function shell with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Self {
        FuncIr {
            name: name.into(),
            params: Vec::new(),
            outs: Vec::new(),
            blocks: vec![Block::new()],
            entry: BlockId::new(0),
            vars: VarTable::new(),
            ssa_outs: Vec::new(),
            in_ssa: false,
        }
    }

    /// Adds an empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(Block::new());
        id
    }

    /// Immutable block access.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.block(b).term.successors() {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.block(b).term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Creates a fresh temporary variable.
    pub fn new_temp(&mut self) -> VarId {
        self.vars.push(VarInfo::temp())
    }
}

/// A whole lowered program: all functions, with a designated entry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrProgram {
    /// All functions.
    pub functions: Vec<FuncIr>,
    /// Name → id lookup.
    pub by_name: HashMap<String, FuncId>,
    /// The entry function.
    pub entry: Option<FuncId>,
}

impl IrProgram {
    /// Adds a function.
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names.
    pub fn add(&mut self, f: FuncIr) -> FuncId {
        let id = FuncId::new(self.functions.len());
        let prev = self.by_name.insert(f.name.clone(), id);
        assert!(prev.is_none(), "duplicate function `{}`", f.name);
        self.functions.push(f);
        id
    }

    /// Function lookup by id.
    pub fn func(&self, id: FuncId) -> &FuncIr {
        &self.functions[id.index()]
    }

    /// Mutable function lookup by id.
    pub fn func_mut(&mut self, id: FuncId) -> &mut FuncIr {
        &mut self.functions[id.index()]
    }

    /// Function lookup by name.
    pub fn func_by_name(&self, name: &str) -> Option<&FuncIr> {
        self.by_name.get(name).map(|id| self.func(*id))
    }

    /// The entry function.
    ///
    /// # Panics
    ///
    /// Panics if no entry was set.
    pub fn entry_func(&self) -> &FuncIr {
        self.func(self.entry.expect("entry function not set"))
    }
}

impl fmt::Display for FuncIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "function {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.vars.display_name(*p))?;
        }
        write!(f, ") -> [")?;
        let outs = if self.in_ssa && !self.ssa_outs.is_empty() {
            &self.ssa_outs
        } else {
            &self.outs
        };
        for (i, o) in outs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.vars.display_name(*o))?;
        }
        writeln!(f, "]")?;
        for b in self.block_ids() {
            writeln!(f, "{b}:")?;
            let blk = self.block(b);
            for instr in &blk.instrs {
                writeln!(f, "  {}", self.fmt_instr(instr))?;
            }
            match &blk.term {
                Terminator::Jump(t) => writeln!(f, "  jump {t}")?,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(
                    f,
                    "  branch {} ? {then_bb} : {else_bb}",
                    self.vars.display_name(*cond)
                )?,
                Terminator::Return => writeln!(f, "  return")?,
            }
        }
        Ok(())
    }
}

impl FuncIr {
    /// Renders one instruction with resolved variable names.
    pub fn fmt_instr(&self, instr: &Instr) -> String {
        let n = |v: VarId| self.vars.display_name(v);
        match &instr.kind {
            InstrKind::Const { dst, value } => format!("{} <- {}", n(*dst), value),
            InstrKind::Copy { dst, src } => format!("{} <- {}", n(*dst), n(*src)),
            InstrKind::Compute { dst, op, args } => {
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match a.as_var() {
                        Some(v) => n(v),
                        None => ":".into(),
                    })
                    .collect();
                format!("{} <- {}({})", n(*dst), op.mnemonic(), args.join(", "))
            }
            InstrKind::Phi { dst, args } => {
                let args: Vec<String> = args
                    .iter()
                    .map(|(b, v)| format!("{b}: {}", n(*v)))
                    .collect();
                format!("{} <- phi({})", n(*dst), args.join(", "))
            }
            InstrKind::CallMulti { dsts, func, args } => {
                let ds: Vec<String> = dsts.iter().map(|d| n(*d)).collect();
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match a.as_var() {
                        Some(v) => n(v),
                        None => ":".into(),
                    })
                    .collect();
                format!("[{}] <- call {func}({})", ds.join(", "), args.join(", "))
            }
            InstrKind::Display { value, label } => {
                format!("display {label} = {}", n(*value))
            }
            InstrKind::Effect { builtin, args } => {
                let args: Vec<String> = args
                    .iter()
                    .map(|a| match a.as_var() {
                        Some(v) => n(v),
                        None => ":".into(),
                    })
                    .collect();
                format!("effect {}({})", builtin.name(), args.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Const;
    use matc_frontend::span::Span;

    #[test]
    fn var_table_display_names() {
        let mut t = VarTable::new();
        let x = t.push(VarInfo::source("x"));
        let tmp = t.push(VarInfo::temp());
        let x2 = t.push(VarInfo {
            name: Some("x".into()),
            ssa_origin: Some(x),
            ssa_version: 2,
        });
        assert_eq!(t.display_name(x), "x");
        assert_eq!(t.display_name(tmp), "%t1");
        assert_eq!(t.display_name(x2), "x.2");
    }

    #[test]
    fn rpo_of_diamond() {
        let mut f = FuncIr::new("g");
        let b0 = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        let cond = f.new_temp();
        f.block_mut(b0).term = Terminator::Branch {
            cond,
            then_bb: b1,
            else_bb: b2,
        };
        f.block_mut(b1).term = Terminator::Jump(b3);
        f.block_mut(b2).term = Terminator::Jump(b3);
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], b0);
        assert_eq!(*rpo.last().unwrap(), b3);
        // Predecessors of the join.
        let preds = f.predecessors();
        assert_eq!(preds[b3.index()].len(), 2);
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut f = FuncIr::new("g");
        let _dead = f.add_block();
        assert_eq!(f.reverse_postorder().len(), 1);
    }

    #[test]
    fn program_lookup() {
        let mut p = IrProgram::default();
        let mut f = FuncIr::new("kern");
        let dst = f.new_temp();
        f.block_mut(f.entry).instrs.push(Instr::new(
            InstrKind::Const {
                dst,
                value: Const::Num(1.0),
            },
            Span::dummy(),
        ));
        let id = p.add(f);
        p.entry = Some(id);
        assert!(p.func_by_name("kern").is_some());
        assert_eq!(p.entry_func().name, "kern");
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut p = IrProgram::default();
        p.add(FuncIr::new("f"));
        p.add(FuncIr::new("f"));
    }
}
