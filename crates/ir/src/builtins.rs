//! The builtin function vocabulary shared by lowering, type inference,
//! the GCTD pass, the VMs and the C backend.

use std::fmt;

/// A MATLAB builtin recognized by the compiler.
///
/// The set covers everything the PLDI 2003 benchmark suite uses plus two
/// internal helpers (`RangeCount`, `IsTrue`) introduced by lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `zeros(...)` — array of zeros.
    Zeros,
    /// `ones(...)` — array of ones.
    Ones,
    /// `eye(...)` — identity matrix.
    Eye,
    /// `rand(...)` — uniform random array.
    Rand,
    /// `size(a)` / `size(a, d)` — array extents.
    Size,
    /// `length(a)` — largest extent.
    Length,
    /// `numel(a)` — element count.
    Numel,
    /// `ndims(a)` — dimensionality.
    Ndims,
    /// `disp(x)` — display without the variable name.
    Disp,
    /// `fprintf(fmt, ...)` — formatted output.
    Fprintf,
    /// `sqrt(x)` — elementwise square root (complex for negatives).
    Sqrt,
    /// `abs(x)` — elementwise magnitude.
    Abs,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `atan(x)`
    Atan,
    /// `atan2(y, x)`
    Atan2,
    /// `exp(x)`
    Exp,
    /// `log(x)` — natural log (complex for negatives).
    Log,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `round(x)`
    Round,
    /// `fix(x)` — truncation toward zero.
    Fix,
    /// `mod(a, b)`
    Mod,
    /// `rem(a, b)`
    Rem,
    /// `max(a)` / `max(a, b)` — reduction or elementwise maximum.
    Max,
    /// `min(a)` / `min(a, b)`
    Min,
    /// `sum(a)` — column (or vector) sum.
    Sum,
    /// `prod(a)` — column (or vector) product.
    Prod,
    /// `mean(a)` — column (or vector) mean.
    Mean,
    /// `norm(a)` — 2-norm of a vector, Frobenius norm of a matrix.
    Norm,
    /// `real(x)`
    Real,
    /// `imag(x)`
    Imag,
    /// `conj(x)`
    Conj,
    /// `isempty(a)`
    IsEmpty,
    /// `any(a)`
    Any,
    /// `all(a)`
    All,
    /// `sign(x)`
    Sign,
    /// `linspace(a, b, n)`
    Linspace,
    /// `pi` — the constant π.
    Pi,
    /// `Inf` / `inf`
    Inf,
    /// `eps` — double-precision machine epsilon.
    Eps,
    /// `NaN` / `nan`
    NaN,
    /// `error(msg)` — abort execution with a message.
    ErrorFn,
    /// Internal: `range_count(start, step, stop)` — `for`-loop trip count.
    RangeCount,
    /// Internal: `istrue(x)` — MATLAB `if` truth (all elements nonzero,
    /// nonempty), producing a scalar boolean.
    IsTrue,
    /// Internal: `loop_index(start, step, stop, k)` — the value of a
    /// `for`-range variable at (1-based) iteration `k`. Carrying the
    /// range endpoints lets type inference bound the variable by the
    /// loop bounds, the way MAGICA bounds induction variables.
    LoopIndex,
}

impl Builtin {
    /// Resolves a source-level name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "zeros" => Zeros,
            "ones" => Ones,
            "eye" => Eye,
            "rand" => Rand,
            "size" => Size,
            "length" => Length,
            "numel" => Numel,
            "ndims" => Ndims,
            "disp" => Disp,
            "fprintf" => Fprintf,
            "sqrt" => Sqrt,
            "abs" => Abs,
            "sin" => Sin,
            "cos" => Cos,
            "tan" => Tan,
            "atan" => Atan,
            "atan2" => Atan2,
            "exp" => Exp,
            "log" => Log,
            "floor" => Floor,
            "ceil" => Ceil,
            "round" => Round,
            "fix" => Fix,
            "mod" => Mod,
            "rem" => Rem,
            "max" => Max,
            "min" => Min,
            "sum" => Sum,
            "prod" => Prod,
            "mean" => Mean,
            "norm" => Norm,
            "real" => Real,
            "imag" => Imag,
            "conj" => Conj,
            "isempty" => IsEmpty,
            "any" => Any,
            "all" => All,
            "sign" => Sign,
            "linspace" => Linspace,
            "pi" => Pi,
            "inf" | "Inf" => Inf,
            "eps" => Eps,
            "nan" | "NaN" => NaN,
            "error" => ErrorFn,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn name(self) -> &'static str {
        use Builtin::*;
        match self {
            Zeros => "zeros",
            Ones => "ones",
            Eye => "eye",
            Rand => "rand",
            Size => "size",
            Length => "length",
            Numel => "numel",
            Ndims => "ndims",
            Disp => "disp",
            Fprintf => "fprintf",
            Sqrt => "sqrt",
            Abs => "abs",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Atan => "atan",
            Atan2 => "atan2",
            Exp => "exp",
            Log => "log",
            Floor => "floor",
            Ceil => "ceil",
            Round => "round",
            Fix => "fix",
            Mod => "mod",
            Rem => "rem",
            Max => "max",
            Min => "min",
            Sum => "sum",
            Prod => "prod",
            Mean => "mean",
            Norm => "norm",
            Real => "real",
            Imag => "imag",
            Conj => "conj",
            IsEmpty => "isempty",
            Any => "any",
            All => "all",
            Sign => "sign",
            Linspace => "linspace",
            Pi => "pi",
            Inf => "Inf",
            Eps => "eps",
            NaN => "NaN",
            ErrorFn => "error",
            RangeCount => "range_count",
            IsTrue => "istrue",
            LoopIndex => "loop_index",
        }
    }

    /// Whether the builtin maps elements independently, so its result has
    /// the shape of its (non-scalar) argument and may be computed in place
    /// in that argument (GCTD §2.3).
    pub fn is_elementwise_map(self) -> bool {
        use Builtin::*;
        matches!(
            self,
            Sqrt | Abs
                | Sin
                | Cos
                | Tan
                | Atan
                | Exp
                | Log
                | Floor
                | Ceil
                | Round
                | Fix
                | Real
                | Imag
                | Conj
                | Sign
        )
    }

    /// Whether the builtin always produces a scalar.
    pub fn is_scalar_valued(self) -> bool {
        use Builtin::*;
        matches!(
            self,
            Length
                | Numel
                | Ndims
                | Norm
                | IsEmpty
                | Pi
                | Inf
                | Eps
                | NaN
                | RangeCount
                | IsTrue
                | LoopIndex
        )
    }

    /// Whether the builtin only performs I/O or control effects (its
    /// "result", if requested, is empty).
    pub fn is_effect(self) -> bool {
        matches!(self, Builtin::Disp | Builtin::Fprintf | Builtin::ErrorFn)
    }

    /// Whether calls to this builtin may be removed when their result is
    /// unused (pure) — dead-code elimination consults this.
    pub fn is_pure(self) -> bool {
        // `rand` advances the RNG stream; removing dead calls would change
        // subsequent draws, so it is kept. Everything non-effect is pure.
        !self.is_effect() && self != Builtin::Rand
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in [
            Builtin::Zeros,
            Builtin::Fprintf,
            Builtin::Sum,
            Builtin::Pi,
            Builtin::ErrorFn,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("no_such_fn"), None);
    }

    #[test]
    fn internal_helpers_are_not_source_names() {
        // range_count/istrue/loop_index are synthesized by lowering.
        assert_eq!(Builtin::from_name("range_count"), None);
        assert_eq!(Builtin::from_name("istrue"), None);
        assert_eq!(Builtin::from_name("loop_index"), None);
    }

    #[test]
    fn classification() {
        assert!(Builtin::Sqrt.is_elementwise_map());
        assert!(!Builtin::Sum.is_elementwise_map());
        assert!(Builtin::Numel.is_scalar_valued());
        assert!(Builtin::Disp.is_effect());
        assert!(!Builtin::Rand.is_pure());
        assert!(Builtin::Zeros.is_pure());
    }
}
