//! Phase budgets: wall-clock timeouts and fuel (abstract work-unit)
//! limits for the pipeline's fixpoint phases.
//!
//! The GCTD pipeline contains several iterative analyses whose running
//! time is input-dependent: the type-inference lattice iteration, the
//! interference-graph sweep, and the (optionally exhaustive) coloring
//! search. A [`Budget`] bounds each of these with two independent
//! mechanisms:
//!
//! * **fuel** — a count of abstract work units (roughly "one instruction
//!   visited" or "one search node expanded") shared across the whole
//!   unit compile, decremented via [`Budget::spend`];
//! * **wall clock** — a per-phase deadline armed by
//!   [`Budget::enter_phase`] and checked (cheaply, every few dozen
//!   spends) inside [`Budget::spend`].
//!
//! Tripping either limit surfaces a structured [`BudgetError`]
//! (`PhaseBudgetExceeded` in diagnostics) instead of an unbounded run;
//! callers feed that error into the degradation ladder (re-lower with
//! the conservative all-heap plan) rather than aborting the batch.
//!
//! A `Budget` is deliberately not `Sync`: each compilation unit runs on
//! one worker thread and owns its budget.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// How often (in spend calls) the wall-clock deadline is re-checked.
const CLOCK_CHECK_PERIOD: u32 = 64;

/// Which limit a [`BudgetError`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The fuel (work-unit) allowance ran out.
    Fuel,
    /// The per-phase wall-clock deadline passed.
    WallClock,
    /// The unit-wide deadline (e.g. a compile-service request deadline)
    /// passed. Unlike the per-phase timeout it is *not* re-armed by
    /// [`Budget::enter_phase`]; once it trips the whole request is out
    /// of time and callers should not fall back to a slower path.
    Deadline,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Fuel => write!(f, "fuel"),
            BudgetKind::WallClock => write!(f, "wall-clock"),
            BudgetKind::Deadline => write!(f, "deadline"),
        }
    }
}

/// A phase budget was exceeded; carries the phase that tripped it and
/// which of the two limits fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// Name of the phase that was running when the budget tripped
    /// (e.g. `"type_infer"`, `"interference"`, `"coloring"`).
    pub phase: &'static str,
    /// Which limit fired.
    pub kind: BudgetKind,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase budget exceeded: {} limit hit in {}",
            self.kind, self.phase
        )
    }
}

impl std::error::Error for BudgetError {}

/// A per-unit compilation budget: optional fuel allowance plus an
/// optional per-phase wall-clock timeout.
///
/// The zero-cost default is [`Budget::unlimited`], whose
/// [`spend`](Budget::spend) never fails. Interior mutability keeps the
/// budget usable through shared references threaded down the pipeline.
#[derive(Debug)]
pub struct Budget {
    phase_timeout: Option<Duration>,
    fuel_limit: Option<u64>,
    fuel_left: Cell<u64>,
    deadline: Cell<Option<Instant>>,
    /// Absolute unit-wide deadline (request deadline); never re-armed.
    hard_deadline: Option<Instant>,
    phase: Cell<&'static str>,
    tick: Cell<u32>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never trips; `spend` on it is a cheap no-op.
    pub fn unlimited() -> Budget {
        Budget::new(None, None)
    }

    /// Builds a budget from an optional per-phase wall-clock timeout and
    /// an optional fuel allowance (abstract work units for the whole
    /// unit compile).
    pub fn new(phase_timeout: Option<Duration>, fuel: Option<u64>) -> Budget {
        Budget {
            phase_timeout,
            fuel_limit: fuel,
            fuel_left: Cell::new(fuel.unwrap_or(u64::MAX)),
            deadline: Cell::new(None),
            hard_deadline: None,
            phase: Cell::new("start"),
            tick: Cell::new(0),
        }
    }

    /// Attaches an absolute unit-wide deadline (builder style). Unlike
    /// the per-phase timeout it is never re-armed by
    /// [`Budget::enter_phase`]; passing it trips
    /// [`BudgetKind::Deadline`], which the degradation ladder treats as
    /// fatal — a request that is out of time gains nothing from a
    /// conservative re-lower. This is how `matc serve` threads each
    /// request's deadline into the pipeline.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.hard_deadline = Some(deadline);
        self
    }

    /// The unit-wide deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.hard_deadline
    }

    /// Whether the unit-wide deadline has already passed.
    pub fn deadline_expired(&self) -> bool {
        self.hard_deadline.is_some_and(|d| Instant::now() > d)
    }

    /// A fresh budget with the same wall-clock timeout (and unit-wide
    /// deadline) but no fuel limit — used for the conservative re-lower
    /// after a fuel trip, so the fallback cannot be starved by the fuel
    /// the first attempt already burned, while still being bounded in
    /// time.
    pub fn without_fuel(&self) -> Budget {
        let b = Budget::new(self.phase_timeout, None);
        match self.hard_deadline {
            Some(d) => b.with_deadline(d),
            None => b,
        }
    }

    /// True when no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.phase_timeout.is_none() && self.fuel_limit.is_none() && self.hard_deadline.is_none()
    }

    /// Fuel remaining, or `None` when no fuel limit is set.
    pub fn fuel_left(&self) -> Option<u64> {
        self.fuel_limit.map(|_| self.fuel_left.get())
    }

    /// Marks the start of a named phase: re-arms the wall-clock deadline
    /// (the timeout is per phase, not per unit) and tags subsequent
    /// budget errors with `name`.
    pub fn enter_phase(&self, name: &'static str) {
        self.phase.set(name);
        self.tick.set(0);
        if let Some(t) = self.phase_timeout {
            self.deadline.set(Some(Instant::now() + t));
        }
    }

    /// Charges `units` of work against the budget.
    ///
    /// # Errors
    ///
    /// Returns a [`BudgetError`] naming the current phase when the fuel
    /// allowance is exhausted or the phase deadline has passed.
    pub fn spend(&self, units: u64) -> Result<(), BudgetError> {
        if self.fuel_limit.is_some() {
            let left = self.fuel_left.get();
            if left < units {
                self.fuel_left.set(0);
                return Err(self.trip(BudgetKind::Fuel));
            }
            self.fuel_left.set(left - units);
        }
        if self.deadline.get().is_some() || self.hard_deadline.is_some() {
            let t = self.tick.get().wrapping_add(1);
            self.tick.set(t);
            if t.is_multiple_of(CLOCK_CHECK_PERIOD) {
                let now = Instant::now();
                if self.hard_deadline.is_some_and(|d| now > d) {
                    return Err(self.trip(BudgetKind::Deadline));
                }
                if self.deadline.get().is_some_and(|d| now > d) {
                    return Err(self.trip(BudgetKind::WallClock));
                }
            }
        }
        Ok(())
    }

    fn trip(&self, kind: BudgetKind) -> BudgetError {
        BudgetError {
            phase: self.phase.get(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        b.enter_phase("type_infer");
        for _ in 0..10_000 {
            b.spend(1_000_000).expect("unlimited budget must not trip");
        }
        assert!(b.is_unlimited());
        assert_eq!(b.fuel_left(), None);
    }

    #[test]
    fn fuel_trips_with_phase_name() {
        let b = Budget::new(None, Some(10));
        b.enter_phase("coloring");
        for _ in 0..10 {
            b.spend(1).unwrap();
        }
        let err = b.spend(1).unwrap_err();
        assert_eq!(
            err,
            BudgetError {
                phase: "coloring",
                kind: BudgetKind::Fuel
            }
        );
        assert_eq!(b.fuel_left(), Some(0));
        assert!(err.to_string().contains("coloring"));
    }

    #[test]
    fn entering_a_phase_rearms_the_clock_but_not_fuel() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(5));
        b.enter_phase("interference");
        b.spend(3).unwrap();
        b.enter_phase("coloring");
        assert_eq!(b.fuel_left(), Some(2));
        let err = b.spend(3).unwrap_err();
        assert_eq!(err.phase, "coloring");
        assert_eq!(err.kind, BudgetKind::Fuel);
    }

    #[test]
    fn zero_timeout_trips_on_clock_check() {
        let b = Budget::new(Some(Duration::ZERO), None);
        b.enter_phase("type_infer");
        let mut tripped = None;
        for _ in 0..(CLOCK_CHECK_PERIOD * 2) {
            if let Err(e) = b.spend(1) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("zero deadline must trip within one check period");
        assert_eq!(e.kind, BudgetKind::WallClock);
        assert_eq!(e.phase, "type_infer");
    }

    #[test]
    fn expired_hard_deadline_trips_as_deadline_kind() {
        let b = Budget::new(None, None).with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!b.is_unlimited());
        assert!(b.deadline_expired());
        b.enter_phase("type_infer");
        let mut tripped = None;
        for _ in 0..(CLOCK_CHECK_PERIOD * 2) {
            if let Err(e) = b.spend(1) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("expired deadline must trip within one check period");
        assert_eq!(e.kind, BudgetKind::Deadline);
        assert_eq!(e.phase, "type_infer");
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn entering_a_phase_does_not_rearm_the_hard_deadline() {
        let b = Budget::new(Some(Duration::from_secs(3600)), None)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        b.enter_phase("interference");
        b.enter_phase("coloring");
        let mut tripped = None;
        for _ in 0..(CLOCK_CHECK_PERIOD * 2) {
            if let Err(e) = b.spend(1) {
                tripped = Some(e);
                break;
            }
        }
        // The generous per-phase timeout was re-armed, but the hard
        // deadline still fires.
        assert_eq!(tripped.expect("deadline fires").kind, BudgetKind::Deadline);
    }

    #[test]
    fn without_fuel_preserves_the_hard_deadline() {
        let d = Instant::now() + Duration::from_secs(5);
        let b = Budget::new(None, Some(1)).with_deadline(d);
        let relaxed = b.without_fuel();
        assert_eq!(relaxed.deadline(), Some(d));
        assert_eq!(relaxed.fuel_left(), None);
    }

    #[test]
    fn without_fuel_keeps_timeout_only() {
        let b = Budget::new(Some(Duration::from_millis(5)), Some(1));
        let relaxed = b.without_fuel();
        assert_eq!(relaxed.fuel_left(), None);
        assert!(!relaxed.is_unlimited());
        relaxed.enter_phase("type_infer");
        relaxed.spend(100).unwrap();
    }
}
