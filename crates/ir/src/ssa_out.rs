//! SSA inversion: replacing φ-functions with copies (§2.2.1 context).
//!
//! The paper coalesces φ destinations with their arguments in the
//! interference graph precisely so that the copies reintroduced here are
//! *identity assignments* and vanish. This module therefore accepts an
//! `is_identity` predicate — supplied by the GCTD storage plan — and
//! omits copies the plan has made trivial.
//!
//! Correctness subtleties handled:
//!
//! * **critical edges** (pred with several successors → block with
//!   several predecessors) are split so copies can be placed on the edge;
//! * the φs of a block form a **parallel copy** per incoming edge; the
//!   emitted sequence respects read-before-write order and breaks cyclic
//!   permutations with one temporary.

use crate::cfg::FuncIr;
use crate::ids::{BlockId, VarId};
use crate::instr::{Instr, InstrKind, Terminator};
use matc_frontend::span::Span;
use std::collections::HashMap;

/// Removes all φ-instructions from `func`, inserting the necessary copies.
///
/// `is_identity(dst, src)` should return true when the storage plan has
/// assigned `dst` and `src` to the same storage (the copy is then a
/// no-op and is not emitted). Pass `|_, _| false` when no plan exists.
///
/// # Panics
///
/// Panics if `func` is not in SSA form.
pub fn ssa_destruct(func: &mut FuncIr, mut is_identity: impl FnMut(VarId, VarId) -> bool) {
    assert!(func.in_ssa, "ssa_destruct requires SSA form");

    split_critical_edges(func);

    // Collect per-edge parallel copies: (pred, succ) -> [(dst, src)].
    let mut edge_copies: HashMap<(BlockId, BlockId), Vec<(VarId, VarId)>> = HashMap::new();
    for b in func.block_ids() {
        let blk = func.block(b);
        for phi in blk.phis() {
            if let InstrKind::Phi { dst, args } = &phi.kind {
                for (pred, src) in args {
                    edge_copies
                        .entry((*pred, b))
                        .or_default()
                        .push((*dst, *src));
                }
            }
        }
    }

    // Remove the φs.
    for b in func.block_ids() {
        let blk = func.block_mut(b);
        let k = blk.first_non_phi();
        blk.instrs.drain(..k);
    }

    // Insert sequentialized copies at the end of each predecessor
    // (before its terminator — predecessors of φ-blocks have a single
    // successor after edge splitting, so this is safe).
    let mut edges: Vec<_> = edge_copies.into_iter().collect();
    edges.sort_by_key(|((p, s), _)| (*p, *s));
    for ((pred, _succ), copies) in edges {
        let seq = sequentialize(&copies, || func.new_temp(), &mut is_identity);
        let blk = func.block_mut(pred);
        for (dst, src) in seq {
            blk.instrs
                .push(Instr::new(InstrKind::Copy { dst, src }, Span::dummy()));
        }
    }

    func.in_ssa = false;
}

/// Splits every critical edge by interposing an empty block.
fn split_critical_edges(func: &mut FuncIr) {
    let preds = func.predecessors();
    let mut splits: Vec<(BlockId, BlockId)> = Vec::new();
    for b in func.block_ids() {
        let succs = func.block(b).term.successors();
        if succs.len() <= 1 {
            continue;
        }
        for s in succs {
            if preds[s.index()].len() > 1 {
                splits.push((b, s));
            }
        }
    }
    for (b, s) in splits {
        let mid = func.add_block();
        func.block_mut(mid).term = Terminator::Jump(s);
        // Retarget exactly the (b, s) edge. A conditional branch may have
        // both arms pointing at s; retarget both (they are the same edge
        // set for φ purposes).
        func.block_mut(b)
            .term
            .map_successors(|t| if t == s { mid } else { t });
        // Update φ argument predecessor labels in s.
        let blk = func.block_mut(s);
        let k = blk.first_non_phi();
        for phi in &mut blk.instrs[..k] {
            if let InstrKind::Phi { args, .. } = &mut phi.kind {
                for (p, _) in args {
                    if *p == b {
                        *p = mid;
                    }
                }
            }
        }
    }
}

/// Orders a parallel copy `{dst_i <- src_i}` into a sequence of simple
/// copies, using a fresh temporary to break cycles.
///
/// The classic algorithm: repeatedly emit a copy whose destination is not
/// read by any remaining copy; when none exists the remaining copies form
/// disjoint cycles — rotate each through a temp. Public for property
/// tests and reuse by backends.
pub fn sequentialize(
    copies: &[(VarId, VarId)],
    mut new_temp: impl FnMut() -> VarId,
    is_identity: &mut impl FnMut(VarId, VarId) -> bool,
) -> Vec<(VarId, VarId)> {
    let mut pending: Vec<(VarId, VarId)> = copies
        .iter()
        .copied()
        .filter(|(d, s)| d != s && !is_identity(*d, *s))
        .collect();
    let mut out = Vec::with_capacity(pending.len());

    while !pending.is_empty() {
        // Find a copy whose destination no other pending copy reads.
        let safe = pending
            .iter()
            .position(|(d, _)| !pending.iter().any(|(_, s)| s == d));
        match safe {
            Some(i) => {
                let (d, s) = pending.swap_remove(i);
                out.push((d, s));
            }
            None => {
                // Pure cycle(s): break one by copying some source aside.
                let (d0, s0) = pending[0];
                let t = new_temp();
                out.push((t, s0));
                // Anything reading s0 now reads t.
                for (_, s) in pending.iter_mut() {
                    if *s == s0 {
                        *s = t;
                    }
                }
                // The first copy can now be emitted.
                let _ = (d0, s0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::ssa::ssa_construct_program;
    use matc_frontend::parser::parse_program;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn sequentialize_respects_dependencies() {
        // b <- a; c <- b  must emit c <- b before overwriting b.
        let seq = sequentialize(&[(v(1), v(0)), (v(2), v(1))], || v(99), &mut |_, _| false);
        assert_eq!(seq, vec![(v(2), v(1)), (v(1), v(0))]);
    }

    #[test]
    fn sequentialize_breaks_swap_cycle() {
        // a <-> b swap needs a temp.
        let seq = sequentialize(&[(v(0), v(1)), (v(1), v(0))], || v(9), &mut |_, _| false);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], (v(9), v(1)));
        // After the temp copy both originals can be written.
        assert!(
            seq.contains(&(v(0), v(9)))
                || seq.contains(&(v(1), v(9)))
                || seq.contains(&(v(0), v(1)))
        );
        // Simulate to be sure.
        let mut env = vec![10, 20, 0, 0, 0, 0, 0, 0, 0, 0];
        for (d, s) in &seq {
            env[d.index()] = env[s.index()];
        }
        assert_eq!(env[0], 20);
        assert_eq!(env[1], 10);
    }

    #[test]
    fn sequentialize_drops_identities() {
        let seq = sequentialize(&[(v(0), v(1)), (v(2), v(3))], || v(9), &mut |d, s| {
            d == v(0) && s == v(1)
        });
        assert_eq!(seq, vec![(v(2), v(3))]);
    }

    #[test]
    fn three_cycle() {
        // a<-b, b<-c, c<-a
        let seq = sequentialize(
            &[(v(0), v(1)), (v(1), v(2)), (v(2), v(0))],
            || v(9),
            &mut |_, _| false,
        );
        let mut env = vec![100, 200, 300, 0, 0, 0, 0, 0, 0, 0];
        for (d, s) in &seq {
            env[d.index()] = env[s.index()];
        }
        assert_eq!((env[0], env[1], env[2]), (200, 300, 100));
    }

    #[test]
    fn destruct_removes_all_phis() {
        let ast =
            parse_program(["function y = f(x)\ny = 0;\nwhile y < x\ny = y + 1;\nend\n"]).unwrap();
        let mut prog = lower_program(&ast).unwrap();
        ssa_construct_program(&mut prog);
        let f = prog.functions.get_mut(0).unwrap();
        assert!(f.in_ssa);
        ssa_destruct(f, |_, _| false);
        assert!(!f.in_ssa);
        for b in f.block_ids() {
            assert_eq!(f.block(b).phis().count(), 0);
        }
        // Copies were inserted somewhere.
        let copies: usize = f
            .block_ids()
            .map(|b| {
                f.block(b)
                    .instrs
                    .iter()
                    .filter(|i| matches!(i.kind, InstrKind::Copy { .. }))
                    .count()
            })
            .sum();
        assert!(copies > 0);
    }

    #[test]
    fn critical_edges_are_split() {
        // `if` without else: the branch block -> join edge is critical
        // when the join has 2 preds and the branch 2 succs.
        let ast = parse_program(["function y = f(x)\ny = 1;\nif x > 0\ny = 2;\nend\ny = y + 1;\n"])
            .unwrap();
        let mut prog = lower_program(&ast).unwrap();
        ssa_construct_program(&mut prog);
        let f = prog.functions.get_mut(0).unwrap();
        let before = f.blocks.len();
        ssa_destruct(f, |_, _| false);
        assert!(f.blocks.len() > before, "edge split adds a block");
        // No block with >1 successor may contain copies at its end that
        // belong to only one of the successors — guaranteed by splitting;
        // sanity: every multi-successor block ends without Copy instrs.
        for b in f.block_ids() {
            if f.block(b).term.successors().len() > 1 {
                if let Some(last) = f.block(b).instrs.last() {
                    assert!(
                        !matches!(last.kind, InstrKind::Copy { .. }),
                        "copy on unsplit critical edge"
                    );
                }
            }
        }
    }
}
