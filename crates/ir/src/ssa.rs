//! SSA construction (Cytron et al.).
//!
//! φ-functions are placed on the iterated dominance frontier of each
//! variable's definition sites; renaming walks the dominator tree with
//! per-variable stacks of reaching definitions. Reads of variables with
//! no reaching definition bind to a synthesized `[]` definition in the
//! entry block (one per variable), mirroring how MATLAB auto-vivifies
//! arrays grown by `subsasgn`.

use crate::cfg::{FuncIr, VarInfo};
use crate::dom::DomTree;
use crate::ids::{BlockId, VarId};
use crate::instr::{Const, Instr, InstrKind};
use matc_frontend::span::Span;
use std::collections::{HashMap, HashSet};

/// Converts every function of a program to SSA form.
pub fn ssa_construct_program(prog: &mut crate::cfg::IrProgram) {
    for f in &mut prog.functions {
        ssa_construct(f);
    }
}

/// Converts `func` to SSA form in place.
///
/// After the call, `func.in_ssa` is true, `func.params` hold the SSA
/// names of the parameters, and `func.ssa_outs` the SSA names carrying
/// each declared output at the (unique) return block.
///
/// # Panics
///
/// Panics if `func` is already in SSA form.
pub fn ssa_construct(func: &mut FuncIr) {
    assert!(!func.in_ssa, "function already in SSA form");
    let dt = DomTree::compute(func);
    let n_orig = func.vars.len();

    // ------------------------------------------------------------------
    // 1. Definition sites per original variable.
    // ------------------------------------------------------------------
    let mut def_blocks: Vec<HashSet<BlockId>> = vec![HashSet::new(); n_orig];
    for p in &func.params {
        def_blocks[p.index()].insert(func.entry);
    }
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            for d in instr.defs() {
                def_blocks[d.index()].insert(b);
            }
        }
    }

    // ------------------------------------------------------------------
    // 2. φ-placement on iterated dominance frontiers.
    //    `phi_sites[b]` lists the original variables needing a φ at `b`.
    // ------------------------------------------------------------------
    let mut phi_sites: HashMap<BlockId, Vec<VarId>> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // index doubles as the VarId
    for var_idx in 0..n_orig {
        let v = VarId::new(var_idx);
        if def_blocks[var_idx].is_empty() {
            continue;
        }
        let mut work: Vec<BlockId> = def_blocks[var_idx].iter().copied().collect();
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &d in dt.frontier(b) {
                if has_phi.insert(d) {
                    phi_sites.entry(d).or_default().push(v);
                    if !def_blocks[var_idx].contains(&d) {
                        work.push(d);
                    }
                }
            }
        }
    }
    // Materialize placeholder φ instructions (args filled during
    // renaming). Sort for determinism.
    let preds = func.predecessors();
    for (b, vars) in &mut phi_sites {
        vars.sort();
        let phis: Vec<Instr> = vars
            .iter()
            .map(|v| {
                Instr::new(
                    InstrKind::Phi {
                        dst: *v, // rewritten during renaming
                        args: Vec::new(),
                    },
                    Span::dummy(),
                )
            })
            .collect();
        let blk = func.block_mut(*b);
        for (i, phi) in phis.into_iter().enumerate() {
            blk.instrs.insert(i, phi);
        }
    }
    // Remember which original variable each φ at each block is for.
    let phi_origin: HashMap<BlockId, Vec<VarId>> = phi_sites;

    // ------------------------------------------------------------------
    // 3. Renaming via dominator-tree traversal.
    // ------------------------------------------------------------------
    struct Renamer<'d> {
        dt: &'d DomTree,
        preds: Vec<Vec<BlockId>>,
        stacks: Vec<Vec<VarId>>,
        versions: Vec<u32>,
        undef_cache: HashMap<VarId, VarId>,
        phi_origin: HashMap<BlockId, Vec<VarId>>,
    }

    impl Renamer<'_> {
        fn fresh(&mut self, func: &mut FuncIr, origin: VarId) -> VarId {
            self.versions[origin.index()] += 1;
            let version = self.versions[origin.index()];
            let name = func.vars.info(origin).name.clone();

            func.vars.push(VarInfo {
                name,
                ssa_origin: Some(origin),
                ssa_version: version,
            })
        }

        fn top(&mut self, func: &mut FuncIr, origin: VarId) -> VarId {
            if let Some(v) = self.stacks[origin.index()].last() {
                return *v;
            }
            // Read of a never-defined (on this path) variable: bind to a
            // synthesized `[]` definition shared across all such reads.
            if let Some(v) = self.undef_cache.get(&origin) {
                return *v;
            }
            let v = self.fresh(func, origin);
            self.undef_cache.insert(origin, v);
            v
        }

        fn rename_block(&mut self, func: &mut FuncIr, b: BlockId) {
            let mut pushed: Vec<VarId> = Vec::new();

            // Take instructions out to satisfy the borrow checker; the
            // block is put back before recursing.
            let mut instrs = std::mem::take(&mut func.block_mut(b).instrs);
            for instr in &mut instrs {
                if !instr.is_phi() {
                    instr.map_uses(|u| self.top(func, u));
                }
                // Redefine destinations.
                match &mut instr.kind {
                    InstrKind::Const { dst, .. }
                    | InstrKind::Copy { dst, .. }
                    | InstrKind::Compute { dst, .. }
                    | InstrKind::Phi { dst, .. } => {
                        let origin = *dst;
                        let new = self.fresh(func, origin);
                        *dst = new;
                        self.stacks[origin.index()].push(new);
                        pushed.push(origin);
                    }
                    InstrKind::CallMulti { dsts, .. } => {
                        for dst in dsts {
                            let origin = *dst;
                            let new = self.fresh(func, origin);
                            *dst = new;
                            self.stacks[origin.index()].push(new);
                            pushed.push(origin);
                        }
                    }
                    InstrKind::Display { .. } | InstrKind::Effect { .. } => {}
                }
            }
            // Rename the branch condition.
            let mut term = func.block_mut(b).term.clone();
            if let crate::instr::Terminator::Branch { cond, .. } = &mut term {
                *cond = self.top(func, *cond);
            }
            func.block_mut(b).term = term;
            func.block_mut(b).instrs = instrs;

            // Fill φ arguments in successors.
            for s in func.block(b).term.successors() {
                if let Some(origins) = self.phi_origin.get(&s).cloned() {
                    for (i, origin) in origins.iter().enumerate() {
                        let incoming = self.top(func, *origin);
                        if let InstrKind::Phi { args, .. } = &mut func.block_mut(s).instrs[i].kind {
                            args.push((b, incoming));
                        }
                    }
                }
            }
            // φ-argument order must match predecessor enumeration for the
            // verifier; we sort by predecessor id afterwards.
            let _ = &self.preds;

            // Recurse into dominator-tree children.
            for &c in self.dt.children(b) {
                self.rename_block(func, c);
            }
            // Pop this block's definitions.
            for origin in pushed.into_iter().rev() {
                self.stacks[origin.index()].pop();
            }
        }
    }

    let mut renamer = Renamer {
        dt: &dt,
        preds,
        stacks: vec![Vec::new(); n_orig],
        versions: vec![0; n_orig],
        undef_cache: HashMap::new(),
        phi_origin,
    };

    // Parameters define their variables at entry.
    let param_origins: Vec<VarId> = func.params.clone();
    let mut new_params = Vec::with_capacity(param_origins.len());
    for p in &param_origins {
        let v = renamer.fresh(func, *p);
        renamer.stacks[p.index()].push(v);
        new_params.push(v);
    }

    renamer.rename_block(func, func.entry);

    // Outputs: the reaching definition at the unique return block. The
    // return block is the one whose terminator is Return; renaming kept
    // stacks only during traversal, so recompute by a dedicated pass:
    // walk the dominator tree recording the reaching def of each output
    // at the return block. Simpler: rerun a light renaming? Instead we
    // capture during traversal below.
    //
    // (Implementation note: we re-do the traversal cheaply, tracking only
    // output origins, to keep `rename_block` simple.)
    let out_origins: Vec<VarId> = func.outs.clone();
    let ssa_outs = compute_reaching_at_returns(
        func,
        &dt,
        &out_origins,
        &renamer.undef_cache,
        &new_params,
        &param_origins,
    );

    // Synthesized `[]` definitions for undefined reads, at entry top.
    let mut inits: Vec<Instr> = renamer
        .undef_cache
        .values()
        .map(|v| {
            Instr::new(
                InstrKind::Const {
                    dst: *v,
                    value: Const::Empty,
                },
                Span::dummy(),
            )
        })
        .collect();
    inits.sort_by_key(|i| i.defs()[0]);
    let entry = func.entry;
    let entry_blk = func.block_mut(entry);
    let at = entry_blk.first_non_phi();
    for (k, init) in inits.into_iter().enumerate() {
        entry_blk.instrs.insert(at + k, init);
    }

    func.params = new_params;
    func.ssa_outs = ssa_outs;
    func.in_ssa = true;
}

/// Computes, for each output origin, its reaching SSA definition at the
/// return block by walking the dominator tree once more.
fn compute_reaching_at_returns(
    func: &FuncIr,
    dt: &DomTree,
    out_origins: &[VarId],
    undef_cache: &HashMap<VarId, VarId>,
    new_params: &[VarId],
    param_origins: &[VarId],
) -> Vec<VarId> {
    // Find the return block (unique by construction in lowering).
    let ret_block = func
        .block_ids()
        .find(|b| {
            matches!(func.block(*b).term, crate::instr::Terminator::Return) && dt.idom(*b).is_some()
        })
        .unwrap_or(func.entry);

    // Walk the dominator tree maintaining stacks, but defs are now the
    // *SSA* instructions: an SSA def of origin o pushes itself.
    let mut stacks: HashMap<VarId, Vec<VarId>> = HashMap::new();
    for (p, origin) in new_params.iter().zip(param_origins) {
        stacks.entry(*origin).or_default().push(*p);
    }
    let mut result: Vec<Option<VarId>> = vec![None; out_origins.len()];

    fn walk(
        func: &FuncIr,
        dt: &DomTree,
        b: BlockId,
        ret_block: BlockId,
        stacks: &mut HashMap<VarId, Vec<VarId>>,
        out_origins: &[VarId],
        result: &mut Vec<Option<VarId>>,
    ) {
        let mut pushed: Vec<VarId> = Vec::new();
        for instr in &func.block(b).instrs {
            for d in instr.defs() {
                if let Some(origin) = func.vars.info(d).ssa_origin {
                    stacks.entry(origin).or_default().push(d);
                    pushed.push(origin);
                }
            }
        }
        if b == ret_block {
            for (i, o) in out_origins.iter().enumerate() {
                result[i] = stacks.get(o).and_then(|s| s.last().copied());
            }
        }
        for &c in dt.children(b) {
            walk(func, dt, c, ret_block, stacks, out_origins, result);
        }
        for origin in pushed.into_iter().rev() {
            stacks.get_mut(&origin).map(|s| s.pop());
        }
    }

    walk(
        func,
        dt,
        func.entry,
        ret_block,
        &mut stacks,
        out_origins,
        &mut result,
    );

    result
        .into_iter()
        .zip(out_origins)
        .map(|(r, origin)| {
            r.or_else(|| undef_cache.get(origin).copied())
                .unwrap_or(*origin) // unassigned output with no reads: origin stays
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::verify::verify_func;
    use matc_frontend::parser::parse_program;

    fn ssa_of(src: &str) -> FuncIr {
        let ast = parse_program([src]).unwrap();
        let mut prog = lower_program(&ast).unwrap();
        ssa_construct_program(&mut prog);
        let f = prog.entry_func().clone();
        verify_func(&f).unwrap_or_else(|e| panic!("invalid SSA: {e}\n{f}"));
        f
    }

    #[test]
    fn straight_line_gets_no_phis() {
        let f = ssa_of("function y = f(a)\ny = a + 1;\ny = y * 2;\n");
        let phis: usize = f.block_ids().map(|b| f.block(b).phis().count()).sum();
        assert_eq!(phis, 0, "{f}");
        // y was defined twice: two SSA versions exist.
        let versions = f
            .vars
            .iter()
            .filter(|(_, i)| i.name.as_deref() == Some("y") && i.ssa_origin.is_some())
            .count();
        assert_eq!(versions, 2, "{f}");
    }

    #[test]
    fn diamond_join_gets_phi() {
        let f = ssa_of("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\ny = y + 1;\n");
        let phis: usize = f.block_ids().map(|b| f.block(b).phis().count()).sum();
        assert!(phis >= 1, "join needs a phi for y:\n{f}");
    }

    #[test]
    fn loop_carried_variable_gets_header_phi() {
        let f = ssa_of("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n");
        // s and the loop counter both need φs at the loop header.
        let phis: usize = f.block_ids().map(|b| f.block(b).phis().count()).sum();
        assert!(phis >= 2, "{f}");
    }

    #[test]
    fn ssa_outs_resolved() {
        let f = ssa_of("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\n");
        assert_eq!(f.ssa_outs.len(), 1);
        let out = f.ssa_outs[0];
        assert!(f.vars.info(out).ssa_origin.is_some(), "{f}");
    }

    #[test]
    fn undefined_read_binds_to_empty_init() {
        // `a` grows from nothing via subsasgn: reading it first binds to
        // a synthesized [] at entry.
        let f = ssa_of("function a = f(n)\nfor i = 1:n\na(i) = i;\nend\n");
        let entry_has_empty = f.block(f.entry).instrs.iter().any(|ins| {
            matches!(
                &ins.kind,
                InstrKind::Const {
                    value: Const::Empty,
                    ..
                }
            )
        });
        assert!(entry_has_empty, "{f}");
    }

    #[test]
    fn params_become_ssa_names() {
        let f = ssa_of("function y = f(x)\ny = x;\n");
        for p in &f.params {
            assert!(f.vars.info(*p).ssa_origin.is_some());
        }
    }

    #[test]
    fn phi_args_cover_all_predecessors() {
        let f = ssa_of("function y = f(x)\ny = 0;\nwhile y < x\ny = y + 1;\nend\n");
        let preds = f.predecessors();
        for b in f.block_ids() {
            for phi in f.block(b).phis() {
                if let InstrKind::Phi { args, .. } = &phi.kind {
                    assert_eq!(args.len(), preds[b.index()].len(), "phi arity at {b}:\n{f}");
                }
            }
        }
    }
}
