//! IR invariant checking.
//!
//! The verifier is run by tests after every transformation: it catches
//! malformed CFGs (dangling block references), broken SSA (multiple
//! definitions, uses not dominated by their definition, φ-argument /
//! predecessor mismatches) and misplaced instructions (φ after non-φ,
//! colon operands outside subscript positions).

use crate::cfg::FuncIr;
use crate::dom::DomTree;
use crate::ids::{BlockId, VarId};
use crate::instr::{InstrKind, Op, Operand};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural and (if applicable) SSA invariants of `func`.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_func(func: &FuncIr) -> Result<(), VerifyError> {
    let nblocks = func.blocks.len();
    let err = |m: String| Err(VerifyError(m));

    // Block references in range; φs clustered at head; colon operands
    // only in subscript positions of subsref/subsasgn.
    for b in func.block_ids() {
        let blk = func.block(b);
        for s in blk.term.successors() {
            if s.index() >= nblocks {
                return err(format!("{b} terminator targets missing block {s}"));
            }
        }
        let first_non_phi = blk.first_non_phi();
        for (i, instr) in blk.instrs.iter().enumerate() {
            if instr.is_phi() && i >= first_non_phi {
                return err(format!("{b}: φ after non-φ instruction"));
            }
            for v in instr.uses().into_iter().chain(instr.defs()) {
                if v.index() >= func.vars.len() {
                    return err(format!("{b}: instruction references unknown {v}"));
                }
            }
            if let InstrKind::Compute { op, args, .. } = &instr.kind {
                let colon_ok_from = match op {
                    Op::Subsref => 1,
                    Op::Subsasgn => 2,
                    _ => usize::MAX,
                };
                for (k, a) in args.iter().enumerate() {
                    if matches!(a, Operand::ColonAll) && k < colon_ok_from {
                        return err(format!(
                            "{b}: `:` operand in non-subscript position of {}",
                            op.mnemonic()
                        ));
                    }
                }
            }
        }
    }

    if !func.in_ssa {
        return Ok(());
    }

    // --- SSA-only checks ---
    let dt = DomTree::compute(func);
    let preds = func.predecessors();

    // Single definition point per variable. Definition positions are
    // 1-based instruction indexes; parameters define at position 0,
    // before every instruction of the entry block.
    let mut def_site: HashMap<VarId, (BlockId, usize)> = HashMap::new();
    for p in func.params.iter() {
        if def_site.insert(*p, (func.entry, 0)).is_some() {
            return err(format!("parameter {p} defined twice"));
        }
    }
    for b in func.block_ids() {
        if dt.idom(b).is_none() {
            continue; // unreachable
        }
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            for d in instr.defs() {
                if def_site.insert(d, (b, i + 1)).is_some() {
                    return err(format!("{d} has multiple definitions"));
                }
            }
        }
    }

    // φ args match predecessors exactly.
    for b in func.block_ids() {
        if dt.idom(b).is_none() {
            continue;
        }
        let expected: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
        for phi in func.block(b).phis() {
            if let InstrKind::Phi { dst, args } = &phi.kind {
                let got: HashSet<BlockId> = args.iter().map(|(p, _)| *p).collect();
                if got != expected || args.len() != preds[b.index()].len() {
                    return err(format!(
                        "φ for {dst} at {b} has args from {got:?}, predecessors are {expected:?}"
                    ));
                }
            }
        }
    }

    // Every use dominated by its definition. φ uses count as uses at the
    // end of the corresponding predecessor.
    for b in func.block_ids() {
        if dt.idom(b).is_none() {
            continue;
        }
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if let InstrKind::Phi { args, .. } = &instr.kind {
                for (p, v) in args {
                    if let Some(&(db, _)) = def_site.get(v) {
                        if !dt.dominates(db, *p) {
                            return err(format!(
                                "φ argument {v} (from {p}) not dominated by its definition in {db}"
                            ));
                        }
                    } else {
                        return err(format!("φ argument {v} has no definition"));
                    }
                }
                continue;
            }
            for v in instr.uses() {
                match def_site.get(&v) {
                    None => {
                        return err(format!(
                            "{b}: use of {v} ({}) with no definition",
                            func.vars.display_name(v)
                        ));
                    }
                    Some(&(db, di)) => {
                        let ok = if db == b {
                            di <= i // def position is 1-based; use at instr i is position i+1
                        } else {
                            dt.dominates(db, b)
                        };
                        if !ok {
                            return err(format!(
                                "{b}: use of {} not dominated by its definition in {db}",
                                func.vars.display_name(v)
                            ));
                        }
                    }
                }
            }
        }
        if let Some(c) = func.block(b).term.used_var() {
            match def_site.get(&c) {
                None => return err(format!("{b}: branch on undefined {c}")),
                Some(&(db, _)) => {
                    if db != b && !dt.dominates(db, b) {
                        return err(format!("{b}: branch condition not dominated by def"));
                    }
                }
            }
        }
    }

    Ok(())
}

/// Verifies every function of a program.
///
/// # Errors
///
/// Returns the first violation, prefixed with the function name.
pub fn verify_program(prog: &crate::cfg::IrProgram) -> Result<(), VerifyError> {
    for f in &prog.functions {
        verify_func(f).map_err(|e| VerifyError(format!("in `{}`: {}", f.name, e.0)))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::FuncIr;
    use crate::instr::{Const, Instr, Terminator};
    use matc_frontend::span::Span;

    #[test]
    fn catches_multiple_defs_in_ssa() {
        let mut f = FuncIr::new("g");
        let v = f.new_temp();
        let entry = f.entry;
        for _ in 0..2 {
            f.block_mut(entry).instrs.push(Instr::new(
                InstrKind::Const {
                    dst: v,
                    value: Const::Num(1.0),
                },
                Span::dummy(),
            ));
        }
        f.in_ssa = true;
        let e = verify_func(&f).unwrap_err();
        assert!(e.0.contains("multiple definitions"), "{e}");
    }

    #[test]
    fn catches_use_without_def() {
        let mut f = FuncIr::new("g");
        let v = f.new_temp();
        let d = f.new_temp();
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::new(
            InstrKind::Copy { dst: d, src: v },
            Span::dummy(),
        ));
        f.in_ssa = true;
        let e = verify_func(&f).unwrap_err();
        assert!(e.0.contains("no definition"), "{e}");
    }

    #[test]
    fn catches_dangling_block() {
        let mut f = FuncIr::new("g");
        let entry = f.entry;
        f.block_mut(entry).term = Terminator::Jump(BlockId::new(9));
        let e = verify_func(&f).unwrap_err();
        assert!(e.0.contains("missing block"), "{e}");
    }

    #[test]
    fn accepts_valid_non_ssa() {
        let mut f = FuncIr::new("g");
        let v = f.new_temp();
        let entry = f.entry;
        for _ in 0..2 {
            f.block_mut(entry).instrs.push(Instr::new(
                InstrKind::Const {
                    dst: v,
                    value: Const::Num(1.0),
                },
                Span::dummy(),
            ));
        }
        // Not in SSA: double definition is fine.
        assert!(verify_func(&f).is_ok());
    }

    #[test]
    fn catches_misplaced_colon() {
        let mut f = FuncIr::new("g");
        let a = f.new_temp();
        let d = f.new_temp();
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::new(
            InstrKind::Compute {
                dst: d,
                op: Op::Bin(matc_frontend::ast::BinOp::Add),
                args: vec![Operand::Var(a), Operand::ColonAll],
            },
            Span::dummy(),
        ));
        let e = verify_func(&f).unwrap_err();
        assert!(e.0.contains("non-subscript"), "{e}");
    }
}
