//! Property-based validation of storage-plan **structural invariants**,
//! independent of execution (the root `proptest_pipeline` test covers
//! behavioral equivalence). For random programs and every planning
//! configuration — the paper's defaults, each ablation, and each
//! coloring strategy — the produced plan must satisfy:
//!
//! 1. every SSA definition is either a code immediate or bound to a slot;
//! 2. two variables sharing a slot never interfere (Chaitin soundness);
//! 3. stack slots are sized at their maximal member and hold no
//!    dynamically-sized member (§3.2.1);
//! 4. heap-slot definitions all carry an explicit resize annotation
//!    (§3.2.2) — except under the no-coalescing baseline, which by
//!    design resizes (`±`) every definition via the `resize_of` default.

use matc_frontend::parser::parse_program;
use matc_gctd::{
    ColoringStrategy, Dataflow, GctdOptions, InterferenceGraph, InterferenceOptions, SizeClass,
    Sizing, SlotKind, StoragePlan,
};
use matc_ir::build_ssa;
use matc_ir::instr::InstrKind;
use matc_ir::{FuncIr, IrProgram};
use matc_typeinf::{infer_program, ProgramTypes};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Stmt {
    /// `vD = rand(k, k)` — a fresh static array (k in 2..=4).
    Fresh(usize, usize),
    /// `vD = vA <op> vB` elementwise (all arrays kept 3x3-compatible by
    /// re-freshing on use; mismatches only matter at run time, which
    /// this test never reaches).
    Ew(usize, usize, usize, u8),
    /// `vD = vA * vB` matrix multiply.
    MatMul(usize, usize, usize),
    /// `vD(1, 2) = 7` indexed store (growth candidate).
    Store(usize),
    /// `wD = rand(n, n)` — symbolic (dynamic) array from the parameter.
    SymFresh(usize),
    /// `wD = wA + 1` — symbolic elementwise, shape-identity reuse.
    SymEw(usize, usize),
    /// `if vA(1, 1) > 0.5 ... else ... end` redefining vD both ways (φ).
    Branch(usize, usize),
    /// `for t = 1:3, vD = vD + vA; end` (loop-carried φ).
    Loop(usize, usize),
}

const NV: usize = 4;
const NW: usize = 3;

fn render(stmts: &[Stmt]) -> String {
    let mut b = String::from("function f(n)\n");
    for i in 0..NV {
        b.push_str(&format!("v{i} = rand(3, 3);\n"));
    }
    for i in 0..NW {
        b.push_str(&format!("w{i} = rand(n, n);\n"));
    }
    for s in stmts {
        match s {
            Stmt::Fresh(d, k) => b.push_str(&format!("v{d} = rand({k}, {k});\n")),
            Stmt::Ew(d, x, y, op) => {
                let op = ["+", "-", ".*"][(*op as usize) % 3];
                b.push_str(&format!("v{d} = v{x} {op} v{y};\n"));
            }
            Stmt::MatMul(d, x, y) => b.push_str(&format!("v{d} = v{x} * v{y};\n")),
            Stmt::Store(d) => b.push_str(&format!("v{d}(1, 2) = 7;\n")),
            Stmt::SymFresh(d) => b.push_str(&format!("w{d} = rand(n, n);\n")),
            Stmt::SymEw(d, x) => b.push_str(&format!("w{d} = w{x} + 1;\n")),
            Stmt::Branch(d, a) => b.push_str(&format!(
                "if v{a}(1, 1) > 0.5\nv{d} = v{a} + 1;\nelse\nv{d} = v{a} - 1;\nend\n"
            )),
            Stmt::Loop(d, a) => b.push_str(&format!("for t = 1:3\nv{d} = v{d} + v{a};\nend\n")),
        }
    }
    // Keep everything live at the end so nothing is trivially dead.
    for i in 0..NV {
        b.push_str(&format!("disp(sum(sum(v{i})));\n"));
    }
    for i in 0..NW {
        b.push_str(&format!("disp(sum(sum(w{i})));\n"));
    }
    b
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..NV, 2..5usize).prop_map(|(d, k)| Stmt::Fresh(d, k)),
        (0..NV, 0..NV, 0..NV, any::<u8>()).prop_map(|(d, x, y, o)| Stmt::Ew(d, x, y, o)),
        (0..NV, 0..NV, 0..NV).prop_map(|(d, x, y)| Stmt::MatMul(d, x, y)),
        (0..NV).prop_map(Stmt::Store),
        (0..NW).prop_map(Stmt::SymFresh),
        (0..NW, 0..NW).prop_map(|(d, x)| Stmt::SymEw(d, x)),
        (0..NV, 0..NV).prop_map(|(d, a)| Stmt::Branch(d, a)),
        (0..NV, 0..NV).prop_map(|(d, a)| Stmt::Loop(d, a)),
    ]
}

fn pipeline(src: &str) -> (IrProgram, ProgramTypes) {
    let ast = parse_program([src]).unwrap();
    let mut ir = build_ssa(&ast).unwrap();
    matc_passes::optimize_program(&mut ir);
    let types = infer_program(&ir);
    (ir, types)
}

/// Checks the four structural invariants of one plan.
fn check_plan(
    func: &FuncIr,
    plan: &StoragePlan,
    graph: &InterferenceGraph,
    sizing: &Sizing,
    tag: &str,
) {
    // 1. Every definition is an immediate or planned.
    for bid in func.block_ids() {
        for instr in &func.block(bid).instrs {
            for d in instr.defs() {
                if matches!(instr.kind, InstrKind::Const { .. }) && graph.is_immediate(d) {
                    assert!(
                        plan.slot_of(d).is_none(),
                        "{tag}: immediate {d:?} has a slot"
                    );
                } else {
                    assert!(
                        plan.slot_of(d).is_some(),
                        "{tag}: definition {d:?} unplanned\n{func}"
                    );
                }
            }
        }
    }
    for p in &func.params {
        assert!(plan.slot_of(*p).is_some(), "{tag}: param {p:?} unplanned");
    }

    for (si, slot) in plan.slots.iter().enumerate() {
        // 2. Members are pairwise non-interfering.
        for (i, &u) in slot.members.iter().enumerate() {
            for &v in &slot.members[i + 1..] {
                assert!(
                    !graph.interferes(u, v),
                    "{tag}: slot {si} holds interfering {u:?} and {v:?}\n{func}"
                );
            }
        }
        // 3. Stack slots: sized at the max member, no dynamic members.
        if let SlotKind::Stack { bytes } = slot.kind {
            let mut max_seen = 0;
            for &m in &slot.members {
                match sizing.class[m.index()] {
                    Some(SizeClass::Static(b)) => {
                        assert!(
                            b <= bytes,
                            "{tag}: slot {si} ({bytes}B) member {m:?} needs {b}B"
                        );
                        max_seen = max_seen.max(b);
                    }
                    Some(SizeClass::Dynamic(_)) => {
                        panic!("{tag}: dynamic {m:?} in stack slot {si}")
                    }
                    None => {}
                }
            }
            assert_eq!(
                max_seen, bytes,
                "{tag}: slot {si} over-allocated ({bytes}B for {max_seen}B max)"
            );
        }
    }

    // 4. Heap-slot definitions carry explicit resize annotations (the
    // no-coalescing baseline relies on resize_of's ± default instead).
    if tag == "no-gctd" {
        return;
    }
    for bid in func.block_ids() {
        for instr in &func.block(bid).instrs {
            for d in instr.defs() {
                if let Some(si) = plan.slot_of(d) {
                    if plan.slots[si].kind == SlotKind::Heap
                        && !matches!(instr.kind, InstrKind::Phi { .. })
                    {
                        assert!(
                            plan.resize.contains_key(&d),
                            "{tag}: heap def {d:?} lacks a resize annotation"
                        );
                    }
                }
            }
        }
    }
}

fn configs() -> Vec<(&'static str, GctdOptions)> {
    let base = GctdOptions::default();
    vec![
        ("default", base),
        (
            "no-phi",
            GctdOptions {
                interference: InterferenceOptions {
                    operator_semantics: true,
                    phi_coalescing: false,
                },
                ..base
            },
        ),
        (
            "no-symbolic",
            GctdOptions {
                symbolic_criterion: false,
                ..base
            },
        ),
        (
            "size-ordered",
            GctdOptions {
                coloring: ColoringStrategy::SizeOrderedGreedy,
                ..base
            },
        ),
        (
            "exhaustive",
            GctdOptions {
                coloring: ColoringStrategy::Exhaustive { max_nodes: 10 },
                ..base
            },
        ),
        (
            "no-gctd",
            GctdOptions {
                coalesce: false,
                ..base
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn plans_satisfy_structural_invariants(
        stmts in proptest::collection::vec(arb_stmt(), 1..14)
    ) {
        let src = render(&stmts);
        let (ir, mut types) = pipeline(&src);
        let fid = ir.entry.unwrap();
        let func = ir.entry_func();
        for (tag, opts) in configs() {
            let flow = Dataflow::compute(func);
            let graph = {
                let ftypes = &types.funcs[fid.index()];
                InterferenceGraph::build(func, &flow, ftypes, &types, opts.interference)
            };
            let sizing = Sizing::compute(func, fid, &mut types);
            let plan = matc_gctd::plan_function(func, fid, &mut types, opts);
            check_plan(func, &plan, &graph, &sizing, tag);
        }
    }
}

/// The no-coalescing baseline puts every variable in its own slot.
#[test]
fn no_gctd_plans_are_singletons() {
    let src = render(&[Stmt::Ew(0, 1, 2, 0), Stmt::Branch(3, 0), Stmt::Store(1)]);
    let (ir, mut types) = pipeline(&src);
    let fid = ir.entry.unwrap();
    let func = ir.entry_func();
    let plan = matc_gctd::plan_function(
        func,
        fid,
        &mut types,
        GctdOptions {
            coalesce: false,
            ..GctdOptions::default()
        },
    );
    for (si, slot) in plan.slots.iter().enumerate() {
        assert_eq!(slot.members.len(), 1, "slot {si} coalesced under no-gctd");
    }
}
