//! Liveness and availability dataflow (§2).
//!
//! The paper approximates Chaitin interference by considering variables
//! that are simultaneously **live** ("a possible execution path from s to
//! a use of w along which w is not redefined") and **available** ("a
//! possible execution path from a definition of v to s") at each
//! assignment. Both analyses here are the conservative may-variants the
//! paper describes.
//!
//! Since PR 4 the fixpoints run on a dense bitset engine
//! ([`matc_ir::bitset`]): per-block sets are `u64`-packed rows of a
//! [`BitMatrix`] and each analysis is a **worklist** algorithm —
//! liveness seeded from the upward-exposed use summaries and re-examining
//! predecessors when a block's live-in grows, availability flowing
//! forward, and reachability as a bitset transitive closure. Change
//! detection is the in-place `union_returns_changed` the bitset rows
//! provide, so the steady state of a fixpoint performs no allocation.
//! The original set-based whole-CFG sweeps are retained verbatim as
//! [`Dataflow::compute_reference`] for differential testing.

use matc_ir::bitset::{words_for, BitMatrix, BitSet};
use matc_ir::ids::{BlockId, VarId};
use matc_ir::instr::InstrKind;
use matc_ir::{Budget, BudgetError, FuncIr};
use std::collections::HashSet;

/// Per-block liveness and availability sets for one SSA function.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Variables live at each block entry (φ inputs excluded, φ defs
    /// included when used later).
    pub live_in: Vec<HashSet<VarId>>,
    /// Variables live at each block exit (φ uses of successors count as
    /// live-out of the corresponding predecessor).
    pub live_out: Vec<HashSet<VarId>>,
    /// Variables available (possibly defined) at each block exit.
    pub avail_out: Vec<HashSet<VarId>>,
    /// Definition site of every variable: `(block, instruction index)`;
    /// parameters use index 0 of the entry block and are flagged.
    pub def_site: Vec<Option<(BlockId, usize)>>,
    /// Whether the variable is a parameter (defined before instr 0).
    pub is_param: Vec<bool>,
    /// Dense rows of `live_out` (block × variable), for word-wise
    /// consumers like the interference scan.
    live_out_bits: BitMatrix,
    /// Dense rows of `avail_out` (block × variable).
    avail_out_bits: BitMatrix,
    /// `reach.get(a, b)` when a CFG path of length ≥ 1 leads from `a`
    /// to `b`.
    reach: BitMatrix,
    /// Total worklist visits the three fixpoints performed.
    iterations: u64,
}

impl Dataflow {
    /// Runs both analyses.
    pub fn compute(func: &FuncIr) -> Dataflow {
        let budget = Budget::unlimited();
        Dataflow::compute_budgeted(func, &budget).expect("unlimited budget cannot trip")
    }

    /// [`Dataflow::compute`] with the predecessor lists supplied by the
    /// caller, so a pipeline that already computed
    /// [`FuncIr::predecessors`] (e.g. the auditor) does not recompute
    /// them per analysis phase.
    pub fn compute_with_preds(func: &FuncIr, preds: &[Vec<BlockId>]) -> Dataflow {
        let budget = Budget::unlimited();
        Dataflow::compute_budgeted_with_preds(func, preds, &budget)
            .expect("unlimited budget cannot trip")
    }

    /// [`Dataflow::compute`] under a [`Budget`]: each fixpoint charges
    /// one fuel unit per worklist visit (plus a seeding charge of one
    /// unit per block, matching the old per-sweep cost floor) and
    /// observes the phase deadline.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetError`] that tripped (no partial results).
    pub fn compute_budgeted(func: &FuncIr, budget: &Budget) -> Result<Dataflow, BudgetError> {
        Dataflow::compute_budgeted_with_preds(func, &func.predecessors(), budget)
    }

    /// [`Dataflow::compute_budgeted`] with caller-supplied predecessor
    /// lists (see [`Dataflow::compute_with_preds`]).
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetError`] that tripped (no partial results).
    pub fn compute_budgeted_with_preds(
        func: &FuncIr,
        preds: &[Vec<BlockId>],
        budget: &Budget,
    ) -> Result<Dataflow, BudgetError> {
        let n = func.blocks.len();
        let nv = func.vars.len();
        let succs: Vec<Vec<BlockId>> = func
            .block_ids()
            .map(|b| func.block(b).term.successors())
            .collect();

        // --- def sites ---
        let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; nv];
        let mut is_param = vec![false; nv];
        for p in &func.params {
            def_site[p.index()] = Some((func.entry, 0));
            is_param[p.index()] = true;
        }
        for b in func.block_ids() {
            for (i, instr) in func.block(b).instrs.iter().enumerate() {
                for d in instr.defs() {
                    def_site[d.index()] = Some((b, i));
                }
            }
        }

        // --- per-block use/def summaries for liveness ---
        // `upward[b]`: used in b before any redefinition (φ uses excluded;
        // they belong to predecessor edges). `defs[b]`: defined in b
        // (including φ destinations).
        let mut upward = BitMatrix::new(n, nv);
        let mut defs = BitMatrix::new(n, nv);
        // φ uses attributed to predecessor blocks.
        let mut phi_out = BitMatrix::new(n, nv);
        for b in func.block_ids() {
            let bi = b.index();
            let blk = func.block(b);
            for instr in &blk.instrs {
                if let InstrKind::Phi { dst, args } = &instr.kind {
                    defs.set(bi, dst.index());
                    for (p, v) in args {
                        phi_out.set(p.index(), v.index());
                    }
                    continue;
                }
                for u in instr.uses() {
                    if !defs.get(bi, u.index()) {
                        upward.set(bi, u.index());
                    }
                }
                for d in instr.defs() {
                    defs.set(bi, d.index());
                }
            }
            if let Some(c) = blk.term.used_var() {
                if !defs.get(bi, c.index()) {
                    upward.set(bi, c.index());
                }
            }
        }

        // Function outputs are live at each return block's exit.
        let mut outs_row = BitSet::new(nv);
        for o in &func.ssa_outs {
            outs_row.insert(o.index());
        }
        let is_ret: Vec<bool> = (0..n).map(|bi| succs[bi].is_empty()).collect();

        let mut iterations: u64 = 0;

        // A LIFO worklist with an on-list flag; seeding order is chosen
        // so pops replay the old deterministic sweep order.
        let mut on_list = vec![true; n];
        let mut worklist: Vec<usize>;

        // --- backward liveness worklist ---
        // live_out[b] = phi_out[b] ∪ ⋃ live_in[succ] (∪ outs at returns);
        // live_in[b]  = upward[b] ∪ (live_out[b] ∖ defs[b]).
        // Both sides grow monotonically, so incremental unions suffice;
        // when live_in[b] grows, b's predecessors are re-examined.
        let mut live_in_bits = BitMatrix::new(n, nv);
        let mut live_out_bits = BitMatrix::new(n, nv);
        let mut scratch = BitSet::new(nv);
        budget.spend(n as u64 + 1)?;
        worklist = (0..n).collect(); // pops run n-1, n-2, … like the old reverse sweep
        while let Some(bi) = worklist.pop() {
            on_list[bi] = false;
            iterations += 1;
            budget.spend(1)?;
            scratch.clear();
            scratch.union_words(phi_out.row(bi));
            for s in &succs[bi] {
                scratch.union_words(live_in_bits.row(s.index()));
            }
            if is_ret[bi] {
                scratch.union_with(&outs_row);
            }
            live_out_bits.union_row_words(bi, scratch.words());
            scratch.subtract_words(defs.row(bi));
            scratch.union_words(upward.row(bi));
            if live_in_bits.union_row_words(bi, scratch.words()) {
                for p in &preds[bi] {
                    if !on_list[p.index()] {
                        on_list[p.index()] = true;
                        worklist.push(p.index());
                    }
                }
            }
        }

        // --- forward availability worklist (may-analysis: union) ---
        let mut avail_out_bits = BitMatrix::new(n, nv);
        budget.spend(n as u64 + 1)?;
        worklist = (0..n).rev().collect(); // pops run 0, 1, … like the old forward sweep
        on_list.fill(true);
        while let Some(bi) = worklist.pop() {
            on_list[bi] = false;
            iterations += 1;
            budget.spend(1)?;
            scratch.clear();
            if bi == func.entry.index() {
                for p in &func.params {
                    scratch.insert(p.index());
                }
            }
            for p in &preds[bi] {
                scratch.union_words(avail_out_bits.row(p.index()));
            }
            scratch.union_words(defs.row(bi));
            if avail_out_bits.union_row_words(bi, scratch.words()) {
                for s in &succs[bi] {
                    if !on_list[s.index()] {
                        on_list[s.index()] = true;
                        worklist.push(s.index());
                    }
                }
            }
        }

        // --- block reachability (paths of length ≥ 1) as a bitset
        // transitive closure: reach[b] = ⋃ over succ s of {s} ∪ reach[s].
        let mut reach = BitMatrix::new(n, n);
        for (bi, ss) in succs.iter().enumerate() {
            for s in ss {
                reach.set(bi, s.index());
            }
        }
        budget.spend(n as u64 + 1)?;
        worklist = (0..n).collect();
        on_list.fill(true);
        while let Some(bi) = worklist.pop() {
            on_list[bi] = false;
            iterations += 1;
            budget.spend(1)?;
            let mut changed = false;
            for s in &succs[bi] {
                changed |= reach.union_rows(bi, s.index());
            }
            if changed {
                for p in &preds[bi] {
                    if !on_list[p.index()] {
                        on_list[p.index()] = true;
                        worklist.push(p.index());
                    }
                }
            }
        }

        let to_sets = |m: &BitMatrix| -> Vec<HashSet<VarId>> {
            (0..n)
                .map(|bi| m.iter_row(bi).map(VarId::new).collect())
                .collect()
        };
        Ok(Dataflow {
            live_in: to_sets(&live_in_bits),
            live_out: to_sets(&live_out_bits),
            avail_out: to_sets(&avail_out_bits),
            def_site,
            is_param,
            live_out_bits,
            avail_out_bits,
            reach,
            iterations,
        })
    }

    /// The original set-based three-sweep implementation, retained as
    /// the naive reference for differential testing: the worklist
    /// engine must be set-for-set identical to this on every CFG.
    pub fn compute_reference(func: &FuncIr) -> Dataflow {
        let n = func.blocks.len();
        let nv = func.vars.len();
        let preds = func.predecessors();

        let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; nv];
        let mut is_param = vec![false; nv];
        for p in &func.params {
            def_site[p.index()] = Some((func.entry, 0));
            is_param[p.index()] = true;
        }
        for b in func.block_ids() {
            for (i, instr) in func.block(b).instrs.iter().enumerate() {
                for d in instr.defs() {
                    def_site[d.index()] = Some((b, i));
                }
            }
        }

        let mut upward: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut phi_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        for b in func.block_ids() {
            let blk = func.block(b);
            for instr in &blk.instrs {
                if let InstrKind::Phi { dst, args } = &instr.kind {
                    defs[b.index()].insert(*dst);
                    for (p, v) in args {
                        phi_out[p.index()].insert(*v);
                    }
                    continue;
                }
                for u in instr.uses() {
                    if !defs[b.index()].contains(&u) {
                        upward[b.index()].insert(u);
                    }
                }
                for d in instr.defs() {
                    defs[b.index()].insert(d);
                }
            }
            if let Some(c) = blk.term.used_var() {
                if !defs[b.index()].contains(&c) {
                    upward[b.index()].insert(c);
                }
            }
        }

        let mut live_in: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let ret_blocks: Vec<BlockId> = func
            .block_ids()
            .filter(|b| func.block(*b).term.successors().is_empty())
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..func.blocks.len()).rev() {
                let b = BlockId::new(bi);
                let mut out: HashSet<VarId> = phi_out[b.index()].clone();
                for s in func.block(b).term.successors() {
                    for v in &live_in[s.index()] {
                        out.insert(*v);
                    }
                }
                if ret_blocks.contains(&b) {
                    for o in &func.ssa_outs {
                        out.insert(*o);
                    }
                }
                let mut inn: HashSet<VarId> = upward[b.index()].clone();
                for v in &out {
                    if !defs[b.index()].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }

        let mut avail_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in func.block_ids() {
                let mut inn: HashSet<VarId> = HashSet::new();
                if b == func.entry {
                    for p in &func.params {
                        inn.insert(*p);
                    }
                }
                for p in &preds[b.index()] {
                    for v in &avail_out[p.index()] {
                        inn.insert(*v);
                    }
                }
                let mut out = inn;
                for v in &defs[b.index()] {
                    out.insert(*v);
                }
                if out != avail_out[b.index()] {
                    avail_out[b.index()] = out;
                    changed = true;
                }
            }
        }

        let mut reach: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in func.block_ids() {
                let succs = func.block(b).term.successors();
                let mut add: Vec<BlockId> = Vec::new();
                for s in &succs {
                    if !reach[b.index()].contains(s) {
                        add.push(*s);
                    }
                    for t in &reach[s.index()] {
                        if !reach[b.index()].contains(t) {
                            add.push(*t);
                        }
                    }
                }
                if !add.is_empty() {
                    for t in add {
                        reach[b.index()].insert(t);
                    }
                    changed = true;
                }
            }
        }

        // Pack the reference results into the same dense representation
        // so every accessor behaves identically to the worklist engine.
        let mut live_out_bits = BitMatrix::new(n, nv);
        let mut avail_out_bits = BitMatrix::new(n, nv);
        let mut reach_bits = BitMatrix::new(n, n);
        for bi in 0..n {
            for v in &live_out[bi] {
                live_out_bits.set(bi, v.index());
            }
            for v in &avail_out[bi] {
                avail_out_bits.set(bi, v.index());
            }
            for t in &reach[bi] {
                reach_bits.set(bi, t.index());
            }
        }
        Dataflow {
            live_in,
            live_out,
            avail_out,
            def_site,
            is_param,
            live_out_bits,
            avail_out_bits,
            reach: reach_bits,
            iterations: 0,
        }
    }

    /// Whether `u` is *available at the definition of* `v` — the
    /// control-flow clause of Relation 1 (§3.2): some execution path
    /// leads from a definition of `u` to the definition of `v`.
    /// Reflexive (`u` is available at its own definition).
    pub fn available_at_def(&self, u: VarId, v: VarId) -> bool {
        if u == v {
            return true;
        }
        let (bu, iu) = match self.def_site[u.index()] {
            Some(x) => x,
            None => return false,
        };
        let (bv, iv) = match self.def_site[v.index()] {
            Some(x) => x,
            None => return false,
        };
        if bu == bv {
            // Earlier in the same block, or any cycle back to the block.
            let iu = if self.is_param[u.index()] { 0 } else { iu + 1 };
            let iv_pos = if self.is_param[v.index()] { 0 } else { iv + 1 };
            iu <= iv_pos || self.reach.get(bu.index(), bv.index())
        } else {
            self.reach.get(bu.index(), bv.index())
        }
    }

    /// Whether block `a` can reach block `b` via ≥ 1 edge.
    pub fn block_reaches(&self, a: BlockId, b: BlockId) -> bool {
        self.reach.get(a.index(), b.index())
    }

    /// The dense live-out rows (block × variable), for word-wise
    /// consumers like the interference scan.
    pub fn live_out_bits(&self) -> &BitMatrix {
        &self.live_out_bits
    }

    /// The dense avail-out rows (block × variable).
    pub fn avail_out_bits(&self) -> &BitMatrix {
        &self.avail_out_bits
    }

    /// Total worklist visits the three fixpoints performed (zero for
    /// [`Dataflow::compute_reference`]).
    pub fn worklist_iterations(&self) -> u64 {
        self.iterations
    }

    /// Width in `u64` words of one dense live-set row — the
    /// "peak live-set words" figure reported by the perf gate.
    pub fn live_set_words(&self) -> usize {
        words_for(self.live_out_bits.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;

    fn flow(src: &str) -> (FuncIr, Dataflow) {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        let f = prog.entry_func().clone();
        let d = Dataflow::compute(&f);
        (f, d)
    }

    fn var_named(f: &FuncIr, name: &str, version: u32) -> VarId {
        f.vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == version)
            .map(|(v, _)| v)
            .unwrap_or_else(|| panic!("no {name}.{version} in\n{f}"))
    }

    #[test]
    fn outputs_live_at_exit() {
        let (f, d) = flow("function y = f(x)\ny = x + 1;\n");
        let y = f.ssa_outs[0];
        let ret = f
            .block_ids()
            .find(|b| f.block(*b).term.successors().is_empty())
            .unwrap();
        assert!(
            d.live_out[ret.index()].contains(&y),
            "output live at function exit"
        );
        // x (the param) is live into the entry.
        let x = f.params[0];
        assert!(d.live_in[f.entry.index()].contains(&x));
    }

    #[test]
    fn availability_follows_paths() {
        let (f, d) = flow(
            "function y = f(x)\na = x + 1;\nif x > 0\nb = a + 1;\nelse\nb = a + 2;\nend\ny = b;\n",
        );
        let a = var_named(&f, "a", 1);
        let b1 = var_named(&f, "b", 1);
        let b2 = var_named(&f, "b", 2);
        assert!(d.available_at_def(a, b1), "a flows into the then-branch");
        assert!(d.available_at_def(a, b2), "a flows into the else-branch");
        assert!(!d.available_at_def(b1, a), "no path back from b to a");
        assert!(
            !d.available_at_def(b1, b2),
            "disjoint branches: b.1 not available at b.2's def"
        );
    }

    #[test]
    fn loop_defs_available_at_themselves_via_backedge() {
        let (f, d) = flow("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + 1;\nend\n");
        // The loop body's s is available at its own def via the back edge.
        let s_loop = var_named(&f, "s", 2);
        assert!(d.available_at_def(s_loop, s_loop));
    }

    #[test]
    fn same_block_ordering() {
        let (f, d) = flow("function y = f(x)\na = x + 1;\nb = a * 2;\ny = b;\n");
        let a = var_named(&f, "a", 1);
        let b = var_named(&f, "b", 1);
        assert!(d.available_at_def(a, b));
        assert!(!d.available_at_def(b, a), "straight line: no path back");
        let x = f.params[0];
        assert!(d.available_at_def(x, a), "params available from entry");
    }

    #[test]
    fn phi_uses_live_out_of_predecessors() {
        let (f, d) = flow("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\n");
        // Each arm's y must be live-out of its defining block (feeding
        // the φ at the join).
        let y1 = var_named(&f, "y", 1);
        let (db, _) = d.def_site[y1.index()].unwrap();
        assert!(d.live_out[db.index()].contains(&y1), "{f}");
    }

    #[test]
    fn dead_temps_not_live_out() {
        let (f, d) = flow("function y = f(x)\ny = x + 1;\ny = y * 2;\n");
        let y1 = var_named(&f, "y", 1);
        let (db, _) = d.def_site[y1.index()].unwrap();
        // y.1 is consumed within the block; not live out.
        assert!(!d.live_out[db.index()].contains(&y1));
    }

    #[test]
    fn worklist_matches_reference_on_branchy_loops() {
        let (f, d) = flow(
            "function y = f(x)\ns = 0;\nwhile x > 0\nif s > 3\ns = s + x;\nelse\ns = s - 1;\nend\nx = x - 1;\nend\ny = s;\n",
        );
        let r = Dataflow::compute_reference(&f);
        assert_eq!(d.live_in, r.live_in);
        assert_eq!(d.live_out, r.live_out);
        assert_eq!(d.avail_out, r.avail_out);
        assert_eq!(d.def_site, r.def_site);
        for a in f.block_ids() {
            for b in f.block_ids() {
                assert_eq!(d.block_reaches(a, b), r.block_reaches(a, b), "{a:?}->{b:?}");
            }
        }
        assert!(d.worklist_iterations() > 0);
    }

    #[test]
    fn bit_rows_mirror_the_hash_sets() {
        let (f, d) = flow("function y = f(x)\na = x + 1;\nif x > 0\ny = a;\nelse\ny = x;\nend\n");
        for b in f.block_ids() {
            let row: HashSet<VarId> = d
                .live_out_bits()
                .iter_row(b.index())
                .map(VarId::new)
                .collect();
            assert_eq!(row, d.live_out[b.index()]);
            let row: HashSet<VarId> = d
                .avail_out_bits()
                .iter_row(b.index())
                .map(VarId::new)
                .collect();
            assert_eq!(row, d.avail_out[b.index()]);
        }
        assert!(d.live_set_words() >= 1);
    }
}
