//! Liveness and availability dataflow (§2).
//!
//! The paper approximates Chaitin interference by considering variables
//! that are simultaneously **live** ("a possible execution path from s to
//! a use of w along which w is not redefined") and **available** ("a
//! possible execution path from a definition of v to s") at each
//! assignment. Both analyses here are the conservative may-variants the
//! paper describes.

use matc_ir::ids::{BlockId, VarId};
use matc_ir::instr::InstrKind;
use matc_ir::{Budget, BudgetError, FuncIr};
use std::collections::HashSet;

/// Per-block liveness and availability sets for one SSA function.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Variables live at each block entry (φ inputs excluded, φ defs
    /// included when used later).
    pub live_in: Vec<HashSet<VarId>>,
    /// Variables live at each block exit (φ uses of successors count as
    /// live-out of the corresponding predecessor).
    pub live_out: Vec<HashSet<VarId>>,
    /// Variables available (possibly defined) at each block exit.
    pub avail_out: Vec<HashSet<VarId>>,
    /// Definition site of every variable: `(block, instruction index)`;
    /// parameters use index 0 of the entry block and are flagged.
    pub def_site: Vec<Option<(BlockId, usize)>>,
    /// Whether the variable is a parameter (defined before instr 0).
    pub is_param: Vec<bool>,
    /// `reach[a]` contains `b` when a CFG path of length ≥ 1 leads from
    /// `a` to `b`.
    reach: Vec<HashSet<BlockId>>,
}

impl Dataflow {
    /// Runs both analyses.
    pub fn compute(func: &FuncIr) -> Dataflow {
        let budget = Budget::unlimited();
        Dataflow::compute_budgeted(func, &budget).expect("unlimited budget cannot trip")
    }

    /// [`Dataflow::compute`] under a [`Budget`]: each sweep of the three
    /// while-changed fixpoints (liveness, availability, reachability)
    /// charges one fuel unit per block and observes the phase deadline.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetError`] that tripped (no partial results).
    pub fn compute_budgeted(func: &FuncIr, budget: &Budget) -> Result<Dataflow, BudgetError> {
        let n = func.blocks.len();
        let nv = func.vars.len();
        let preds = func.predecessors();

        // --- def sites ---
        let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; nv];
        let mut is_param = vec![false; nv];
        for p in &func.params {
            def_site[p.index()] = Some((func.entry, 0));
            is_param[p.index()] = true;
        }
        for b in func.block_ids() {
            for (i, instr) in func.block(b).instrs.iter().enumerate() {
                for d in instr.defs() {
                    def_site[d.index()] = Some((b, i));
                }
            }
        }

        // --- per-block use/def summaries for liveness ---
        // `upward[b]`: used in b before any redefinition (φ uses excluded;
        // they belong to predecessor edges). `defs[b]`: defined in b
        // (including φ destinations).
        let mut upward: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        // φ uses attributed to predecessor blocks.
        let mut phi_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        for b in func.block_ids() {
            let blk = func.block(b);
            for instr in &blk.instrs {
                if let InstrKind::Phi { dst, args } = &instr.kind {
                    defs[b.index()].insert(*dst);
                    for (p, v) in args {
                        phi_out[p.index()].insert(*v);
                    }
                    continue;
                }
                for u in instr.uses() {
                    if !defs[b.index()].contains(&u) {
                        upward[b.index()].insert(u);
                    }
                }
                for d in instr.defs() {
                    defs[b.index()].insert(d);
                }
            }
            if let Some(c) = blk.term.used_var() {
                if !defs[b.index()].contains(&c) {
                    upward[b.index()].insert(c);
                }
            }
        }

        // --- backward liveness fixpoint ---
        let mut live_in: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        // Function outputs are live at the return block's exit.
        let ret_blocks: Vec<BlockId> = func
            .block_ids()
            .filter(|b| func.block(*b).term.successors().is_empty())
            .collect();
        let mut changed = true;
        while changed {
            budget.spend(n as u64 + 1)?;
            changed = false;
            for bi in (0..func.blocks.len()).rev() {
                let b = matc_ir::BlockId::new(bi);
                let mut out: HashSet<VarId> = phi_out[b.index()].clone();
                for s in func.block(b).term.successors() {
                    for v in &live_in[s.index()] {
                        out.insert(*v);
                    }
                }
                if ret_blocks.contains(&b) {
                    for o in &func.ssa_outs {
                        out.insert(*o);
                    }
                }
                let mut inn: HashSet<VarId> = upward[b.index()].clone();
                for v in &out {
                    if !defs[b.index()].contains(v) {
                        inn.insert(*v);
                    }
                }
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }

        // --- forward availability fixpoint (may-analysis: union) ---
        let mut avail_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            budget.spend(n as u64 + 1)?;
            changed = false;
            for b in func.block_ids() {
                let mut inn: HashSet<VarId> = HashSet::new();
                if b == func.entry {
                    for p in &func.params {
                        inn.insert(*p);
                    }
                }
                for p in &preds[b.index()] {
                    for v in &avail_out[p.index()] {
                        inn.insert(*v);
                    }
                }
                let mut out = inn;
                for v in &defs[b.index()] {
                    out.insert(*v);
                }
                if out != avail_out[b.index()] {
                    avail_out[b.index()] = out;
                    changed = true;
                }
            }
        }

        // --- block reachability (paths of length >= 1) ---
        let mut reach: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            budget.spend(n as u64 + 1)?;
            changed = false;
            for b in func.block_ids() {
                let succs = func.block(b).term.successors();
                let mut add: Vec<BlockId> = Vec::new();
                for s in &succs {
                    if !reach[b.index()].contains(s) {
                        add.push(*s);
                    }
                    for t in &reach[s.index()] {
                        if !reach[b.index()].contains(t) {
                            add.push(*t);
                        }
                    }
                }
                if !add.is_empty() {
                    for t in add {
                        reach[b.index()].insert(t);
                    }
                    changed = true;
                }
            }
        }

        Ok(Dataflow {
            live_in,
            live_out,
            avail_out,
            def_site,
            is_param,
            reach,
        })
    }

    /// Whether `u` is *available at the definition of* `v` — the
    /// control-flow clause of Relation 1 (§3.2): some execution path
    /// leads from a definition of `u` to the definition of `v`.
    /// Reflexive (`u` is available at its own definition).
    pub fn available_at_def(&self, u: VarId, v: VarId) -> bool {
        if u == v {
            return true;
        }
        let (bu, iu) = match self.def_site[u.index()] {
            Some(x) => x,
            None => return false,
        };
        let (bv, iv) = match self.def_site[v.index()] {
            Some(x) => x,
            None => return false,
        };
        if bu == bv {
            // Earlier in the same block, or any cycle back to the block.
            let iu = if self.is_param[u.index()] { 0 } else { iu + 1 };
            let iv_pos = if self.is_param[v.index()] { 0 } else { iv + 1 };
            iu <= iv_pos || self.reach[bu.index()].contains(&bv)
        } else {
            self.reach[bu.index()].contains(&bv)
        }
    }

    /// Whether block `a` can reach block `b` via ≥ 1 edge.
    pub fn block_reaches(&self, a: BlockId, b: BlockId) -> bool {
        self.reach[a.index()].contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;

    fn flow(src: &str) -> (FuncIr, Dataflow) {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        let f = prog.entry_func().clone();
        let d = Dataflow::compute(&f);
        (f, d)
    }

    fn var_named(f: &FuncIr, name: &str, version: u32) -> VarId {
        f.vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == version)
            .map(|(v, _)| v)
            .unwrap_or_else(|| panic!("no {name}.{version} in\n{f}"))
    }

    #[test]
    fn outputs_live_at_exit() {
        let (f, d) = flow("function y = f(x)\ny = x + 1;\n");
        let y = f.ssa_outs[0];
        let ret = f
            .block_ids()
            .find(|b| f.block(*b).term.successors().is_empty())
            .unwrap();
        assert!(
            d.live_out[ret.index()].contains(&y),
            "output live at function exit"
        );
        // x (the param) is live into the entry.
        let x = f.params[0];
        assert!(d.live_in[f.entry.index()].contains(&x));
    }

    #[test]
    fn availability_follows_paths() {
        let (f, d) = flow(
            "function y = f(x)\na = x + 1;\nif x > 0\nb = a + 1;\nelse\nb = a + 2;\nend\ny = b;\n",
        );
        let a = var_named(&f, "a", 1);
        let b1 = var_named(&f, "b", 1);
        let b2 = var_named(&f, "b", 2);
        assert!(d.available_at_def(a, b1), "a flows into the then-branch");
        assert!(d.available_at_def(a, b2), "a flows into the else-branch");
        assert!(!d.available_at_def(b1, a), "no path back from b to a");
        assert!(
            !d.available_at_def(b1, b2),
            "disjoint branches: b.1 not available at b.2's def"
        );
    }

    #[test]
    fn loop_defs_available_at_themselves_via_backedge() {
        let (f, d) = flow("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + 1;\nend\n");
        // The loop body's s is available at its own def via the back edge.
        let s_loop = var_named(&f, "s", 2);
        assert!(d.available_at_def(s_loop, s_loop));
    }

    #[test]
    fn same_block_ordering() {
        let (f, d) = flow("function y = f(x)\na = x + 1;\nb = a * 2;\ny = b;\n");
        let a = var_named(&f, "a", 1);
        let b = var_named(&f, "b", 1);
        assert!(d.available_at_def(a, b));
        assert!(!d.available_at_def(b, a), "straight line: no path back");
        let x = f.params[0];
        assert!(d.available_at_def(x, a), "params available from entry");
    }

    #[test]
    fn phi_uses_live_out_of_predecessors() {
        let (f, d) = flow("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\n");
        // Each arm's y must be live-out of its defining block (feeding
        // the φ at the join).
        let y1 = var_named(&f, "y", 1);
        let (db, _) = d.def_site[y1.index()].unwrap();
        assert!(d.live_out[db.index()].contains(&y1), "{f}");
    }

    #[test]
    fn dead_temps_not_live_out() {
        let (f, d) = flow("function y = f(x)\ny = x + 1;\ny = y * 2;\n");
        let y1 = var_named(&f, "y", 1);
        let (db, _) = d.def_site[y1.index()].unwrap();
        // y.1 is consumed within the block; not live out.
        assert!(!d.live_out[db.index()].contains(&y1));
    }
}
