//! Phase 1: the interference graph (§2).
//!
//! Interference is Chaitin's: two variables conflict when both are live
//! and available at some assignment with (potentially) different values.
//! Each block is traversed backwards from its `live ∩ avail` exit set; a
//! definition interferes with every member of the set (§2).
//!
//! Two paper-specific refinements:
//!
//! * **operator-semantics conflicts** (§2.3): a result may share its
//!   operand's storage only when the operation can be computed
//!   *in place*. Whether it can depends on the operator and on inferred
//!   types — `c = a*b` is in-place only when a type proves one operand
//!   scalar; `subsref` only for scalar/colon subscripts; `subsasgn` is
//!   always in-place in its array operand (backwards fill, §2.3.3.1) but
//!   never in its value operand; matrix build never. When an operand
//!   dies at the statement but in-place computation is illegal, an
//!   explicit conflict is added.
//! * **φ-coalescing** (§2.2.1): a φ destination is merged with each
//!   non-interfering argument so SSA-inversion copies become identity
//!   assignments.

use crate::liveness::Dataflow;
use matc_frontend::ast::{BinOp, UnOp};
use matc_ir::bitset::{BitMatrix, BitSet};
use matc_ir::ids::VarId;
use matc_ir::instr::{InstrKind, Op, Operand};
use matc_ir::{Budget, BudgetError, Builtin, FuncIr};
use matc_typeinf::{FuncTypes, ProgramTypes};

/// Options controlling graph construction (ablations and Figure 6).
#[derive(Debug, Clone, Copy)]
pub struct InterferenceOptions {
    /// Insert the §2.3 operator-semantics conflicts (default true).
    /// Disabling this is **unsound** and exists only for the ablation
    /// benchmark, paired with the planned VM's violation counter.
    pub operator_semantics: bool,
    /// Coalesce φ destinations with their arguments (§2.2.1).
    pub phi_coalescing: bool,
}

impl Default for InterferenceOptions {
    fn default() -> Self {
        InterferenceOptions {
            operator_semantics: true,
            phi_coalescing: true,
        }
    }
}

/// The interference graph over coalesced variable classes.
///
/// Adjacency is stored as dense bitset rows ([`BitMatrix`], one row per
/// variable, keyed by class representative): the "definition interferes
/// with all pairs in the live set" inner loop of the build is a
/// word-wise OR of the live set into the definition's row. During the
/// scan the union-find is the identity (φ-coalescing runs strictly
/// after edge insertion), which is what makes the word-wise form sound.
/// After coalescing the graph is *finalized*: the union-find is fully
/// path-compressed and the representative list, per-class member lists
/// and per-class degrees are memoized (the old `members`/
/// `representatives` were O(n²) full scans per query).
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    /// Union-find parent per variable (fully path-compressed after
    /// [`InterferenceGraph::finalize`]).
    parent: Vec<u32>,
    /// Adjacency bitset rows, keyed by class representative.
    adj: BitMatrix,
    /// Variables that actually occur (are defined or are parameters).
    occurs: Vec<bool>,
    /// Variables defined by `Const` instructions: they become literals in
    /// the generated code (no storage), so they take no part in
    /// interference, coloring or grouping.
    immediate: Vec<bool>,
    /// The number of explicit operator-semantics conflicts inserted.
    pub op_conflicts: usize,
    /// The number of φ-coalescings performed.
    pub coalesced: usize,
    /// Memoized class representatives of occurring variables, ascending
    /// (built by [`InterferenceGraph::finalize`]).
    reps_cache: Vec<VarId>,
    /// Memoized member lists, indexed by representative; empty for
    /// non-representatives.
    members_cache: Vec<Vec<VarId>>,
    /// Memoized class degrees (distinct neighbor count), indexed by
    /// representative.
    degree: Vec<u32>,
}

impl InterferenceGraph {
    /// Builds the graph for `func` using inferred `types`.
    pub fn build(
        func: &FuncIr,
        flow: &Dataflow,
        types: &FuncTypes,
        prog_types: &ProgramTypes,
        opts: InterferenceOptions,
    ) -> InterferenceGraph {
        let budget = Budget::unlimited();
        InterferenceGraph::build_budgeted(func, flow, types, prog_types, opts, &budget)
            .expect("unlimited budget cannot trip")
    }

    /// [`InterferenceGraph::build`] under a [`Budget`]: the backward
    /// scan charges one fuel unit per instruction visited (plus the
    /// live-set size, approximating edge insertion work) and observes
    /// the phase wall-clock deadline.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetError`] that tripped (no partial graph).
    pub fn build_budgeted(
        func: &FuncIr,
        flow: &Dataflow,
        types: &FuncTypes,
        prog_types: &ProgramTypes,
        opts: InterferenceOptions,
        budget: &Budget,
    ) -> Result<InterferenceGraph, BudgetError> {
        let nv = func.vars.len();
        let mut g = InterferenceGraph {
            parent: (0..nv as u32).collect(),
            adj: BitMatrix::new(nv, nv),
            occurs: vec![false; nv],
            immediate: vec![false; nv],
            op_conflicts: 0,
            coalesced: 0,
            reps_cache: Vec::new(),
            members_cache: Vec::new(),
            degree: Vec::new(),
        };
        for p in &func.params {
            g.occurs[p.index()] = true;
        }
        // Constants become code literals; they hold no run-time storage.
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                if let InstrKind::Const { dst, .. } = &instr.kind {
                    g.immediate[dst.index()] = true;
                }
            }
        }

        let is_scalar = |v: VarId| -> bool {
            types
                .get(v)
                .map(|f| f.shape.is_scalar(&prog_types.ctx))
                .unwrap_or(false)
        };
        let is_vector = |v: VarId| -> bool {
            types
                .get(v)
                .map(|f| f.shape.is_vector(&prog_types.ctx))
                .unwrap_or(false)
        };

        // Parameters are simultaneous definitions at function entry:
        // each interferes with every other variable live and available
        // there — i.e. with the other live parameters.
        for p in &func.params {
            for q in &func.params {
                if p != q && flow.live_in[func.entry.index()].contains(q) {
                    g.add_edge(*p, *q);
                }
            }
        }

        // Backward scan of each block from live ∩ avail. The working
        // set is a dense bitset row; its size is maintained
        // incrementally so the per-instruction budget charge stays the
        // `set.len() + 1` the set-based engine used.
        let mut imm_mask = BitSet::new(nv);
        for (i, imm) in g.immediate.iter().enumerate() {
            if *imm {
                imm_mask.insert(i);
            }
        }
        let mut set = BitSet::new(nv);
        for b in func.block_ids() {
            set.clear();
            set.union_words(flow.live_out_bits().row(b.index()));
            set.intersect_words(flow.avail_out_bits().row(b.index()));
            set.subtract_words(imm_mask.words());
            let mut set_len = set.count();
            for instr in func.block(b).instrs.iter().rev() {
                budget.spend(set_len as u64 + 1)?;
                let defs = instr.defs();
                for d in &defs {
                    if g.immediate[d.index()] {
                        continue;
                    }
                    g.occurs[d.index()] = true;
                    // During the scan the union-find is the identity, so
                    // the class rows coincide with the variable rows and
                    // the "edge to every member of the live set" loop is
                    // one word-wise union plus the symmetric single bits.
                    g.adj.union_row_words(d.index(), set.words());
                    g.adj.unset(d.index(), d.index());
                    for w in set.iter() {
                        if w != d.index() {
                            g.adj.set(w, d.index());
                        }
                    }
                }
                // Simultaneously-defined outputs conflict pairwise.
                for (i, d1) in defs.iter().enumerate() {
                    for d2 in &defs[i + 1..] {
                        g.add_edge(*d1, *d2);
                    }
                }
                // Operator-semantics conflicts for dying operands
                // (§2.3): set currently holds live-after variables, so
                // any operand not in it dies here.
                if opts.operator_semantics {
                    if let InstrKind::Compute { dst, op, args } = &instr.kind {
                        for (k, a) in args.iter().enumerate() {
                            if let Some(x) = a.as_var() {
                                if x == *dst || set.contains(x.index()) || g.immediate[x.index()] {
                                    continue; // generic rule already applies
                                }
                                if !inplace_ok(op, k, args, &is_scalar, &is_vector) {
                                    g.add_edge(*dst, x);
                                    g.op_conflicts += 1;
                                }
                            }
                        }
                    }
                }
                // Update the working set.
                for d in &defs {
                    if set.remove(d.index()) {
                        set_len -= 1;
                    }
                }
                match &instr.kind {
                    // φ uses live at predecessor ends, not here.
                    InstrKind::Phi { .. } => {}
                    _ => {
                        for u in instr.uses() {
                            if !g.immediate[u.index()] && set.insert(u.index()) {
                                set_len += 1;
                            }
                        }
                    }
                }
            }
        }

        // φ-functions of one block execute as a *parallel copy* on each
        // incoming edge: every destination is written while every other
        // φ's incoming argument is still being read. Those pairs must
        // not share storage (SSA inversion only sequentializes copies
        // between distinct locations).
        for b in func.block_ids() {
            let phis: Vec<(VarId, Vec<(matc_ir::BlockId, VarId)>)> = func
                .block(b)
                .phis()
                .filter_map(|instr| match &instr.kind {
                    InstrKind::Phi { dst, args } => Some((*dst, args.clone())),
                    _ => None,
                })
                .collect();
            if phis.len() < 2 {
                continue;
            }
            for (i, (dst_i, args_i)) in phis.iter().enumerate() {
                for (j, (_, args_j)) in phis.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for (pred, arg_j) in args_j {
                        if arg_j == dst_i || g.immediate[arg_j.index()] {
                            continue;
                        }
                        // Only the same edge's copies run in parallel.
                        let own_arg = args_i.iter().find(|(p, _)| p == pred).map(|(_, a)| *a);
                        if own_arg == Some(*arg_j) {
                            continue; // reading the same source is fine
                        }
                        g.add_edge(*dst_i, *arg_j);
                    }
                }
            }
        }

        // §2.2.1: coalesce φ destinations with their arguments.
        if opts.phi_coalescing {
            for b in func.block_ids() {
                for instr in func.block(b).phis() {
                    if let InstrKind::Phi { dst, args } = &instr.kind {
                        for (_, x) in args {
                            if g.immediate[x.index()] || g.immediate[dst.index()] {
                                continue; // literals stay literal
                            }
                            let rd = g.find(*dst);
                            let rx = g.find(*x);
                            if rd != rx && !g.adj.get(rd as usize, rx as usize) {
                                g.union(rd, rx);
                                g.coalesced += 1;
                            }
                        }
                    }
                }
            }
        }
        g.finalize();
        Ok(g)
    }

    /// Freezes the graph after coalescing: fully path-compresses the
    /// union-find and memoizes the representative list, per-class
    /// member lists and degrees, so the per-query O(n) / O(n²) scans
    /// of `representatives`/`members` become lookups.
    fn finalize(&mut self) {
        let nv = self.parent.len();
        for i in 0..nv {
            let r = self.find(VarId::new(i));
            self.parent[i] = r;
        }
        let mut members: Vec<Vec<VarId>> = vec![Vec::new(); nv];
        for i in 0..nv {
            if self.occurs[i] {
                members[self.parent[i] as usize].push(VarId::new(i));
            }
        }
        // Ascending because the member scan above runs in id order.
        self.reps_cache = (0..nv)
            .filter(|i| !members[*i].is_empty())
            .map(VarId::new)
            .collect();
        self.members_cache = members;
        self.degree = (0..nv).map(|i| self.adj.count_row(i) as u32).collect();
    }

    /// Whether `v` is a code literal (defined by a `Const` instruction)
    /// holding no run-time storage.
    pub fn is_immediate(&self, v: VarId) -> bool {
        self.immediate[v.index()]
    }

    fn find(&mut self, v: VarId) -> u32 {
        let mut i = v.0;
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    /// The class representative of `v` (immutable lookup).
    pub fn rep(&self, v: VarId) -> VarId {
        let mut i = v.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        VarId(i)
    }

    fn union(&mut self, a: u32, b: u32) {
        // Merge b into a, rewiring adjacency row b into row a.
        let nbrs: Vec<usize> = self.adj.iter_row(b as usize).collect();
        self.adj.clear_row(b as usize);
        for n in nbrs {
            self.adj.unset(n, b as usize);
            self.adj.set(n, a as usize);
            self.adj.set(a as usize, n);
        }
        self.parent[b as usize] = a;
        self.occurs[a as usize] = self.occurs[a as usize] || self.occurs[b as usize];
    }

    fn add_edge(&mut self, a: VarId, b: VarId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        self.adj.set(ra as usize, rb as usize);
        self.adj.set(rb as usize, ra as usize);
    }

    /// Whether `a` and `b` interfere (i.e. their classes conflict).
    pub fn interferes(&self, a: VarId, b: VarId) -> bool {
        let ra = self.rep(a);
        let rb = self.rep(b);
        ra != rb && self.adj.get(ra.index(), rb.index())
    }

    /// All class representatives of occurring variables, ascending
    /// (memoized at build time).
    pub fn representatives(&self) -> Vec<VarId> {
        self.reps_cache.clone()
    }

    /// All occurring members of the class represented by `rep`,
    /// ascending (memoized at build time).
    pub fn members(&self, rep: VarId) -> Vec<VarId> {
        self.members_cache
            .get(rep.index())
            .cloned()
            .unwrap_or_default()
    }

    /// Neighbor representatives of the class of `rep`.
    pub fn neighbors(&self, rep: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.adj.iter_row(self.rep(rep).index()).map(VarId::new)
    }

    /// The number of distinct neighbor classes of the class of `rep`
    /// (memoized at build time; the greedy coloring's bound).
    pub fn degree(&self, rep: VarId) -> usize {
        self.degree.get(self.rep(rep).index()).copied().unwrap_or(0) as usize
    }

    /// The number of occurring variables (the paper's "original variable
    /// count" on entry to GCTD).
    pub fn occurring_count(&self) -> usize {
        self.occurs.iter().filter(|o| **o).count()
    }

    /// The size of the variable universe the graph was built over
    /// (occurring or not) — the row count of the adjacency matrix.
    pub fn variable_count(&self) -> usize {
        self.parent.len()
    }

    /// The number of nodes (coalesced classes) in the graph.
    pub fn node_count(&self) -> usize {
        self.representatives().len()
    }

    /// The number of distinct interference edges between classes.
    pub fn edge_count(&self) -> usize {
        let mut edges = 0;
        for r in self.representatives() {
            let mut ns: Vec<VarId> = self
                .neighbors(r)
                .map(|n| self.rep(n))
                .filter(|n| *n > r)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            edges += ns.len();
        }
        edges
    }
}

/// Whether `op`'s result may legally be computed in place in operand `k`
/// (§2.3). Sound: `false` whenever unsure.
fn inplace_ok(
    op: &Op,
    k: usize,
    args: &[Operand],
    is_scalar: &dyn Fn(VarId) -> bool,
    is_vector: &dyn Fn(VarId) -> bool,
) -> bool {
    match op {
        Op::Bin(b) => match b {
            // Elementwise operations are positionally aligned: reading
            // element i happens no later than writing element i.
            BinOp::Add
            | BinOp::Sub
            | BinOp::ElemMul
            | BinOp::ElemDiv
            | BinOp::ElemLeftDiv
            | BinOp::ElemPow
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => true,
            // `*`, `/`, `\`, `^`: elementwise — hence in-place — only
            // when a scalar operand is proven (§2.3's c = a*b example).
            BinOp::MatMul | BinOp::MatDiv | BinOp::MatLeftDiv | BinOp::MatPow => {
                args.iter().any(|a| a.as_var().is_some_and(is_scalar))
            }
            BinOp::ShortAnd | BinOp::ShortOr => true, // scalars by construction
        },
        Op::Un(u) => match u {
            UnOp::Neg | UnOp::Plus | UnOp::Not => true,
            // Transposing reorders elements; only trivial layouts are
            // in-place safe.
            UnOp::Transpose | UnOp::CTranspose => args
                .first()
                .and_then(|a| a.as_var())
                .is_some_and(|v| is_scalar(v) || is_vector(v)),
        },
        // subsref(a, subs...): in place in `a` when every subscript is a
        // scalar or `:` (a monotone gather — each target address never
        // exceeds its source address); an *array* subscript may permute
        // (the paper's 4:-1:1 example) — unsafe. Subscript operands
        // themselves are read before the write and are safe.
        Op::Subsref => {
            if k == 0 {
                args[1..].iter().all(|s| match s {
                    Operand::ColonAll => true,
                    Operand::Var(v) => is_scalar(*v),
                })
            } else {
                true
            }
        }
        // subsasgn(a, r, subs...): in place in `a` always (§2.3.3.1,
        // backwards fill); never in the value `r` or a subscript (their
        // elements are read while `b`'s storage is written).
        Op::Subsasgn => k == 0,
        // Ranges read scalar endpoints before writing.
        Op::Range2 | Op::Range3 => true,
        // Concatenation copies all operands into fresh positions; any
        // overlap may be clobbered before it is read.
        Op::MatrixBuild { .. } => false,
        Op::Builtin(bi) => {
            // Elementwise maps are aligned; scalar-valued builtins write
            // once after reading everything; constructors read their
            // scalar extents up front.
            bi.is_elementwise_map()
                || bi.is_scalar_valued()
                || matches!(
                    bi,
                    Builtin::Zeros | Builtin::Ones | Builtin::Eye | Builtin::Rand
                )
                || (matches!(bi, Builtin::Max | Builtin::Min) && args.len() == 2)
        }
        // User calls evaluate in the callee's own frame; the result is
        // stored after the arguments are fully consumed.
        Op::Call(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;
    use matc_typeinf::infer_program;

    fn build(src: &str, opts: InterferenceOptions) -> (FuncIr, InterferenceGraph) {
        let ast = parse_program([src]).unwrap();
        let mut prog = build_ssa(&ast).unwrap();
        matc_passes::optimize_program(&mut prog);
        let types = infer_program(&prog);
        let f = prog.entry_func().clone();
        let fid = prog.entry.unwrap();
        let flow = Dataflow::compute(&f);
        let g = InterferenceGraph::build(&f, &flow, &types.funcs[fid.index()], &types, opts);
        (f, g)
    }

    fn var(f: &FuncIr, name: &str, version: u32) -> VarId {
        f.vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == version)
            .map(|(v, _)| v)
            .unwrap_or_else(|| panic!("no {name}.{version} in\n{f}"))
    }

    #[test]
    fn overlapping_du_chains_interfere() {
        // §2.1 example: a and b both live across each other's uses.
        let (f, g) = build(
            "function f()\na = rand(2, 2);\nb = rand(2, 2);\nc = a(1);\nd = b + c;\ndisp(d);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let b = var(&f, "b", 1);
        assert!(g.interferes(a, b), "{f}");
    }

    #[test]
    fn sequential_lifetimes_do_not_interfere() {
        let (f, g) = build(
            "function f()\na = rand(4, 4);\ns = sum(sum(a));\nb = rand(4, 4);\nt = sum(sum(b));\nfprintf('%g %g\\n', s, t);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let b = var(&f, "b", 1);
        assert!(!g.interferes(a, b), "disjoint lifetimes:\n{f}");
    }

    #[test]
    fn matmul_conflicts_with_nonscalar_operands() {
        // c = a*b with matrices: even though a, b die at the statement,
        // the multiply cannot run in place.
        let (f, g) = build(
            "function f()\na = rand(3, 3);\nb = rand(3, 3);\nc = a * b;\ndisp(c);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let b = var(&f, "b", 1);
        let c = var(&f, "c", 1);
        assert!(g.interferes(c, a), "{f}");
        assert!(g.interferes(c, b), "{f}");
        assert!(g.op_conflicts >= 2);
    }

    #[test]
    fn matmul_with_scalar_is_inplace() {
        // k scalar: c can be computed in place in the dying array a.
        let (f, g) = build(
            "function f(k)\na = rand(3, 3);\nc = a * 2;\ndisp(c);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let c = var(&f, "c", 1);
        assert!(!g.interferes(c, a), "{f}");
    }

    #[test]
    fn array_addition_is_inplace() {
        // §2.3.1: + never needs extra conflicts.
        let (f, g) = build(
            "function f()\na = rand(3, 3);\nb = rand(3, 3);\nc = a + b;\ndisp(c);\n",
            InterferenceOptions::default(),
        );
        let c = var(&f, "c", 1);
        let a = var(&f, "a", 1);
        assert!(!g.interferes(c, a), "{f}");
    }

    #[test]
    fn subsref_scalar_subscript_inplace_array_subscript_not() {
        let (f, g) = build(
            "function f()\na = rand(2, 2);\nc = a(1);\ndisp(c);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let c = var(&f, "c", 1);
        assert!(!g.interferes(c, a), "scalar subscript: in place\n{f}");

        let (f2, g2) = build(
            "function f()\na = rand(2, 2);\ne = 4:-1:1;\nc = a(e);\ndisp(c);\n",
            InterferenceOptions::default(),
        );
        let a2 = var(&f2, "a", 1);
        let c2 = var(&f2, "c", 1);
        assert!(
            g2.interferes(c2, a2),
            "§2.3.2: array subscript may permute\n{f2}"
        );
    }

    #[test]
    fn subsasgn_inplace_in_array_not_value() {
        let (f, g) = build(
            "function f(x, y, i1, i2)\na = eye(x, y);\nr = rand(2, 2);\na(i1, i2) = r;\ndisp(a);\n",
            InterferenceOptions::default(),
        );
        // SSA: a.2 = subsasgn(a.1, r, ...). a.1 dies there; r dies there.
        let a1 = var(&f, "a", 1);
        let a2 = var(&f, "a", 2);
        let r = var(&f, "r", 1);
        assert!(!g.interferes(a2, a1), "§2.3.3.1 backwards fill\n{f}");
        assert!(g.interferes(a2, r), "value operand cannot overlap\n{f}");
    }

    #[test]
    fn phi_coalescing_merges_loop_variable() {
        let (f, g) = build(
            "function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n",
            InterferenceOptions::default(),
        );
        assert!(g.coalesced >= 2, "loop φs coalesce: {}\n{f}", g.coalesced);
        // All non-literal SSA versions of s share one class (s.1 = 0 is
        // an immediate; the φ copies the literal into the slot).
        let s_versions: Vec<VarId> = f
            .vars
            .iter()
            .filter(|(_, i)| i.name.as_deref() == Some("s") && i.ssa_version > 0)
            .map(|(v, _)| v)
            .filter(|v| !g.is_immediate(*v))
            .collect();
        assert!(s_versions.len() >= 2, "{f}");
        for sv in &s_versions {
            assert_eq!(g.rep(*sv), g.rep(s_versions[0]), "{f}");
        }
    }

    #[test]
    fn transpose_of_matrix_conflicts_vector_does_not() {
        let (f, g) = build(
            "function f()\na = rand(3, 3);\nb = a';\ndisp(b);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let b = var(&f, "b", 1);
        assert!(g.interferes(b, a), "matrix transpose permutes\n{f}");

        let (f2, g2) = build(
            "function f()\nv = rand(1, 5);\nw = v';\ndisp(w);\n",
            InterferenceOptions::default(),
        );
        let v = var(&f2, "v", 1);
        let w = var(&f2, "w", 1);
        assert!(!g2.interferes(w, v), "vector transpose is a relabel\n{f2}");
    }

    #[test]
    fn op_semantics_can_be_disabled_for_ablation() {
        let (f, g) = build(
            "function f()\na = rand(3, 3);\nb = rand(3, 3);\nc = a * b;\ndisp(c);\n",
            InterferenceOptions {
                operator_semantics: false,
                phi_coalescing: true,
            },
        );
        let a = var(&f, "a", 1);
        let c = var(&f, "c", 1);
        assert!(!g.interferes(c, a), "ablation removes §2.3 conflicts");
        assert_eq!(g.op_conflicts, 0);
    }

    #[test]
    fn memoized_queries_match_direct_scans() {
        let (_, g) = build(
            "function s = f(n)\ns = 0;\nfor i = 1:n\nif s > 3\ns = s + i;\nelse\ns = s - i;\nend\nend\n",
            InterferenceOptions::default(),
        );
        let reps = g.representatives();
        for w in reps.windows(2) {
            assert!(w[0] < w[1], "representatives ascending and deduped");
        }
        let mut total = 0;
        for r in &reps {
            let ms = g.members(*r);
            assert!(!ms.is_empty(), "class of {r:?} has members");
            for m in &ms {
                assert_eq!(g.rep(*m), *r);
            }
            total += ms.len();
            assert_eq!(
                g.degree(*r),
                g.neighbors(*r).count(),
                "degree cache matches adjacency row"
            );
        }
        assert_eq!(total, g.occurring_count(), "classes partition occurrences");
    }

    #[test]
    fn matrix_build_conflicts_with_operands() {
        let (f, g) = build(
            "function f()\na = rand(1, 3);\nb = [a, a];\ndisp(b);\n",
            InterferenceOptions::default(),
        );
        let a = var(&f, "a", 1);
        let b = var(&f, "b", 1);
        assert!(g.interferes(b, a), "{f}");
    }
}
