//! Phase 2: the storage-size partial order ⪯ and color-class
//! decomposition (§3.2–3.3).
//!
//! Relation 1 orders two variables `u ⪯ v` when they have identical
//! intrinsic types and either
//!
//! 1. both storage sizes are **statically estimable** with
//!    `S(u) ≤ S(v)`, or
//! 2. neither is estimable, `u` is **available at the definition of**
//!    `v`, and the symbolic sizes satisfy `S(u) ≤ S(v)` (provable shape
//!    algebra, plus the `subsasgn` growth guarantee of §2.3.3).
//!
//! `Decompose-color-class` then builds the directed graph of the order
//! over a color class, condenses strongly connected components (equal
//! sizes), and carves the condensation into a forest whose roots are
//! maximal elements — each tree becomes one storage *group*.
//!
//! Note on edge orientation: the paper says roots have in-degree 0 *and*
//! are maximal; we therefore direct edges from larger to smaller
//! (`v → u` iff `S(u) ⪯ S(v)`), consistent with Lemma 1 (DESIGN.md §4).

use crate::liveness::Dataflow;
use matc_ir::ids::VarId;
use matc_ir::instr::{InstrKind, Op, Operand};
use matc_ir::FuncIr;
use matc_typeinf::{ExprId, Intrinsic, ProgramTypes};
use std::collections::{HashMap, HashSet};

/// How a variable's storage size is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeClass {
    /// Statically estimable (§3.2.1): the byte size is a compile-time
    /// constant; the variable is stack-allocated.
    Static(u64),
    /// Statically inestimable (§3.2.2): the symbolic element count backs
    /// the byte size `|s(u)|·|t(u)|`; heap-allocated.
    Dynamic(ExprId),
}

/// Per-variable sizing facts used by the partial order.
#[derive(Debug, Clone)]
pub struct Sizing {
    /// Size classification per variable.
    pub class: Vec<Option<SizeClass>>,
    /// Intrinsic type per variable.
    pub intrinsic: Vec<Intrinsic>,
    /// For `b = subsasgn(a, ...)` definitions: the array operand `a`
    /// (the §2.3.3 growth guarantee `|s(a)| ≤ |s(b)|`).
    pub grows_from: HashMap<VarId, VarId>,
}

impl Sizing {
    /// Computes size classes for every occurring variable of `func`.
    ///
    /// Static estimability follows §3.2.1: explicit shape tuples, plus
    /// φ-definitions whose inputs are all estimable (size = max).
    pub fn compute(func: &FuncIr, fid: matc_ir::FuncId, types: &mut ProgramTypes) -> Sizing {
        let nv = func.vars.len();
        let mut class: Vec<Option<SizeClass>> = vec![None; nv];
        let mut intrinsic = vec![Intrinsic::Complex; nv];
        let mut grows_from = HashMap::new();

        // Seed from inferred facts.
        let mut phis: Vec<(VarId, Vec<VarId>)> = Vec::new();
        let consider = |v: VarId,
                        class: &mut Vec<Option<SizeClass>>,
                        intrinsic: &mut Vec<Intrinsic>,
                        types: &mut ProgramTypes| {
            if class[v.index()].is_some() {
                return;
            }
            if let Some(f) = types.facts(fid, v).cloned() {
                intrinsic[v.index()] = f.intrinsic;
                let bytes = f.intrinsic.byte_size();
                class[v.index()] = Some(match f.shape.known_dims(&types.ctx) {
                    Some(dims) => {
                        let numel: i64 = dims.iter().product::<i64>().max(0);
                        SizeClass::Static(numel as u64 * bytes)
                    }
                    None => {
                        let n = f.shape.clone().numel(&mut types.ctx);
                        SizeClass::Dynamic(n)
                    }
                });
            }
        };
        for p in &func.params {
            consider(*p, &mut class, &mut intrinsic, types);
        }
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                for d in instr.defs() {
                    consider(d, &mut class, &mut intrinsic, types);
                }
                match &instr.kind {
                    InstrKind::Phi { dst, args } => {
                        phis.push((*dst, args.iter().map(|(_, v)| *v).collect()));
                    }
                    InstrKind::Compute { dst, op, args } => {
                        if matches!(op, Op::Subsasgn) {
                            if let Some(Operand::Var(a)) = args.first() {
                                grows_from.insert(*dst, *a);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // §3.2.1 case 2: φ of estimables is estimable at the max —
        // iterate to cover φ-chains.
        let mut changed = true;
        while changed {
            changed = false;
            for (dst, args) in &phis {
                if matches!(class[dst.index()], Some(SizeClass::Static(_))) {
                    continue;
                }
                let sizes: Option<Vec<u64>> = args
                    .iter()
                    .map(|v| match class.get(v.index()).copied().flatten() {
                        Some(SizeClass::Static(s)) => Some(s),
                        _ => None,
                    })
                    .collect();
                if let Some(sizes) = sizes {
                    if !sizes.is_empty() {
                        class[dst.index()] =
                            Some(SizeClass::Static(sizes.into_iter().max().unwrap()));
                        changed = true;
                    }
                }
            }
        }
        Sizing {
            class,
            intrinsic,
            grows_from,
        }
    }

    /// Relation 1: whether `S(u) ⪯ S(v)`.
    pub fn size_le(
        &self,
        u: VarId,
        v: VarId,
        flow: &Dataflow,
        prog_types: &mut ProgramTypes,
    ) -> bool {
        if self.intrinsic[u.index()] != self.intrinsic[v.index()] {
            return false;
        }
        match (self.class[u.index()], self.class[v.index()]) {
            // First criterion: both statically estimable.
            (Some(SizeClass::Static(su)), Some(SizeClass::Static(sv))) => su <= sv,
            // Second criterion: both inestimable, availability, and a
            // provable symbolic ordering.
            (Some(SizeClass::Dynamic(nu)), Some(SizeClass::Dynamic(nv))) => {
                if !flow.available_at_def(u, v) {
                    return false;
                }
                // Identical intrinsic types: |s(u)| <= |s(v)| suffices.
                if nu == nv || { prog_types.ctx.provably_ge(nv, nu) } {
                    return true;
                }
                // §2.3.3 growth guarantee: subsasgn chains only grow.
                let mut cur = v;
                let mut hops = 0;
                while let Some(prev) = self.grows_from.get(&cur) {
                    if *prev == u {
                        return true;
                    }
                    cur = *prev;
                    hops += 1;
                    if hops > 64 {
                        break;
                    }
                }
                false
            }
            // "One situation where a and b won't share the same storage
            // even if they don't interfere: if the size of only one of
            // them can be statically estimated" (§3.2, Example 2).
            _ => false,
        }
    }
}

/// One storage group produced by `Decompose-color-class`: the indices
/// (into the input slice) of its members, with the root — the maximal
/// element's SCC — listed first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexGroup {
    /// Member indices; `members[0]` belongs to the root SCC.
    pub members: Vec<usize>,
    /// The index of one maximal element (root SCC representative).
    pub root: usize,
}

/// `Decompose-color-class` (§3.3) over `n` nodes related by `le(i, j)` ⇔
/// `S(nodeᵢ) ⪯ S(nodeⱼ)`.
///
/// Builds the digraph with edges larger → smaller, condenses strongly
/// connected components (Tarjan), and carves the condensation into a
/// BFS forest rooted at the in-degree-0 components (the maximal
/// elements); a component reachable from two maximal chains is assigned
/// wholly to the first (the paper's tie-break for shared chain nodes).
pub fn decompose_color_class(
    n: usize,
    mut le: impl FnMut(usize, usize) -> bool,
) -> Vec<IndexGroup> {
    // Edges big -> small: v -> u iff S(u) ⪯ S(v).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, out) in succ.iter_mut().enumerate() {
            if i != j && le(i, j) {
                out.push(i);
            }
        }
    }

    let sccs = tarjan(n, &succ);
    let ncomp = sccs.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (i, c) in sccs.iter().enumerate() {
        comp_members[*c].push(i);
    }
    let mut cedges: Vec<HashSet<usize>> = vec![HashSet::new(); ncomp];
    let mut indeg = vec![0usize; ncomp];
    for (i, outs) in succ.iter().enumerate() {
        for &j in outs {
            let (ci, cj) = (sccs[i], sccs[j]);
            if ci != cj && cedges[ci].insert(cj) {
                indeg[cj] += 1;
            }
        }
    }

    // BFS forest from in-degree-0 roots; first tree claims each node.
    let mut owner: Vec<Option<usize>> = vec![None; ncomp];
    let mut roots: Vec<usize> = (0..ncomp).filter(|c| indeg[*c] == 0).collect();
    roots.sort();
    let mut queue = std::collections::VecDeque::new();
    for &r in &roots {
        if owner[r].is_none() {
            owner[r] = Some(r);
            queue.push_back(r);
            while let Some(c) = queue.pop_front() {
                let mut nexts: Vec<usize> = cedges[c].iter().copied().collect();
                nexts.sort();
                for d in nexts {
                    if owner[d].is_none() {
                        owner[d] = Some(r);
                        queue.push_back(d);
                    }
                }
            }
        }
    }

    let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
    for c in 0..ncomp {
        let root = owner[c].expect("every component reached from a root");
        by_root.entry(root).or_default().extend(&comp_members[c]);
    }
    let mut keys: Vec<usize> = by_root.keys().copied().collect();
    keys.sort();
    keys.into_iter()
        .map(|root| {
            let mut members = by_root.remove(&root).unwrap();
            let root_member = comp_members[root][0];
            members.sort_by_key(|m| (*m != root_member, *m));
            IndexGroup {
                members,
                root: root_member,
            }
        })
        .collect()
}

/// Iterative Tarjan SCC; returns the component id of each node,
/// numbered in reverse topological order of the condensation.
fn tarjan(n: usize, succ: &[Vec<usize>]) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false
        };
        n
    ];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0i64;
    let mut ncomp = 0usize;

    // Iterative DFS with explicit frames.
    for start in 0..n {
        if state[start].index != -1 {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = next_index;
        state[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        state[start].on_stack = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if *ei < succ[v].len() {
                let w = succ[v][*ei];
                *ei += 1;
                if state[w].index == -1 {
                    state[w].index = next_index;
                    state[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    state[w].on_stack = true;
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if state[v].lowlink == state[v].index {
                    loop {
                        let w = stack.pop().expect("scc stack");
                        state[w].on_stack = false;
                        comp[w] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;
    use matc_typeinf::{infer_program, ProgramTypes};

    /// Runs the pipeline and hands back the entry function's sizing,
    /// dataflow, and a by-name variable lookup.
    fn sized(src: &str) -> (matc_ir::IrProgram, ProgramTypes, Sizing, Dataflow) {
        let ast = parse_program([src]).unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        matc_passes::optimize_program(&mut ir);
        let mut types = infer_program(&ir);
        let fid = ir.entry.unwrap();
        let sizing = Sizing::compute(ir.entry_func(), fid, &mut types);
        let flow = Dataflow::compute(ir.entry_func());
        (ir, types, sizing, flow)
    }

    fn var(ir: &matc_ir::IrProgram, name: &str) -> VarId {
        ir.entry_func()
            .vars
            .iter()
            .filter(|(_, i)| i.name.as_deref() == Some(name))
            .map(|(v, _)| v)
            .last()
            .unwrap_or_else(|| panic!("no {name} in\n{}", ir.entry_func()))
    }

    #[test]
    fn size_le_static_orders_by_bytes() {
        let (ir, mut t, s, flow) = sized("a = rand(2, 2);\nb = rand(3, 3);\ndisp(a);\ndisp(b);\n");
        let (a, b) = (var(&ir, "a"), var(&ir, "b"));
        assert!(
            matches!(s.class[a.index()], Some(SizeClass::Static(32))),
            "{:?}",
            s.class[a.index()]
        );
        assert!(matches!(s.class[b.index()], Some(SizeClass::Static(72))));
        assert!(s.size_le(a, b, &flow, &mut t), "32 ≤ 72");
        assert!(!s.size_le(b, a, &flow, &mut t), "72 ≰ 32");
        assert!(s.size_le(a, a, &flow, &mut t), "reflexive");
    }

    #[test]
    fn size_le_rejects_differing_intrinsics() {
        // Identical element counts but REAL (8B) vs BOOLEAN (1B): Relation
        // 1 requires identical intrinsic types.
        let (ir, mut t, s, flow) = sized("a = rand(3, 3);\nb = zeros(3, 3);\ndisp(a);\ndisp(b);\n");
        let (a, b) = (var(&ir, "a"), var(&ir, "b"));
        assert_ne!(s.intrinsic[a.index()], s.intrinsic[b.index()]);
        assert!(!s.size_le(a, b, &flow, &mut t));
        assert!(!s.size_le(b, a, &flow, &mut t));
    }

    #[test]
    fn size_le_never_mixes_static_and_dynamic() {
        // §3.2 Example 2's remark: if the size of only one of them is
        // statically estimable, they never share storage — in either
        // direction, even when the dynamic one is "obviously" as large.
        let (ir, mut t, s, flow) =
            sized("function f(n)\na = rand(2, 2);\nb = rand(n, n);\ndisp(a);\ndisp(b);\n");
        let (a, b) = (var(&ir, "a"), var(&ir, "b"));
        assert!(matches!(s.class[a.index()], Some(SizeClass::Static(_))));
        assert!(matches!(s.class[b.index()], Some(SizeClass::Dynamic(_))));
        assert!(!s.size_le(a, b, &flow, &mut t));
        assert!(!s.size_le(b, a, &flow, &mut t));
    }

    #[test]
    fn size_le_dynamic_identical_shape_identity() {
        // t1 = t0 - 1 reuses t0's shape expression: |s(t0)| = |s(t1)| by
        // interned identity, so the order holds both ways (an SCC).
        let (ir, mut t, s, flow) = sized("function t1 = f(t0)\nt1 = t0 - 1;\n");
        let t0 = ir.entry_func().params[0];
        let t1 = var(&ir, "t1");
        assert!(matches!(s.class[t1.index()], Some(SizeClass::Dynamic(_))));
        assert!(s.size_le(t0, t1, &flow, &mut t));
        // The reverse fails the availability clause: t1's definition is
        // never reached before t0's (the entry), so equal sizes alone do
        // not make the order mutual here.
        assert!(!flow.available_at_def(t1, t0));
        assert!(!s.size_le(t1, t0, &flow, &mut t));
    }

    #[test]
    fn size_le_subsasgn_growth_chain() {
        // b = a; b(i, j) = 1 with symbolic extents: the §2.3.3 growth
        // guarantee orders a ⪯ b even though no symbolic proof exists.
        let (ir, mut t, s, flow) =
            sized("function b = f(x, y, i, j)\na = eye(x, y);\nb = a;\nb(i, j) = 1;\n");
        let a = var(&ir, "a");
        let b = ir.entry_func().ssa_outs[0];
        assert!(s.grows_from.contains_key(&b), "{:?}", s.grows_from);
        assert!(s.size_le(a, b, &flow, &mut t), "growth chain a ⪯ b");
        assert!(!s.size_le(b, a, &flow, &mut t), "not the reverse");
    }

    #[test]
    fn size_le_requires_availability() {
        // u and v defined on mutually exclusive branches: neither is
        // available at the other's definition, so dynamic equality of
        // sizes is not enough.
        let (ir, mut t, s, flow) = sized(
            "function f(c, n)\nif c > 0\n  u = rand(n, 1);\n  disp(u);\nelse\n  v = rand(n, 1);\n  disp(v);\nend\n",
        );
        let (u, v) = (var(&ir, "u"), var(&ir, "v"));
        assert!(!flow.available_at_def(u, v));
        assert!(!s.size_le(u, v, &flow, &mut t));
    }

    #[test]
    fn phi_of_static_sizes_is_static_at_max() {
        // §3.2.1 case 2: a φ joining 2×2 and 3×3 REAL arrays is
        // statically estimable at 72 bytes.
        let (ir, mut t, s, flow) = sized(
            "function f(c)\nif c > 0\n  a = rand(2, 2);\nelse\n  a = rand(3, 3);\nend\ndisp(a);\n",
        );
        let f = ir.entry_func();
        // Find the φ-defined version of a.
        let mut phi_a = None;
        for b in f.block_ids() {
            for i in &f.block(b).instrs {
                if let matc_ir::InstrKind::Phi { dst, .. } = &i.kind {
                    phi_a = Some(*dst);
                }
            }
        }
        let phi_a = phi_a.expect("φ for a");
        assert!(
            matches!(s.class[phi_a.index()], Some(SizeClass::Static(72))),
            "{:?}",
            s.class[phi_a.index()]
        );
        let _ = (&flow, &mut t);
    }

    #[test]
    fn tarjan_finds_cycles() {
        // 0 -> 1 -> 2 -> 0 (one SCC) ; 3 -> 0 (own SCC)
        let succ = vec![vec![1], vec![2], vec![0], vec![0]];
        let comp = tarjan(4, &succ);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
    }

    #[test]
    fn tarjan_dag_components_distinct() {
        let succ = vec![vec![1, 2], vec![], vec![1]];
        let comp = tarjan(3, &succ);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn decompose_chain_is_one_group() {
        // sizes 1 <= 2 <= 3: a single chain, one group rooted at the max.
        let sizes = [1u64, 2, 3];
        let groups = decompose_color_class(3, |i, j| sizes[i] <= sizes[j]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 3);
        assert_eq!(groups[0].root, 2, "the largest is maximal");
    }

    #[test]
    fn decompose_incomparable_elements_split() {
        // Two incomparable nodes: two singleton groups.
        let groups = decompose_color_class(2, |_, _| false);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.members.len() == 1));
    }

    #[test]
    fn decompose_equal_sizes_form_scc() {
        // All equal: one SCC, one group; Lemma 1's "all variables in an
        // SCC have the same storage size".
        let groups = decompose_color_class(3, |_, _| true);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 3);
    }

    #[test]
    fn decompose_shared_node_goes_to_one_chain() {
        // Two maxima (1, 2) both above node 0: node 0 joins exactly one.
        // sizes: node0 = 1, node1 = 5, node2 = 5 (incomparable maxima).
        let le = |i: usize, j: usize| matches!((i, j), (0, 1) | (0, 2));
        let groups = decompose_color_class(3, le);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.members.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2], "shared node assigned wholly to one");
    }

    #[test]
    fn decompose_diamond_single_root_claims_all() {
        // 3 is above 1 and 2, which are above 0: one maximal element,
        // one group containing everything.
        let le = |i: usize, j: usize| matches!((i, j), (0, 1) | (0, 2) | (0, 3) | (1, 3) | (2, 3));
        let groups = decompose_color_class(4, le);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].root, 3);
    }
}
