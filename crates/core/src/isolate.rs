//! Panic isolation with quiet message capture.
//!
//! [`isolate`] runs a closure under `catch_unwind` and turns a panic
//! into `Err(message)`. Two details matter for the batch driver:
//!
//! * the default panic hook prints a backtrace banner to stderr *before*
//!   unwinding reaches `catch_unwind`; a batch run surviving dozens of
//!   injected panics must not spray that noise, so a process-wide hook
//!   (installed once, chaining to whatever hook was already set) swallows
//!   the report only while the current thread is inside [`isolate`];
//! * the panic *message* (payload downcast to `&str`/`String`) is
//!   preserved so a panicking unit yields a structured, attributable
//!   error instead of a bare "task panicked".

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

thread_local! {
    /// True while the current thread is inside [`isolate`].
    static SUPPRESS_PANIC_REPORT: Cell<bool> = const { Cell::new(false) };
}

/// Installs the chaining, suppression-aware hook exactly once.
fn install_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_REPORT.with(|s| s.get()) {
                return; // captured by an isolate() frame on this thread
            }
            prev(info);
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(panic message)` without
/// letting the default hook print to stderr. Nested calls are fine; the
/// innermost frame catches.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    let was = SUPPRESS_PANIC_REPORT.with(|s| s.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_REPORT.with(|s| s.set(was));
    result.map_err(|payload| payload_message(payload.as_ref()))
}

/// Locks `m`, recovering from poisoning.
///
/// A mutex is poisoned when a holder panicked; with every fallible
/// compile wrapped in [`isolate`] the data it guards (work queues,
/// result maps — never mid-mutation compiler state) is still
/// consistent, so the right response is to keep going, not to cascade
/// the panic through every other worker via `lock().unwrap()`.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_value_passes_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let m = Mutex::new(7u32);
        let _ = isolate(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        });
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn panic_message_is_captured() {
        let err = isolate(|| -> () { panic!("kaboom at {}", "plan") }).unwrap_err();
        assert_eq!(err, "kaboom at plan");
        let err = isolate(|| -> () { std::panic::panic_any(7u32) }).unwrap_err();
        assert!(err.contains("non-string payload"));
    }

    #[test]
    fn nested_isolation_restores_suppression() {
        let outer = isolate(|| {
            let inner = isolate(|| -> () { panic!("inner") });
            assert_eq!(inner.unwrap_err(), "inner");
            "outer ok"
        });
        assert_eq!(outer, Ok("outer ok"));
        // After an isolate() frame unwinds, the flag is back off.
        assert!(!SUPPRESS_PANIC_REPORT.with(|s| s.get()));
    }

    #[test]
    fn threads_do_not_leak_suppression() {
        let h = std::thread::spawn(|| isolate(|| -> () { panic!("worker died") }));
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, "worker died");
    }
}
