//! Crash-safe, content-addressed artifact store for batch compilation
//! (DESIGN.md §12).
//!
//! A compilation unit's cache key is the SHA-256 digest of its source
//! text *and* the complete option set (see [`options_fingerprint`]) —
//! two compilations agree on the key iff they would produce identical
//! artifacts, so a hit can serve the stored [`Artifact`] (emitted C,
//! plan rendering, audit findings, size metrics) without running any
//! pipeline phase. Content-addressing is additionally split to
//! **per-function fragments** ([`Fragment`]: one function's emitted C
//! body, plan rendering, audit findings and metric deltas), so a warm
//! recompile after a single-function edit reuses every untouched
//! fragment instead of recompiling the whole unit.
//!
//! The store is two-level: an in-memory map shared by the batch
//! workers, and an optional on-disk layer (`--cache-dir`) that multiple
//! OS processes (`matc batch` runs, `matc serve` daemons) may share:
//!
//! * `units/<hex>.man` — one unit **manifest** per artifact, stitching
//!   the unit's fragment set to its composed artifact;
//! * `frags/<hex>.frag` — content-addressed per-function fragments;
//! * `corrupt/` — quarantined files that failed integrity verification;
//! * `store.lease` — an advisory owner-pid lease serializing manifest
//!   commits across processes (stale leases of dead owners are stolen).
//!
//! Every manifest and fragment carries an embedded SHA-256 over its
//! payload, verified on read: a torn, truncated or bit-flipped file is
//! **quarantined** to `corrupt/` (moved aside once, counted in stats,
//! never silently reused) and the unit is transparently recompiled —
//! the store heals itself instead of erroring. A unit commit is
//! crash-safe by ordering: fragments are written and fsynced first,
//! then the manifest is published by an atomic temp-file + rename — a
//! crash at any point leaves either the old unit or a clean miss
//! visible, never a hybrid (fragments without a manifest are harmless:
//! they are content-addressed and only reachable through keys that
//! prove their contents). Legacy flat `<hex>.art` files from older
//! stores are still read, with the same quarantine-on-corruption
//! policy.
//!
//! Everything here is `std`-only: the SHA-256 implementation below is
//! the FIPS 180-4 algorithm transcribed directly (checked against the
//! standard test vectors), because the build environment is offline and
//! the workspace takes no external dependencies.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::coloring::ColoringStrategy;
use crate::fault::{FaultPlan, FaultSite};
use crate::isolate::lock_recover;
use crate::plan::GctdOptions;

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes, returning the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes in directly: buf_len is 56 and compress fires at 64.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

// ---------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------

/// A 256-bit content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey([u8; 32]);

impl CacheKey {
    /// Derives the key of a compilation unit: a digest over a versioned,
    /// length-prefixed stream of the option fingerprint and every source
    /// file. Length prefixes make the encoding injective — no two
    /// distinct `(fingerprint, sources)` inputs share a stream.
    pub fn compute<'a>(sources: impl IntoIterator<Item = &'a str>, fingerprint: &str) -> CacheKey {
        let mut h = Sha256::new();
        h.update(b"matc-cache-v1\0");
        h.update(&(fingerprint.len() as u64).to_le_bytes());
        h.update(fingerprint.as_bytes());
        for src in sources {
            h.update(&(src.len() as u64).to_le_bytes());
            h.update(src.as_bytes());
        }
        CacheKey(h.finish())
    }

    /// Derives a key in a caller-chosen domain: a digest over the
    /// domain tag and a length-prefixed stream of `parts`. Used for
    /// per-function fragment keys (domain `"matc-frag-v1"`), where the
    /// parts are the option fingerprint plus canonical renderings of
    /// the function's optimized IR and inference facts. Domain
    /// separation keeps fragment keys from ever colliding with unit
    /// keys.
    pub fn compute_parts<'a>(domain: &str, parts: impl IntoIterator<Item = &'a str>) -> CacheKey {
        let mut h = Sha256::new();
        h.update(domain.as_bytes());
        h.update(&[0]);
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p.as_bytes());
        }
        CacheKey(h.finish())
    }

    /// Lower-case hex rendering (the on-disk file stem).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

/// Canonical, versioned rendering of every option that can change the
/// compiler's output. **Every field of [`GctdOptions`] must appear
/// here**; dropping one would let two differently-configured
/// compilations collide on one cache key (guarded by
/// `tests/plan_audit.rs`).
pub fn options_fingerprint(o: &GctdOptions) -> String {
    let coloring = match o.coloring {
        ColoringStrategy::LexicalGreedy => "lexical".to_string(),
        ColoringStrategy::SizeOrderedGreedy => "size".to_string(),
        ColoringStrategy::Exhaustive { max_nodes } => format!("exhaustive:{max_nodes}"),
    };
    format!(
        "v1;coalesce={};opsem={};phi={};symbolic={};coloring={}",
        u8::from(o.coalesce),
        u8::from(o.interference.operator_semantics),
        u8::from(o.interference.phi_coalescing),
        u8::from(o.symbolic_criterion),
        coloring
    )
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

/// Everything a batch run needs to serve a unit without recompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// The emitted C translation.
    pub c_code: String,
    /// The storage-plan rendering (`matc plan` format).
    pub plan_text: String,
    /// Audit + lint findings as JSON (`Diagnostics::to_json`).
    pub audit_json: String,
    /// Numeric metrics snapshot (sizes, counts — no timings), used to
    /// refill `UnitMetrics` on a cache hit.
    pub meta: BTreeMap<String, u64>,
}

const ARTIFACT_MAGIC: &str = "matc-artifact v1";

impl Artifact {
    /// A metadata value, zero when absent.
    pub fn meta_value(&self, key: &str) -> u64 {
        self.meta.get(key).copied().unwrap_or(0)
    }

    /// Error-severity audit findings recorded for this artifact.
    pub fn audit_errors(&self) -> u64 {
        self.meta_value("audit_errors")
    }

    /// Serializes to the on-disk format: a magic line, then
    /// length-prefixed sections (`section <name> <bytes>`), with the
    /// metadata map as `key value` lines in the `meta` section.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = String::new();
        for (k, v) in &self.meta {
            meta.push_str(k);
            meta.push(' ');
            meta.push_str(&v.to_string());
            meta.push('\n');
        }
        let mut out = Vec::new();
        out.extend_from_slice(ARTIFACT_MAGIC.as_bytes());
        out.push(b'\n');
        for (name, body) in [
            ("c", self.c_code.as_str()),
            ("plan", self.plan_text.as_str()),
            ("audit", self.audit_json.as_str()),
            ("meta", meta.as_str()),
        ] {
            out.extend_from_slice(format!("section {name} {}\n", body.len()).as_bytes());
            out.extend_from_slice(body.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Parses the on-disk format; any structural defect is an error (the
    /// cache treats it as a miss).
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, String> {
        let mut rest = bytes;
        let magic = take_line(&mut rest).ok_or("missing magic")?;
        if magic != ARTIFACT_MAGIC.as_bytes() {
            return Err("bad magic".to_string());
        }
        let mut sections: BTreeMap<String, String> = BTreeMap::new();
        while !rest.is_empty() {
            let header = take_line(&mut rest).ok_or("truncated section header")?;
            let header = std::str::from_utf8(header).map_err(|_| "non-utf8 header")?;
            let mut parts = header.split(' ');
            let (kw, name, len) = (parts.next(), parts.next(), parts.next());
            if kw != Some("section") || parts.next().is_some() {
                return Err(format!("bad section header: {header}"));
            }
            let name = name.ok_or("missing section name")?;
            let len: usize = len
                .and_then(|l| l.parse().ok())
                .ok_or("bad section length")?;
            // `<= len` rather than `< len + 1`: a crafted length of
            // usize::MAX must read as truncation, not overflow.
            if rest.len() <= len || rest[len] != b'\n' {
                return Err(format!("truncated section {name}"));
            }
            let body = std::str::from_utf8(&rest[..len]).map_err(|_| "non-utf8 section")?;
            sections.insert(name.to_string(), body.to_string());
            rest = &rest[len + 1..];
        }
        let mut get = |k: &str| sections.remove(k).ok_or(format!("missing section {k}"));
        let c_code = get("c")?;
        let plan_text = get("plan")?;
        let audit_json = get("audit")?;
        let meta_text = get("meta")?;
        let mut meta = BTreeMap::new();
        for line in meta_text.lines() {
            let (k, v) = line.split_once(' ').ok_or("bad meta line")?;
            let v: u64 = v.parse().map_err(|_| "bad meta value")?;
            meta.insert(k.to_string(), v);
        }
        Ok(Artifact {
            c_code,
            plan_text,
            audit_json,
            meta,
        })
    }
}

fn take_line<'a>(rest: &mut &'a [u8]) -> Option<&'a [u8]> {
    let pos = rest.iter().position(|b| *b == b'\n')?;
    let line = &rest[..pos];
    *rest = &rest[pos + 1..];
    Some(line)
}

// ---------------------------------------------------------------------
// Fragments
// ---------------------------------------------------------------------

/// One function's share of a unit artifact: everything a warm recompile
/// needs to skip that function's plan / audit / SSA-inversion / codegen
/// work entirely. Fragments are content-addressed by a digest over the
/// option fingerprint and canonical renderings of the function's
/// optimized IR and inference facts ([`CacheKey::compute_parts`]), so
/// equal keys imply equal pipeline inputs — and therefore equal
/// outputs, which is what makes reuse sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The function's emitted C body (one `emit_function` text block).
    pub body: String,
    /// The function's storage-plan rendering (`matc plan` section).
    pub plan_text: String,
    /// The function's audit findings, wire-serialized
    /// (`Diagnostics::to_wire`).
    pub findings: String,
    /// Per-function metric deltas (plan stats, interference counts,
    /// audit edges — no timings), summed into `UnitMetrics` on reuse.
    pub meta: BTreeMap<String, u64>,
}

const FRAGMENT_MAGIC: &str = "matc-frag v1";
const MANIFEST_MAGIC: &str = "matc-manifest v1";

impl Fragment {
    /// Serializes the fragment payload (sections, like [`Artifact`]).
    fn payload(&self) -> Vec<u8> {
        let mut meta = String::new();
        for (k, v) in &self.meta {
            meta.push_str(k);
            meta.push(' ');
            meta.push_str(&v.to_string());
            meta.push('\n');
        }
        let mut out = Vec::new();
        for (name, body) in [
            ("body", self.body.as_str()),
            ("plan", self.plan_text.as_str()),
            ("findings", self.findings.as_str()),
            ("meta", meta.as_str()),
        ] {
            out.extend_from_slice(format!("section {name} {}\n", body.len()).as_bytes());
            out.extend_from_slice(body.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Serializes to the on-disk format: magic line, embedded SHA-256
    /// over the payload, then the payload sections.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(FRAGMENT_MAGIC, &self.payload())
    }

    /// Parses and integrity-verifies the on-disk format; any structural
    /// defect or digest mismatch is an error (the store quarantines the
    /// file).
    pub fn from_bytes(bytes: &[u8]) -> Result<Fragment, String> {
        let mut rest = unseal(FRAGMENT_MAGIC, bytes)?;
        let mut sections: BTreeMap<String, String> = BTreeMap::new();
        while !rest.is_empty() {
            let header = take_line(&mut rest).ok_or("truncated section header")?;
            let header = std::str::from_utf8(header).map_err(|_| "non-utf8 header")?;
            let mut parts = header.split(' ');
            let (kw, name, len) = (parts.next(), parts.next(), parts.next());
            if kw != Some("section") || parts.next().is_some() {
                return Err(format!("bad section header: {header}"));
            }
            let name = name.ok_or("missing section name")?;
            let len: usize = len
                .and_then(|l| l.parse().ok())
                .ok_or("bad section length")?;
            if rest.len() <= len || rest[len] != b'\n' {
                return Err(format!("truncated section {name}"));
            }
            let body = std::str::from_utf8(&rest[..len]).map_err(|_| "non-utf8 section")?;
            sections.insert(name.to_string(), body.to_string());
            rest = &rest[len + 1..];
        }
        let mut get = |k: &str| sections.remove(k).ok_or(format!("missing section {k}"));
        let body = get("body")?;
        let plan_text = get("plan")?;
        let findings = get("findings")?;
        let meta_text = get("meta")?;
        let mut meta = BTreeMap::new();
        for line in meta_text.lines() {
            let (k, v) = line.split_once(' ').ok_or("bad meta line")?;
            let v: u64 = v.parse().map_err(|_| "bad meta value")?;
            meta.insert(k.to_string(), v);
        }
        Ok(Fragment {
            body,
            plan_text,
            findings,
            meta,
        })
    }
}

/// Wraps `payload` with a magic line and an embedded SHA-256:
/// `<magic>\nsha256 <hex>\n<payload>`. The digest covers exactly the
/// payload bytes, so any torn, truncated or bit-flipped byte after the
/// header fails verification on read.
fn seal(magic: &str, payload: &[u8]) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(payload);
    let digest = h.finish();
    let mut out = Vec::with_capacity(payload.len() + 80);
    out.extend_from_slice(magic.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(b"sha256 ");
    for b in digest {
        out.extend_from_slice(format!("{b:02x}").as_bytes());
    }
    out.push(b'\n');
    out.extend_from_slice(payload);
    out
}

/// Verifies a [`seal`]ed document, returning the payload slice.
fn unseal<'a>(magic: &str, bytes: &'a [u8]) -> Result<&'a [u8], String> {
    let mut rest = bytes;
    let got_magic = take_line(&mut rest).ok_or("missing magic")?;
    if got_magic != magic.as_bytes() {
        return Err("bad magic".to_string());
    }
    let sha_line = take_line(&mut rest).ok_or("missing sha256 line")?;
    let sha_line = std::str::from_utf8(sha_line).map_err(|_| "non-utf8 sha256 line")?;
    let hex = sha_line
        .strip_prefix("sha256 ")
        .ok_or("bad sha256 line")?
        .trim();
    let mut h = Sha256::new();
    h.update(rest);
    let digest = h.finish();
    let mut want = String::with_capacity(64);
    for b in digest {
        want.push_str(&format!("{b:02x}"));
    }
    if hex != want {
        return Err("sha256 mismatch (corrupt or torn file)".to_string());
    }
    Ok(rest)
}

/// A decoded unit manifest: the composed artifact plus the hex keys of
/// the fragments it was stitched from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The composed unit artifact.
    pub artifact: Artifact,
    /// Hex keys of the per-function fragments the unit was built from
    /// (empty for units cached whole, e.g. by older writers or the
    /// non-incremental path).
    pub frags: Vec<String>,
}

impl Manifest {
    /// Serializes with the embedded integrity digest.
    pub fn to_bytes(&self) -> Vec<u8> {
        let artifact = self.artifact.to_bytes();
        let mut payload = Vec::new();
        payload.extend_from_slice(format!("frags {}\n", self.frags.len()).as_bytes());
        for f in &self.frags {
            payload.extend_from_slice(f.as_bytes());
            payload.push(b'\n');
        }
        payload.extend_from_slice(format!("artifact {}\n", artifact.len()).as_bytes());
        payload.extend_from_slice(&artifact);
        seal(MANIFEST_MAGIC, &payload)
    }

    /// Parses and integrity-verifies a manifest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        let mut rest = unseal(MANIFEST_MAGIC, bytes)?;
        let header = take_line(&mut rest).ok_or("missing frags header")?;
        let header = std::str::from_utf8(header).map_err(|_| "non-utf8 frags header")?;
        let n: usize = header
            .strip_prefix("frags ")
            .and_then(|l| l.parse().ok())
            .ok_or("bad frags header")?;
        if n > 1 << 20 {
            return Err("implausible fragment count".to_string());
        }
        let mut frags = Vec::with_capacity(n);
        for _ in 0..n {
            let line = take_line(&mut rest).ok_or("truncated fragment list")?;
            let line = std::str::from_utf8(line).map_err(|_| "non-utf8 fragment key")?;
            if line.len() != 64 || !line.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("bad fragment key `{line}`"));
            }
            frags.push(line.to_string());
        }
        let header = take_line(&mut rest).ok_or("missing artifact header")?;
        let header = std::str::from_utf8(header).map_err(|_| "non-utf8 artifact header")?;
        let len: usize = header
            .strip_prefix("artifact ")
            .and_then(|l| l.parse().ok())
            .ok_or("bad artifact header")?;
        if rest.len() != len {
            return Err("artifact length mismatch".to_string());
        }
        let artifact = Artifact::from_bytes(rest)?;
        Ok(Manifest { artifact, frags })
    }
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// How many times a failed disk write is attempted before the disk
/// layer is declared unusable (transient faults — a busy filesystem, an
/// injected [`FaultSite::CacheWrite`] with a finite transient count —
/// clear within the retries; persistent ones degrade the cache).
const WRITE_ATTEMPTS: u32 = 3;

/// Hard cap on the *total* time one `put` may spend sleeping between
/// write retries. Under the batch pool — and more so under `matc
/// serve`, where a write retry sits on a request's latency path — a
/// doomed write must degrade the disk layer quickly rather than stack
/// up sleeps.
const WRITE_BACKOFF_CAP: Duration = Duration::from_millis(20);

/// The backoff to sleep before retry `attempt` (1-based), or `None`
/// when `elapsed` (total time already spent in this key's retry loop)
/// plus the delay would blow [`WRITE_BACKOFF_CAP`] — the caller then
/// stops retrying.
///
/// The delay is an exponential base (1 ms, 2 ms, …) plus a
/// deterministic jitter of 0–100% of the base derived from the key
/// hash: workers that fail on *different* keys at the same instant
/// desynchronize instead of re-colliding in lockstep, while the same
/// key retries on a reproducible schedule.
fn backoff_delay(key: &str, attempt: u32, elapsed: Duration) -> Option<Duration> {
    let base_micros = 1_000u64 << (attempt.saturating_sub(1)).min(10);
    let h = crate::fault::splitmix64(crate::fault::fnv1a(key) ^ u64::from(attempt));
    let jitter_micros = h % (base_micros + 1);
    let delay = Duration::from_micros(base_micros + jitter_micros);
    if elapsed + delay > WRITE_BACKOFF_CAP {
        None
    } else {
        Some(delay)
    }
}

/// How long an acquirer polls a held lease before proceeding without
/// it. The lease is advisory — manifest publishes are atomic renames
/// either way — so contention must never block a compile for long.
const LEASE_RETRY: Duration = Duration::from_millis(25);

/// A lease file untouched for this long is presumed abandoned on
/// platforms where the owner pid can't be probed (on Linux, a dead
/// owner is detected immediately via `/proc`).
const LEASE_STALE: Duration = Duration::from_secs(2);

/// An acquired owner-pid lease on the store (`store.lease`), released
/// on drop. Serializes manifest commits across OS processes sharing one
/// cache directory; a crashed owner's lease is stolen once it is
/// provably stale.
struct Lease {
    path: PathBuf,
}

impl Lease {
    /// Tries to take the lease, stealing stale ones. Returns `None`
    /// after [`LEASE_RETRY`] of live contention — the caller proceeds
    /// unleased (commits stay safe; they're atomic renames).
    fn acquire(dir: &Path) -> Option<Lease> {
        let path = dir.join("store.lease");
        let start = Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Some(Lease { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lease_is_stale(&path) {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                }
                Err(_) => return None,
            }
            if start.elapsed() > LEASE_RETRY {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether a held lease provably belongs to nobody: unparseable owner,
/// a dead owner pid (Linux `/proc` probe), or an untouched file past
/// the portable staleness bound.
fn lease_is_stale(path: &Path) -> bool {
    match std::fs::read_to_string(path) {
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(pid) => {
                if pid != std::process::id()
                    && cfg!(target_os = "linux")
                    && !Path::new(&format!("/proc/{pid}")).exists()
                {
                    return true;
                }
            }
            Err(_) => return true,
        },
        // Vanished between create_new and here: retry the create.
        Err(_) => return true,
    }
    matches!(
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .map(|t| t.elapsed().unwrap_or(Duration::ZERO)),
        Ok(age) if age > LEASE_STALE
    )
}

/// Point-in-time store counters (schema-v9 stats `store` object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whole-unit hits (memory or verified manifest).
    pub hits: u64,
    /// Whole-unit misses.
    pub misses: u64,
    /// Per-function fragment hits (work skipped on a warm recompile).
    pub partial_hits: u64,
    /// Per-function fragment misses.
    pub frag_misses: u64,
    /// Files that failed integrity verification and were moved to
    /// `corrupt/` (never silently reused).
    pub quarantined: u64,
    /// Stranded `.tmp` debris files removed on store open (left by a
    /// writer that crashed mid-publish, past the lease-staleness bound).
    pub swept: u64,
}

/// Thread-safe two-level (memory + optional disk) artifact store with
/// per-function fragments, integrity verification, quarantine and an
/// advisory cross-process lease (module docs have the full layout).
///
/// Disk-write failures are retried with a short backoff; if a write
/// still fails after [`WRITE_ATTEMPTS`] tries (read-only cache dir,
/// full disk), the disk layer is disabled for the rest of the run and
/// the cache degrades to memory-only. The degradation is recorded once
/// — drivers surface it to the user via
/// [`ArtifactCache::degradation_warning`].
#[derive(Debug)]
pub struct ArtifactCache {
    dir: Option<PathBuf>,
    mem: Mutex<BTreeMap<CacheKey, Arc<Artifact>>>,
    frag_mem: Mutex<BTreeMap<CacheKey, Arc<Fragment>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    partial_hits: AtomicU64,
    frag_misses: AtomicU64,
    quarantined: AtomicU64,
    swept: AtomicU64,
    faults: FaultPlan,
    disk_disabled: AtomicBool,
    degradation: Mutex<Option<String>>,
    warnings: Mutex<Vec<String>>,
    /// Serializes commits *within* this process so the on-disk lease
    /// only ever mediates cross-process contention.
    commit_lock: Mutex<()>,
}

impl ArtifactCache {
    /// A purely in-memory cache (dies with the process).
    pub fn in_memory() -> ArtifactCache {
        ArtifactCache {
            dir: None,
            mem: Mutex::new(BTreeMap::new()),
            frag_mem: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
            frag_misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            swept: AtomicU64::new(0),
            faults: FaultPlan::quiet(0),
            disk_disabled: AtomicBool::new(false),
            degradation: Mutex::new(None),
            warnings: Mutex::new(Vec::new()),
            commit_lock: Mutex::new(()),
        }
    }

    /// A cache persisted under `dir` (created if absent, together with
    /// its `units/` and `frags/` tiers). Stranded `.tmp` debris from a
    /// writer that crashed mid-publish is swept on open — only files
    /// past the lease-staleness bound, since a fresh one may belong to
    /// a live writer mid-commit.
    ///
    /// # Errors
    ///
    /// Returns the error of creating `dir` or its tiers.
    pub fn at_dir(dir: impl Into<PathBuf>) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("units"))?;
        std::fs::create_dir_all(dir.join("frags"))?;
        let swept = sweep_stale_tmp(&dir);
        let cache = ArtifactCache {
            dir: Some(dir),
            ..ArtifactCache::in_memory()
        };
        cache.swept.store(swept, Ordering::Relaxed);
        Ok(cache)
    }

    /// The disk location, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Attaches a fault-injection plan probing the cache's disk I/O
    /// (builder style, for tests and the `--faults` harness).
    pub fn with_faults(mut self, faults: FaultPlan) -> ArtifactCache {
        self.faults = faults;
        self
    }

    /// Whether the disk layer was disabled after persistent write
    /// failures (the cache is now memory-only).
    pub fn disk_degraded(&self) -> bool {
        self.disk_disabled.load(Ordering::Relaxed)
    }

    /// The one-time warning recorded when the disk layer degraded, if
    /// it did. Drivers print this once; it never repeats per write.
    pub fn degradation_warning(&self) -> Option<String> {
        lock_recover(&self.degradation).clone()
    }

    /// The disk dir, unless the layer has been disabled by degradation.
    fn live_dir(&self) -> Option<&Path> {
        if self.disk_disabled.load(Ordering::Relaxed) {
            return None;
        }
        self.dir.as_deref()
    }

    /// Looks `key` up (memory, then manifest tier, then the legacy flat
    /// layout), counting a hit or miss. A file that fails integrity
    /// verification is quarantined to `corrupt/` — moved aside once,
    /// counted, one structured warning — and reads as a miss, so the
    /// caller transparently recompiles.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Artifact>> {
        if let Some(a) = lock_recover(&self.mem).get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(a);
        }
        if let Some(dir) = self.live_dir() {
            let hex = key.hex();
            // Injected read fault: the stored bytes are served torn,
            // which must degrade to a miss. The file itself is intact,
            // so nothing is quarantined.
            if !self.faults.fires(FaultSite::CacheRead, &hex) {
                let man_path = dir.join("units").join(format!("{hex}.man"));
                if let Ok(bytes) = std::fs::read(&man_path) {
                    match Manifest::from_bytes(&bytes) {
                        Ok(m) => {
                            let a = Arc::new(m.artifact);
                            lock_recover(&self.mem).insert(*key, a.clone());
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Some(a);
                        }
                        Err(why) => self.quarantine(dir, &man_path, &why),
                    }
                }
                // Legacy flat layout from pre-manifest writers: still
                // served, with the same quarantine-on-corruption policy
                // (legacy files have no embedded digest; the structural
                // parser is the integrity check).
                let legacy = dir.join(format!("{hex}.art"));
                if let Ok(bytes) = std::fs::read(&legacy) {
                    match Artifact::from_bytes(&bytes) {
                        Ok(a) => {
                            let a = Arc::new(a);
                            lock_recover(&self.mem).insert(*key, a.clone());
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Some(a);
                        }
                        Err(why) => self.quarantine(dir, &legacy, &why),
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Looks a per-function fragment up (memory, then `frags/`),
    /// counting a partial hit or fragment miss. Corrupt fragments are
    /// quarantined exactly like manifests.
    pub fn get_fragment(&self, key: &CacheKey) -> Option<Arc<Fragment>> {
        if let Some(f) = lock_recover(&self.frag_mem).get(key).cloned() {
            self.partial_hits.fetch_add(1, Ordering::Relaxed);
            return Some(f);
        }
        if let Some(dir) = self.live_dir() {
            let fhex = key.hex();
            if !self.faults.fires(FaultSite::CacheRead, &fhex) {
                let path = dir.join("frags").join(format!("{fhex}.frag"));
                if let Ok(bytes) = std::fs::read(&path) {
                    match Fragment::from_bytes(&bytes) {
                        Ok(f) => {
                            let f = Arc::new(f);
                            lock_recover(&self.frag_mem).insert(*key, f.clone());
                            self.partial_hits.fetch_add(1, Ordering::Relaxed);
                            return Some(f);
                        }
                        Err(why) => self.quarantine(dir, &path, &why),
                    }
                }
            }
        }
        self.frag_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `artifact` under `key` in memory and (atomically, with
    /// bounded retry) on disk. Equivalent to [`ArtifactCache::put_unit`]
    /// with no fragments. Persistent disk failure disables the disk
    /// layer for the rest of the run — see
    /// [`ArtifactCache::degradation_warning`].
    pub fn put(&self, key: &CacheKey, artifact: Arc<Artifact>) {
        self.put_unit(key, artifact, &[]);
    }

    /// Commits a unit: fragments first (content-addressed, fsynced),
    /// then the manifest by an atomic temp-file + rename — the
    /// crash-safety ordering from the module docs. Commits serialize on
    /// the in-process lock and the advisory cross-process lease; a
    /// crash anywhere before the manifest rename leaves the old unit
    /// (or a clean miss) visible, never a hybrid.
    pub fn put_unit(
        &self,
        key: &CacheKey,
        artifact: Arc<Artifact>,
        frags: &[(CacheKey, Arc<Fragment>)],
    ) {
        {
            let mut mem = lock_recover(&self.frag_mem);
            for (fk, frag) in frags {
                mem.insert(*fk, frag.clone());
            }
        }
        if let Some(dir) = self.live_dir() {
            let hex = key.hex();
            // In-process commits serialize here, so the on-disk lease
            // only ever mediates *cross-process* writers.
            let _guard = lock_recover(&self.commit_lock);
            let _lease = Lease::acquire(dir);
            // 1. Fragments, fsynced before the manifest that lists them.
            //    Content-addressed, so a crash that strands some is
            //    harmless: unreachable at worst, a warm start at best.
            let mut listed = Vec::with_capacity(frags.len());
            for (fk, frag) in frags {
                if self.disk_disabled.load(Ordering::Relaxed) {
                    break;
                }
                let fhex = fk.hex();
                let path = dir.join("frags").join(format!("{fhex}.frag"));
                if path.exists() {
                    listed.push(fhex);
                    continue;
                }
                let mut bytes = frag.to_bytes();
                if self.faults.fires(FaultSite::StoreFragCorrupt, &fhex) {
                    // Injected storage rot: flip one payload bit so the
                    // embedded digest fails on the next read.
                    if let Some(last) = bytes.last_mut() {
                        *last ^= 0x01;
                    }
                }
                if self.write_frag(dir, &fhex, &bytes) {
                    listed.push(fhex);
                }
            }
            // Fragment publish degraded the disk (e.g. ENOSPC): skip
            // the manifest — it would list fragments that never became
            // durable — and keep serving the unit from memory.
            if self.disk_disabled.load(Ordering::Relaxed) {
                lock_recover(&self.mem).insert(*key, artifact);
                return;
            }
            // 2. Simulated writer death between fragment write and
            //    manifest rename: nothing is published (and nothing
            //    reaches this process's unit memory) — a fresh reader
            //    sees either the old unit or a clean miss.
            if self.faults.fires(FaultSite::StorePutCrash, &hex) {
                return;
            }
            // 3. The manifest commit itself, with bounded retry.
            let manifest = Manifest {
                artifact: (*artifact).clone(),
                frags: listed,
            };
            let mut bytes = manifest.to_bytes();
            if self.faults.fires(FaultSite::StoreTornManifest, &hex) {
                // Injected torn publish (power loss mid-write): only a
                // prefix reaches disk. The embedded digest catches it
                // on the next read and the file is quarantined.
                bytes.truncate(bytes.len() / 2);
            }
            let mut last_err = String::new();
            let mut wrote = false;
            let retry_start = Instant::now();
            for attempt in 0..WRITE_ATTEMPTS {
                if attempt > 0 {
                    match backoff_delay(&hex, attempt, retry_start.elapsed()) {
                        Some(delay) => std::thread::sleep(delay),
                        // Out of time budget: treat like exhausted
                        // attempts and let the disk layer degrade.
                        None => break,
                    }
                }
                match self.write_once(dir, &hex, &bytes, attempt) {
                    Ok(()) => {
                        wrote = true;
                        break;
                    }
                    Err(e) => last_err = e.to_string(),
                }
            }
            if !wrote {
                self.disable_disk(&last_err);
            }
        }
        lock_recover(&self.mem).insert(*key, artifact);
    }

    /// One atomic manifest write attempt (durable temp file + rename),
    /// with the fault-injection probes for `attempt`.
    fn write_once(&self, dir: &Path, hex: &str, bytes: &[u8], attempt: u32) -> io::Result<()> {
        if self.faults.write_attempt_fails(hex, attempt) {
            return Err(io::Error::other(format!(
                "injected cache-write fault (attempt {attempt})"
            )));
        }
        if self.faults.fires(FaultSite::StoreFull, hex) {
            // Disk-full is persistent within a commit: every attempt
            // fails, so the retry ladder exhausts and degrades cleanly.
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected disk-full fault (ENOSPC)",
            ));
        }
        write_file_durable(dir, "units", hex, "man", bytes)
    }

    /// Publishes one content-addressed fragment with the same bounded
    /// retry ladder as manifests. Exhausted retries (read-only dir,
    /// `ENOSPC`) degrade the disk layer — one structured warning, then
    /// memory-only caching — instead of surfacing an error.
    fn write_frag(&self, dir: &Path, fhex: &str, bytes: &[u8]) -> bool {
        let mut last_err = String::new();
        let retry_start = Instant::now();
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                match backoff_delay(fhex, attempt, retry_start.elapsed()) {
                    Some(delay) => std::thread::sleep(delay),
                    None => break,
                }
            }
            if self.faults.fires(FaultSite::StoreFull, fhex) {
                last_err = "injected disk-full fault (ENOSPC)".to_string();
                continue;
            }
            match write_file_durable(dir, "frags", fhex, "frag", bytes) {
                Ok(()) => return true,
                Err(e) => last_err = e.to_string(),
            }
        }
        self.disable_disk(&last_err);
        false
    }

    /// Moves a file that failed integrity verification into `corrupt/`
    /// under a unique name, counts it, and records one structured
    /// warning. The file is never read again — a lost race (another
    /// process already moved it) counts and warns nowhere.
    fn quarantine(&self, dir: &Path, path: &Path, why: &str) {
        static QUAR_SEQ: AtomicU64 = AtomicU64::new(0);
        let corrupt = dir.join("corrupt");
        let _ = std::fs::create_dir_all(&corrupt);
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        let seq = QUAR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dest = corrupt.join(format!("{name}.{}.{seq}", std::process::id()));
        if std::fs::rename(path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            lock_recover(&self.warnings).push(format!(
                "quarantined corrupt store file `{}` -> `{}` ({why}); \
                 the unit will be recompiled",
                path.display(),
                dest.display()
            ));
        }
    }

    /// Degrades the cache to memory-only, recording the warning once.
    fn disable_disk(&self, last_err: &str) {
        if self.disk_disabled.swap(true, Ordering::Relaxed) {
            return; // already degraded; keep the first warning
        }
        let dir = self
            .dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_default();
        *lock_recover(&self.degradation) = Some(format!(
            "cache dir `{dir}` is not writable ({last_err} after {WRITE_ATTEMPTS} attempts); \
             continuing with in-memory caching only"
        ));
    }

    /// Whole-unit hits served since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Whole-unit misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Per-function fragment hits since construction.
    pub fn partial_hits(&self) -> u64 {
        self.partial_hits.load(Ordering::Relaxed)
    }

    /// Per-function fragment misses since construction.
    pub fn frag_misses(&self) -> u64 {
        self.frag_misses.load(Ordering::Relaxed)
    }

    /// Files quarantined to `corrupt/` since construction.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Stranded stale `.tmp` files swept when the store was opened.
    pub fn swept(&self) -> u64 {
        self.swept.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of every store counter.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            partial_hits: self.partial_hits(),
            frag_misses: self.frag_misses(),
            quarantined: self.quarantined(),
            swept: self.swept(),
        }
    }

    /// Drains the structured warnings recorded so far (quarantine
    /// events). Drivers print each once.
    pub fn drain_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *lock_recover(&self.warnings))
    }
}

/// Removes stranded `.tmp` debris under `units/` and `frags/`: the
/// dot-prefixed temp files a crashed writer left behind, but only those
/// untouched past the lease-staleness bound — a fresh one may belong to
/// a live writer mid-publish and must never be deleted from under it.
/// Returns how many files were removed.
fn sweep_stale_tmp(dir: &Path) -> u64 {
    let mut swept = 0;
    for sub in ["units", "frags"] {
        let Ok(entries) = std::fs::read_dir(dir.join(sub)) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !(name.starts_with('.') && name.ends_with(".tmp")) {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .map(|t| t.elapsed().unwrap_or(Duration::ZERO) > LEASE_STALE)
                .unwrap_or(false);
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
    }
    swept
}

/// Writes `bytes` durably to `<dir>/<sub>/<stem>.<ext>`: unique temp
/// file, `fsync`, then an atomic rename, so a reader never observes a
/// half-written file under the final name. Tmp names carry a per-write
/// sequence number: two threads writing the same key must not share one
/// tmp path, or a concurrent truncate + rename can publish a torn file.
fn write_file_durable(
    dir: &Path,
    sub: &str,
    stem: &str,
    ext: &str,
    bytes: &[u8],
) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let sub = dir.join(sub);
    let final_path = sub.join(format!("{stem}.{ext}"));
    let tmp_path = sub.join(format!(".{stem}.{}.{seq}.tmp", std::process::id()));
    let mut f = std::fs::File::create(&tmp_path)?;
    {
        use std::io::Write as _;
        if let Err(e) = f.write_all(bytes).and_then(|()| f.sync_all()) {
            drop(f);
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
    }
    drop(f);
    if let Err(e) = std::fs::rename(&tmp_path, &final_path) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        let d = Sha256::new().finish();
        assert_eq!(
            hex(&d),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let mut h = Sha256::new();
        h.update(b"abc");
        assert_eq!(
            hex(&h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let mut h = Sha256::new();
        h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            hex(&h.finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Split updates agree with one-shot hashing (buffer handling).
        let mut h = Sha256::new();
        let data = vec![0xabu8; 1000];
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        let mut g = Sha256::new();
        g.update(&data);
        assert_eq!(h.finish(), g.finish());
    }

    #[test]
    fn key_depends_on_sources_boundaries_and_options() {
        let fp = options_fingerprint(&GctdOptions::default());
        let a = CacheKey::compute(["ab", "c"], &fp);
        let b = CacheKey::compute(["a", "bc"], &fp);
        let c = CacheKey::compute(["ab", "c"], &fp);
        assert_ne!(a, b, "length prefixes keep file boundaries distinct");
        assert_eq!(a, c);
        let no_gctd = options_fingerprint(&GctdOptions {
            coalesce: false,
            ..GctdOptions::default()
        });
        assert_ne!(CacheKey::compute(["ab", "c"], &no_gctd), a);
        assert_eq!(a.hex().len(), 64);
    }

    #[test]
    fn fingerprint_covers_every_option() {
        let base = options_fingerprint(&GctdOptions::default());
        let variants = [
            GctdOptions {
                coalesce: false,
                ..GctdOptions::default()
            },
            GctdOptions {
                symbolic_criterion: false,
                ..GctdOptions::default()
            },
            GctdOptions {
                interference: crate::InterferenceOptions {
                    operator_semantics: false,
                    phi_coalescing: true,
                },
                ..GctdOptions::default()
            },
            GctdOptions {
                interference: crate::InterferenceOptions {
                    operator_semantics: true,
                    phi_coalescing: false,
                },
                ..GctdOptions::default()
            },
            GctdOptions {
                coloring: ColoringStrategy::SizeOrderedGreedy,
                ..GctdOptions::default()
            },
            GctdOptions {
                coloring: ColoringStrategy::Exhaustive { max_nodes: 9 },
                ..GctdOptions::default()
            },
        ];
        for v in &variants {
            assert_ne!(options_fingerprint(v), base, "{v:?} must alter the key");
        }
    }

    #[test]
    fn artifact_roundtrips_including_tricky_bytes() {
        let mut meta = BTreeMap::new();
        meta.insert("c_bytes".to_string(), 42u64);
        meta.insert("slots".to_string(), 3u64);
        let a = Artifact {
            c_code: "int main(void) {\n  return 0;\n}\nsection c 999\n".to_string(),
            plan_text: "slot 0 [heap]\n".to_string(),
            audit_json: "[]".to_string(),
            meta,
        };
        let b = Artifact::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.meta_value("c_bytes"), 42);
        assert_eq!(b.meta_value("absent"), 0);
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        assert!(Artifact::from_bytes(b"").is_err());
        assert!(Artifact::from_bytes(b"wrong magic\n").is_err());
        let a = Artifact {
            c_code: "x".to_string(),
            plan_text: String::new(),
            audit_json: "[]".to_string(),
            meta: BTreeMap::new(),
        };
        let mut bytes = a.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(Artifact::from_bytes(&bytes).is_err());
        // A crafted usize::MAX section length must degrade to an error,
        // not overflow the bounds check.
        let huge = format!("{ARTIFACT_MAGIC}\nsection c {}\nx\n", usize::MAX);
        assert!(Artifact::from_bytes(huge.as_bytes()).is_err());
        let exact = format!("{ARTIFACT_MAGIC}\nsection c {}\nxy", 2);
        assert!(
            Artifact::from_bytes(exact.as_bytes()).is_err(),
            "no newline after body"
        );
    }

    #[test]
    fn memory_cache_counts_hits_and_misses() {
        let cache = ArtifactCache::in_memory();
        let key = CacheKey::compute(["src"], "fp");
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.put(
            &key,
            Arc::new(Artifact {
                c_code: "c".to_string(),
                plan_text: "p".to_string(),
                audit_json: "[]".to_string(),
                meta: BTreeMap::new(),
            }),
        );
        assert!(cache.get(&key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disk_cache_roundtrips_across_instances() {
        let dir = std::env::temp_dir().join(format!("matc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["function f\n"], "fp");
        let artifact = Arc::new(Artifact {
            c_code: "int main(void) { return 0; }\n".to_string(),
            plan_text: "function f:\n".to_string(),
            audit_json: "[]".to_string(),
            meta: BTreeMap::from([("c_bytes".to_string(), 28u64)]),
        });
        {
            let cache = ArtifactCache::at_dir(&dir).unwrap();
            cache.put(&key, artifact.clone());
        }
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        let got = fresh.get(&key).expect("disk hit");
        assert_eq!(*got, *artifact);
        assert_eq!(fresh.hits(), 1);
        // Corrupt the stored manifest: the entry is quarantined (moved
        // aside, counted, one warning) and degrades to a miss.
        let path = dir.join("units").join(format!("{}.man", key.hex()));
        std::fs::write(&path, b"garbage").unwrap();
        let fresh2 = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh2.get(&key).is_none());
        assert_eq!(fresh2.quarantined(), 1);
        assert!(!path.exists(), "corrupt file moved to corrupt/");
        let warnings = fresh2.drain_warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("quarantined"), "{warnings:?}");
        // Re-read: a plain miss now — quarantine happens exactly once.
        assert!(fresh2.get(&key).is_none());
        assert_eq!(fresh2.quarantined(), 1);
        assert!(fresh2.drain_warnings().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_artifact(tag: &str) -> Arc<Artifact> {
        Arc::new(Artifact {
            c_code: format!("// {tag}\n"),
            plan_text: "p".to_string(),
            audit_json: "[]".to_string(),
            meta: BTreeMap::new(),
        })
    }

    #[test]
    fn injected_read_fault_degrades_to_miss() {
        let dir = std::env::temp_dir().join(format!("matc-cache-rfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["src"], "fp");
        ArtifactCache::at_dir(&dir)
            .unwrap()
            .put(&key, tiny_artifact("a"));
        // Fresh instance (empty memory layer) with a 100% read fault:
        // the intact on-disk artifact must read as torn, i.e. a miss.
        let faulty = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).cache_reads(100));
        assert!(faulty.get(&key).is_none());
        assert_eq!(faulty.misses(), 1);
        // Without the fault the same file still serves a hit — the
        // injection corrupted the read, not the stored artifact.
        let clean = ArtifactCache::at_dir(&dir).unwrap();
        assert!(clean.get(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_faults_clear_within_the_retry_budget() {
        let dir = std::env::temp_dir().join(format!("matc-cache-wfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["src"], "fp");
        let cache = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).cache_writes(100).transient(2));
        cache.put(&key, tiny_artifact("retry"));
        assert!(!cache.disk_degraded(), "two failures, third attempt lands");
        assert!(cache.degradation_warning().is_none());
        // The artifact reached disk: a fresh instance reads it back.
        assert!(ArtifactCache::at_dir(&dir).unwrap().get(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_write_failure_degrades_to_memory_only_with_one_warning() {
        let dir = std::env::temp_dir().join(format!("matc-cache-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key_a = CacheKey::compute(["a"], "fp");
        let key_b = CacheKey::compute(["b"], "fp");
        let cache = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).cache_writes(100).transient(u8::MAX));
        cache.put(&key_a, tiny_artifact("a"));
        assert!(cache.disk_degraded());
        let warning = cache.degradation_warning().expect("warning recorded");
        assert!(warning.contains("in-memory caching only"), "{warning}");
        // Degraded, not broken: memory layer still serves the entry.
        assert!(cache.get(&key_a).is_some());
        // Later puts skip disk entirely and keep the first warning.
        cache.put(&key_b, tiny_artifact("b"));
        assert_eq!(cache.degradation_warning().as_deref(), Some(&*warning));
        assert!(cache.get(&key_b).is_some());
        // Nothing was published to disk.
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh.get(&key_a).is_none());
        assert!(fresh.get(&key_b).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_backoff_is_jittered_deterministic_and_bounded() {
        for attempt in 1..=2u32 {
            let base = Duration::from_micros(1_000 << (attempt - 1));
            let mut distinct = std::collections::BTreeSet::new();
            for key in ["k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"] {
                let d = backoff_delay(key, attempt, Duration::ZERO)
                    .expect("zero elapsed never exceeds the cap");
                assert!(d >= base, "jitter only adds: {d:?} < {base:?}");
                assert!(d <= base * 2, "jitter is at most 100% of base: {d:?}");
                assert_eq!(
                    backoff_delay(key, attempt, Duration::ZERO),
                    Some(d),
                    "same key + attempt reproduces the same delay"
                );
                distinct.insert(d);
            }
            assert!(
                distinct.len() > 1,
                "attempt {attempt}: eight keys all backed off in lockstep"
            );
        }
    }

    #[test]
    fn write_backoff_total_elapsed_is_capped() {
        // At the cap (or past it) no further delay is granted.
        assert_eq!(backoff_delay("k", 1, WRITE_BACKOFF_CAP), None);
        assert_eq!(
            backoff_delay("k", 1, WRITE_BACKOFF_CAP + Duration::from_secs(1)),
            None
        );
        // Walking the real retry schedule, the summed sleeps of a full
        // WRITE_ATTEMPTS run always fit under the cap — attempts are
        // bounded by count *and* by time.
        for key in ["a", "b", "c"] {
            let mut elapsed = Duration::ZERO;
            let mut retries = 0;
            for attempt in 1..WRITE_ATTEMPTS {
                match backoff_delay(key, attempt, elapsed) {
                    Some(d) => {
                        elapsed += d;
                        retries += 1;
                    }
                    None => break,
                }
            }
            assert!(elapsed <= WRITE_BACKOFF_CAP, "{key}: {elapsed:?}");
            assert!(retries < WRITE_ATTEMPTS);
        }
    }

    #[test]
    fn concurrent_same_key_puts_never_publish_torn_artifacts() {
        // Regression: tmp names were keyed by key + pid only, so two
        // threads missing on one key shared a tmp path and could tear
        // each other's write. Writers of different sizes make a torn
        // publish parse as truncated.
        let dir = std::env::temp_dir().join(format!("matc-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::at_dir(&dir).unwrap();
        let key = CacheKey::compute(["src"], "fp");
        std::thread::scope(|s| {
            for t in 0..4usize {
                let cache = &cache;
                s.spawn(move || {
                    let a = Arc::new(Artifact {
                        c_code: format!("// writer {t}\n").repeat(500 * (t + 1)),
                        plan_text: "p".to_string(),
                        audit_json: "[]".to_string(),
                        meta: BTreeMap::new(),
                    });
                    for _ in 0..50 {
                        cache.put(&key, a.clone());
                    }
                });
            }
        });
        // Whichever writer won the final rename, the published file
        // must parse whole (a fresh instance forces the disk read).
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        let got = fresh.get(&key).expect("published artifact parses");
        assert!(got.c_code.starts_with("// writer "));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_fragment(tag: &str) -> Arc<Fragment> {
        Arc::new(Fragment {
            body: format!("static void f_{tag}(void) {{\n}}\n"),
            plan_text: format!("function {tag}:\n  slot 0\n"),
            findings: String::new(),
            meta: BTreeMap::from([("plan_slots".to_string(), 1u64)]),
        })
    }

    #[test]
    fn fragment_and_manifest_roundtrip_and_detect_every_bit_flip() {
        let frag = (*tiny_fragment("g")).clone();
        let bytes = frag.to_bytes();
        assert_eq!(Fragment::from_bytes(&bytes).unwrap(), frag);
        // Any single flipped bit — header or payload — fails parsing or
        // the embedded digest; nothing corrupt ever parses.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(
                Fragment::from_bytes(&b).is_err(),
                "flip at byte {i} accepted"
            );
        }
        assert!(Fragment::from_bytes(&bytes[..bytes.len() - 1]).is_err());

        let man = Manifest {
            artifact: (*tiny_artifact("m")).clone(),
            frags: vec![CacheKey::compute(["f"], "fp").hex()],
        };
        let bytes = man.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), man);
        let mut torn = bytes.clone();
        torn.truncate(bytes.len() / 2);
        assert!(Manifest::from_bytes(&torn).is_err(), "torn prefix accepted");
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(Manifest::from_bytes(&flipped).is_err());
    }

    #[test]
    fn corrupt_legacy_artifact_is_quarantined_once_with_one_warning() {
        let dir = std::env::temp_dir().join(format!("matc-cache-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::at_dir(&dir).unwrap();
        let key = CacheKey::compute(["legacy"], "fp");
        // Hand-corrupted flat file where pre-manifest writers put
        // artifacts: it must be moved aside once, not retried forever.
        let legacy = dir.join(format!("{}.art", key.hex()));
        std::fs::write(&legacy, b"not an artifact").unwrap();
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(!legacy.exists(), "corrupt file left in place");
        assert_eq!(std::fs::read_dir(dir.join("corrupt")).unwrap().count(), 1);
        let warnings = cache.drain_warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains(".art"), "{warnings:?}");
        // Second read: a clean miss, no second quarantine or warning.
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(cache.drain_warnings().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_unit_fragments_roundtrip_across_instances() {
        let dir = std::env::temp_dir().join(format!("matc-cache-frag-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["unit"], "fp");
        let fk = CacheKey::compute_parts("matc-frag-v1", ["fp", "ir of g"]);
        let frag = tiny_fragment("g");
        {
            let cache = ArtifactCache::at_dir(&dir).unwrap();
            cache.put_unit(&key, tiny_artifact("u"), &[(fk, frag.clone())]);
        }
        // A fresh instance (fresh process) serves both tiers off disk.
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh.get(&key).is_some());
        assert_eq!(*fresh.get_fragment(&fk).expect("fragment hit"), *frag);
        assert_eq!(
            fresh.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                partial_hits: 1,
                frag_misses: 0,
                quarantined: 0,
                swept: 0,
            }
        );
        // Unknown fragment key: a counted fragment miss.
        let other = CacheKey::compute_parts("matc-frag-v1", ["other"]);
        assert!(fresh.get_fragment(&other).is_none());
        assert_eq!(fresh.frag_misses(), 1);
        // The lease never outlives its commit.
        assert!(!dir.join("store.lease").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_degrades_to_memory_only_not_an_error() {
        let dir = std::env::temp_dir().join(format!("matc-cache-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["unit"], "fp");
        let fk = CacheKey::compute_parts("matc-frag-v1", ["fp", "ir of g"]);
        let cache = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).store_fulls(100));
        // A full disk during fragment publish degrades — one structured
        // warning, memory-only from here — instead of erroring out.
        cache.put_unit(&key, tiny_artifact("u"), &[(fk, tiny_fragment("g"))]);
        assert!(cache.disk_degraded());
        let warning = cache.degradation_warning().expect("warning recorded");
        assert!(warning.contains("in-memory caching only"), "{warning}");
        assert!(warning.contains("ENOSPC"), "{warning}");
        // Degraded, not broken: both tiers still serve from memory.
        assert!(cache.get(&key).is_some());
        assert!(cache.get_fragment(&fk).is_some());
        // Nothing partial reached disk — no manifest, no fragment.
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh.get(&key).is_none());
        assert_eq!(std::fs::read_dir(dir.join("frags")).unwrap().count(), 0);
        // A whole-unit put (no fragments) degrades the same way.
        let dir2 = std::env::temp_dir().join(format!("matc-cache-enospc2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir2);
        let cache2 = ArtifactCache::at_dir(&dir2)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).store_fulls(100));
        cache2.put(&key, tiny_artifact("v"));
        assert!(cache2.disk_degraded());
        assert!(cache2.get(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn store_open_sweeps_stale_tmp_debris_but_never_fresh_ones() {
        let dir = std::env::temp_dir().join(format!("matc-cache-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("units")).unwrap();
        std::fs::create_dir_all(dir.join("frags")).unwrap();
        // A crashed writer's debris: stale tmp files in both tiers,
        // backdated past the lease-staleness bound.
        let stale_unit = dir.join("units").join(".deadbeef.1.0.tmp");
        let stale_frag = dir.join("frags").join(".cafebabe.1.1.tmp");
        // A live writer's in-flight tmp (fresh mtime) plus a published
        // file: neither may be touched.
        let fresh_tmp = dir.join("units").join(".feedface.2.0.tmp");
        let published = dir.join("units").join("deadbeef.man");
        for p in [&stale_unit, &stale_frag, &fresh_tmp, &published] {
            std::fs::write(p, b"bytes").unwrap();
        }
        let old = std::time::SystemTime::now() - (LEASE_STALE + Duration::from_secs(8));
        for p in [&stale_unit, &stale_frag] {
            let f = std::fs::OpenOptions::new().write(true).open(p).unwrap();
            f.set_times(std::fs::FileTimes::new().set_modified(old))
                .unwrap();
        }
        let cache = ArtifactCache::at_dir(&dir).unwrap();
        assert_eq!(cache.swept(), 2);
        assert_eq!(cache.stats().swept, 2);
        assert!(!stale_unit.exists() && !stale_frag.exists());
        assert!(fresh_tmp.exists(), "live writer's tmp swept from under it");
        assert!(published.exists());
        // Reopening after the sweep finds nothing stale.
        assert_eq!(ArtifactCache::at_dir(&dir).unwrap().swept(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_crash_publishes_nothing_and_torn_manifest_heals() {
        let dir = std::env::temp_dir().join(format!("matc-cache-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["unit"], "fp");
        let old = tiny_artifact("old");
        ArtifactCache::at_dir(&dir).unwrap().put(&key, old.clone());
        // A writer dying between fragment write and manifest rename
        // publishes nothing: a fresh process still sees the old unit.
        let crashing = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).put_crashes(100));
        crashing.put(&key, tiny_artifact("new"));
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        assert_eq!(*fresh.get(&key).expect("old unit intact"), *old);
        // A torn manifest publish fails its embedded digest on the next
        // read, is quarantined, and reads as a clean miss.
        let tearing = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).torn_manifests(100));
        tearing.put(&key, tiny_artifact("newer"));
        let fresh2 = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh2.get(&key).is_none(), "torn manifest must not serve");
        assert_eq!(fresh2.quarantined(), 1);
        // Self-healing: the recompiled unit commits and serves again.
        fresh2.put(&key, tiny_artifact("healed"));
        let fresh3 = ArtifactCache::at_dir(&dir).unwrap();
        assert_eq!(fresh3.get(&key).unwrap().c_code, "// healed\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fragment_corruption_quarantines_on_read_and_reheals() {
        let dir = std::env::temp_dir().join(format!("matc-cache-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = CacheKey::compute(["unit"], "fp");
        let fk = CacheKey::compute_parts("matc-frag-v1", ["fp", "ir of g"]);
        let frag = tiny_fragment("g");
        let corrupting = ArtifactCache::at_dir(&dir)
            .unwrap()
            .with_faults(FaultPlan::quiet(1).frag_corruptions(100));
        corrupting.put_unit(&key, tiny_artifact("u"), &[(fk, frag.clone())]);
        // Fresh process: the manifest is fine, but the rotted fragment
        // fails its digest, is quarantined, and reads as a miss — never
        // served corrupt.
        let fresh = ArtifactCache::at_dir(&dir).unwrap();
        assert!(fresh.get(&key).is_some(), "manifest unaffected by rot");
        assert!(fresh.get_fragment(&fk).is_none());
        assert_eq!((fresh.quarantined(), fresh.frag_misses()), (1, 1));
        // Healing: a clean rewrite of the same fragment serves again.
        fresh.put_unit(&key, tiny_artifact("u"), &[(fk, frag.clone())]);
        let fresh2 = ArtifactCache::at_dir(&dir).unwrap();
        assert_eq!(*fresh2.get_fragment(&fk).unwrap(), *frag);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_stolen_and_live_lease_is_respected() {
        let dir = std::env::temp_dir().join(format!("matc-cache-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An unparseable owner is provably stale: stolen immediately.
        std::fs::write(dir.join("store.lease"), b"not-a-pid").unwrap();
        let held = Lease::acquire(&dir).expect("stale lease stolen");
        // A live lease (fresh, owned by a running pid) is respected:
        // the contender times out and proceeds unleased instead of
        // stealing or blocking.
        assert!(Lease::acquire(&dir).is_none());
        drop(held);
        assert!(!dir.join("store.lease").exists(), "released on drop");
        assert!(Lease::acquire(&dir).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
