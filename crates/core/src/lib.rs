//! # matc-gctd
//!
//! **GCTD — Graph Coloring with Type-based Decomposition**: the array
//! storage coalescing algorithm of *Static Array Storage Optimization in
//! MATLAB* (Joisha & Banerjee, PLDI 2003), this repository's primary
//! contribution.
//!
//! * **Phase 1** ([`interference`], [`coloring`]): a Chaitin-style
//!   interference graph over live∩available variables, augmented with
//!   *operator-semantics conflicts* resolved through inferred types
//!   (§2.3), φ-coalescing to neutralize SSA-inversion copies (§2.2.1),
//!   and a greedy minimal-ish coloring (§2.4).
//! * **Phase 2** ([`order`], [`plan`]): the storage-size partial order ⪯
//!   (Relation 1) built from intrinsic types, (symbolic) shape tuples and
//!   control flow; `Decompose-color-class` splits each color class into
//!   groups bound to one storage slot each — fixed stack buffers for
//!   statically estimable groups, resize-on-the-fly heap areas otherwise.
//!
//! The result is a [`plan::StoragePlan`] consumed by the planned VM
//! (`matc-vm`) and the C backend (`matc-codegen`).
//!
//! ## Example
//!
//! ```
//! use matc_frontend::parser::parse_program;
//! use matc_ir::build_ssa;
//! use matc_typeinf::infer_program;
//! use matc_gctd::{plan_program, GctdOptions};
//!
//! let ast = parse_program([
//!     "function driver()\na = kernel(64);\ndisp(a(1));\nend\n",
//!     "function c = kernel(n)\na = rand(n, n);\nb = a + 1;\nc = b .* b;\nend\n",
//! ]).unwrap();
//! let mut ir = build_ssa(&ast).unwrap();
//! matc_passes::optimize_program(&mut ir);
//! let mut types = infer_program(&ir);
//! let plan = plan_program(&ir, &mut types, GctdOptions::default());
//! let stats = plan.total_stats();
//! assert!(stats.static_subsumed > 0, "a, b, c share one 64x64 buffer");
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod coloring;
pub mod fault;
pub mod interference;
pub mod isolate;
pub mod liveness;
pub mod metrics;
pub mod order;
pub mod plan;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerMap, BreakerState};
pub use cache::{options_fingerprint, Artifact, ArtifactCache, CacheKey, CacheStats, Fragment};
pub use coloring::{Coloring, ColoringStrategy};
pub use fault::{fnv1a, splitmix64, FaultPlan, FaultSite, FAULTS_ENV};
pub use interference::{InterferenceGraph, InterferenceOptions};
pub use isolate::{isolate, lock_recover};
pub use liveness::Dataflow;
pub use metrics::{
    BatchReport, BudgetEvent, CacheOutcome, DegradationEvent, Phase, PhaseTimer, ShadowStats,
    UnitMetrics,
};
pub use order::{decompose_color_class, IndexGroup, SizeClass, Sizing};
pub use plan::{
    plan_function, plan_function_budgeted, plan_program, plan_program_with, GctdOptions, PlanStats,
    ProgramPlan, ResizeKind, SlotInfo, SlotKind, StoragePlan,
};

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;
    use matc_ir::ids::VarId;
    use matc_ir::{FuncIr, IrProgram};
    use matc_typeinf::{infer_program, ProgramTypes};

    fn pipeline(srcs: &[&str]) -> (IrProgram, ProgramTypes) {
        let ast = parse_program(srcs.iter().copied()).unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        matc_passes::optimize_program(&mut ir);
        let types = infer_program(&ir);
        (ir, types)
    }

    fn var(f: &FuncIr, name: &str, version: u32) -> VarId {
        f.vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == version)
            .map(|(v, _)| v)
            .unwrap_or_else(|| panic!("no {name}.{version} in\n{f}"))
    }

    #[test]
    fn example1_nonresized_symbolic_chain_shares_storage() {
        // Paper Example 1: t1 = t0 - 1.345; t2 = 2.788 .* t1; t3 = tan(t2)
        // with nothing known about t0 — all COMPLEX, same symbolic shape;
        // all bound to one heap slot with ∘ (no-resize) definitions.
        let (ir, mut types) = pipeline(&[
            "function t3 = f(t0)\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\nt3 = tan(t2);\n",
        ]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());

        let t0 = f.params[0];
        let t1 = var(f, "t1", 1);
        let t2 = var(f, "t2", 1);
        let t3 = var(f, "t3", 1);
        assert!(plan.share_storage(t0, t1), "{f}");
        assert!(plan.share_storage(t1, t2));
        assert!(plan.share_storage(t2, t3));
        let slot = plan.slot_of(t0).unwrap();
        assert_eq!(plan.slots[slot].kind, SlotKind::Heap);
        // Subsequent definitions need no resizing (identical sizes).
        assert_eq!(plan.resize_of(t1), ResizeKind::NoResize, "{plan:?}");
        assert_eq!(plan.resize_of(t2), ResizeKind::NoResize);
        assert_eq!(plan.resize_of(t3), ResizeKind::NoResize);
    }

    #[test]
    fn example2_expandable_array_grows_in_place() {
        // Paper Example 2: a = eye(x, y); b = subsasgn(a, 1, i1, i2).
        // a and b don't interfere and S(a) ⪯ S(b); b grows in a's slot.
        let (ir, mut types) =
            pipeline(&["function b = f(x, y, i1, i2)\na = eye(x, y);\nb = a;\nb(i1, i2) = 1;\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        // After copy propagation the subsasgn's array operand is a.1 and
        // its destination the SSA version of b.
        let a = var(f, "a", 1);
        let b = f.ssa_outs[0];
        assert!(plan.share_storage(a, b), "{f}\n{plan:?}");
        assert_eq!(plan.resize_of(b), ResizeKind::Grow, "`+` annotation");
    }

    #[test]
    fn example2_static_variant_stack_allocates_maximal() {
        // With known extents both are stack allocated in one maximal
        // buffer (here equal sizes).
        let (ir, mut types) =
            pipeline(&["function b = f()\na = eye(4, 4);\nb = a;\nb(2, 3) = 1;\ndisp(b);\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        let a = var(f, "a", 1);
        let slot = plan.slot_of(a).expect("a planned");
        match plan.slots[slot].kind {
            SlotKind::Stack { bytes } => assert_eq!(bytes, 16, "4x4 BOOLEAN"),
            k => panic!("expected stack slot, got {k:?}"),
        }
    }

    #[test]
    fn mixed_estimability_blocks_sharing() {
        // §3.2/Example 2 end: if only one of two non-interfering arrays
        // is statically estimable, they don't share.
        let (ir, mut types) = pipeline(&[
            "function f(n)\na = rand(4, 4);\ns = sum(sum(a));\nb = rand(n, n);\nt = sum(sum(b));\nfprintf('%g %g\\n', s, t);\n",
        ]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        let a = var(f, "a", 1);
        let b = var(f, "b", 1);
        assert!(
            !plan.share_storage(a, b),
            "static a and dynamic b may not share\n{f}"
        );
    }

    #[test]
    fn equal_static_sizes_share_stack_slot() {
        let (ir, mut types) = pipeline(&[
            "function f()\na = rand(8, 8);\nfprintf('%g\\n', sum(sum(a)));\nb = rand(8, 8);\nfprintf('%g\\n', sum(sum(b)));\n",
        ]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        let a = var(f, "a", 1);
        let b = var(f, "b", 1);
        assert!(plan.share_storage(a, b), "{f}");
        assert!(plan.stats.static_subsumed >= 1);
        assert!(plan.stats.stack_bytes_saved >= 8 * 8 * 8);
    }

    #[test]
    fn without_coalescing_every_var_is_alone() {
        let (ir, mut types) =
            pipeline(&["function f()\na = rand(8, 8);\nb = a + 1;\nc = b + 1;\ndisp(c(1));\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(
            f,
            fid,
            &mut types,
            GctdOptions {
                coalesce: false,
                ..GctdOptions::default()
            },
        );
        for slot in &plan.slots {
            assert_eq!(slot.members.len(), 1);
        }
        assert_eq!(plan.stats.static_subsumed, 0);
        assert_eq!(plan.stats.stack_bytes_saved, 0);
    }

    #[test]
    fn loop_accumulator_lives_in_one_slot() {
        let (ir, mut types) =
            pipeline(&["function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + i;\nend\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        // All non-literal SSA versions of s in the same slot
        // (φ-coalescing; `s = 0` itself is an immediate).
        let versions: Vec<VarId> = f
            .vars
            .iter()
            .filter(|(_, i)| i.name.as_deref() == Some("s") && i.ssa_version > 0)
            .map(|(v, _)| v)
            .filter(|v| plan.slot_of(*v).is_some())
            .collect();
        assert!(versions.len() >= 2);
        let s0 = plan.slot_of(versions[0]).unwrap();
        for v in versions {
            assert_eq!(plan.slot_of(v), Some(s0), "{f}");
        }
    }

    #[test]
    fn growing_loop_array_uses_grow_annotation() {
        let (ir, mut types) =
            pipeline(&["function a = f(n)\na = zeros(1, 1);\nfor i = 1:n\na(i) = i;\nend\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        // Find the subsasgn destination; it must grow in place.
        let mut found = false;
        for b in f.block_ids() {
            for instr in &f.block(b).instrs {
                if let matc_ir::InstrKind::Compute {
                    dst,
                    op: matc_ir::Op::Subsasgn,
                    args,
                } = &instr.kind
                {
                    if let Some(matc_ir::Operand::Var(src)) = args.first() {
                        if plan.share_storage(*dst, *src) {
                            assert_eq!(plan.resize_of(*dst), ResizeKind::Grow);
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(found, "in-place growing subsasgn expected:\n{f}");
    }

    #[test]
    fn program_plan_covers_all_functions() {
        let (ir, mut types) = pipeline(&[
            "function driver()\nx = kernel(8);\ndisp(x(1));\nend\nfunction a = kernel(n)\na = rand(n, n);\nend\n",
        ]);
        let plan = plan_program(&ir, &mut types, GctdOptions::default());
        assert_eq!(plan.plans.len(), ir.functions.len());
        let t = plan.total_stats();
        assert!(t.original_vars > 0);
    }

    #[test]
    fn different_intrinsics_do_not_group() {
        // A complex array and a real array of identical static size must
        // not share a slot (Relation 1 requires identical intrinsics).
        let (ir, mut types) = pipeline(&[
            "function f()\na = sqrt(zeros(4, 4) - 1);\ns = sum(sum(abs(a)));\nb = rand(4, 4);\nt = sum(sum(b));\nfprintf('%g %g\\n', s, t);\n",
        ]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let plan = plan_function(f, fid, &mut types, GctdOptions::default());
        let a = var(f, "a", 1);
        let b = var(f, "b", 1);
        assert!(!plan.share_storage(a, b), "COMPLEX vs REAL\n{f}");
    }

    #[test]
    fn symbolic_criterion_ablation_splits_heap_groups() {
        let (ir, mut types) =
            pipeline(&["function t3 = f(t0)\nt1 = t0 - 1.0;\nt2 = t1 .* 2.0;\nt3 = tan(t2);\n"]);
        let fid = ir.entry.unwrap();
        let f = ir.entry_func();
        let with = plan_function(f, fid, &mut types, GctdOptions::default());
        let without = plan_function(
            f,
            fid,
            &mut types,
            GctdOptions {
                symbolic_criterion: false,
                ..GctdOptions::default()
            },
        );
        assert!(
            without.stats.slots >= with.stats.slots,
            "disabling the symbolic criterion cannot reduce slot count"
        );
        assert!(without.stats.dynamic_subsumed <= with.stats.dynamic_subsumed);
    }
}
