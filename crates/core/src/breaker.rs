//! Per-key circuit breakers for the compile service.
//!
//! The `matc serve` daemon compiles whatever sources clients send it. A
//! unit that reliably panics the planner (or reliably fails its audit)
//! would otherwise burn a worker thread — and a `catch_unwind` ride
//! through the degradation ladder — on every retry a client throws at
//! it. A [`BreakerMap`] quarantines such units by their content hash:
//!
//! * **Closed** — requests flow; consecutive failures are counted, a
//!   success resets the count.
//! * **Open** — after `threshold` *consecutive* failures the key is
//!   quarantined: requests are rejected structurally (no compile is
//!   attempted) until `cooldown` has elapsed.
//! * **Half-open** — after the cooldown, exactly one probe request is
//!   admitted. Its success closes the breaker; its failure re-opens it
//!   for another cooldown. Concurrent requests during the probe are
//!   still rejected, so a flapping unit cannot stampede the pool.
//!
//! Time is passed in by the caller (`Instant::now()` at the service
//! edge), which keeps every transition unit-testable without sleeping.

use crate::isolate::lock_recover;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for a [`BreakerMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// How long an open breaker rejects before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Where a key's breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Quarantined: rejecting until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name used in stats JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed breaker: run the request.
    Allow,
    /// Half-open probe: run the request; its outcome decides the
    /// breaker's fate, so the caller *must* report it.
    AllowProbe,
    /// Open breaker (or probe already in flight): reject without
    /// compiling.
    Reject,
}

#[derive(Debug)]
struct Breaker {
    consecutive_failures: u32,
    state: BreakerState,
    /// When the breaker last opened; the cooldown counts from here.
    opened_at: Option<Instant>,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }
}

/// A map of per-key circuit breakers (keys are unit content hashes).
///
/// All methods take `&self`; the map is internally locked so one
/// instance can be shared across the daemon's worker threads.
#[derive(Debug)]
pub struct BreakerMap {
    config: BreakerConfig,
    inner: Mutex<HashMap<String, Breaker>>,
}

impl BreakerMap {
    /// An empty map with the given tuning.
    pub fn new(config: BreakerConfig) -> BreakerMap {
        BreakerMap {
            config,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check for `key` at time `now`. A key with no history is
    /// always allowed (no entry is created until a failure is
    /// recorded).
    pub fn check(&self, key: &str, now: Instant) -> BreakerDecision {
        let mut map = lock_recover(&self.inner);
        let Some(b) = map.get_mut(key) else {
            return BreakerDecision::Allow;
        };
        match b.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::HalfOpen => BreakerDecision::Reject,
            BreakerState::Open => {
                let cooled = b
                    .opened_at
                    .is_none_or(|t| now.saturating_duration_since(t) >= self.config.cooldown);
                if cooled {
                    b.state = BreakerState::HalfOpen;
                    BreakerDecision::AllowProbe
                } else {
                    BreakerDecision::Reject
                }
            }
        }
    }

    /// Records a successful compile for `key`: resets the failure count
    /// and closes the breaker (a successful half-open probe recovers
    /// the key).
    pub fn record_success(&self, key: &str) {
        let mut map = lock_recover(&self.inner);
        if let Some(b) = map.get_mut(key) {
            b.consecutive_failures = 0;
            b.state = BreakerState::Closed;
            b.opened_at = None;
        }
    }

    /// Records a failed compile (panic, audit rejection) for `key` at
    /// time `now`. A failed half-open probe re-opens immediately; in the
    /// closed state the `threshold`-th consecutive failure opens the
    /// breaker.
    pub fn record_failure(&self, key: &str, now: Instant) {
        let mut map = lock_recover(&self.inner);
        let b = map.entry(key.to_string()).or_insert_with(Breaker::new);
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        match b.state {
            BreakerState::HalfOpen => {
                b.state = BreakerState::Open;
                b.opened_at = Some(now);
            }
            BreakerState::Closed if b.consecutive_failures >= self.config.threshold => {
                b.state = BreakerState::Open;
                b.opened_at = Some(now);
            }
            _ => {}
        }
    }

    /// The current state of `key`'s breaker (Closed when unknown).
    /// Purely observational: unlike [`BreakerMap::check`] it never
    /// transitions Open → HalfOpen.
    pub fn state(&self, key: &str) -> BreakerState {
        lock_recover(&self.inner)
            .get(key)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// Count of keys per state, for the stats document:
    /// `(closed, open, half_open)`. Only keys with recorded history are
    /// counted.
    pub fn counts(&self) -> (usize, usize, usize) {
        let map = lock_recover(&self.inner);
        let mut c = (0, 0, 0);
        for b in map.values() {
            match b.state {
                BreakerState::Closed => c.0 += 1,
                BreakerState::Open => c.1 += 1,
                BreakerState::HalfOpen => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(threshold: u32, cooldown_ms: u64) -> BreakerMap {
        BreakerMap::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn unknown_keys_are_allowed_without_creating_state() {
        let m = map(3, 100);
        let now = Instant::now();
        assert_eq!(m.check("k", now), BreakerDecision::Allow);
        assert_eq!(m.state("k"), BreakerState::Closed);
        assert_eq!(m.counts(), (0, 0, 0));
    }

    #[test]
    fn opens_only_after_threshold_consecutive_failures() {
        let m = map(3, 100);
        let now = Instant::now();
        m.record_failure("k", now);
        m.record_failure("k", now);
        assert_eq!(m.check("k", now), BreakerDecision::Allow, "2 < threshold");
        // A success resets the streak.
        m.record_success("k");
        m.record_failure("k", now);
        m.record_failure("k", now);
        assert_eq!(m.check("k", now), BreakerDecision::Allow);
        m.record_failure("k", now);
        assert_eq!(m.state("k"), BreakerState::Open);
        assert_eq!(m.check("k", now), BreakerDecision::Reject);
        assert_eq!(m.counts(), (0, 1, 0));
    }

    #[test]
    fn cooldown_admits_one_probe_then_rejects_concurrents() {
        let m = map(1, 50);
        let t0 = Instant::now();
        m.record_failure("k", t0);
        assert_eq!(m.check("k", t0), BreakerDecision::Reject);
        let cooled = t0 + Duration::from_millis(50);
        assert_eq!(m.check("k", cooled), BreakerDecision::AllowProbe);
        // While the probe is in flight, everyone else is rejected.
        assert_eq!(m.check("k", cooled), BreakerDecision::Reject);
        assert_eq!(m.state("k"), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let m = map(1, 50);
        let t0 = Instant::now();
        m.record_failure("bad", t0);
        let cooled = t0 + Duration::from_millis(50);
        assert_eq!(m.check("bad", cooled), BreakerDecision::AllowProbe);
        m.record_failure("bad", cooled);
        assert_eq!(m.state("bad"), BreakerState::Open);
        assert_eq!(
            m.check("bad", cooled + Duration::from_millis(1)),
            BreakerDecision::Reject,
            "re-opened breaker restarts its cooldown"
        );
        let recooled = cooled + Duration::from_millis(50);
        assert_eq!(m.check("bad", recooled), BreakerDecision::AllowProbe);
        m.record_success("bad");
        assert_eq!(m.state("bad"), BreakerState::Closed);
        assert_eq!(m.check("bad", recooled), BreakerDecision::Allow);
        assert_eq!(m.counts(), (1, 0, 0));
    }

    #[test]
    fn keys_are_independent() {
        let m = map(1, 1_000);
        let now = Instant::now();
        m.record_failure("a", now);
        assert_eq!(m.check("a", now), BreakerDecision::Reject);
        assert_eq!(m.check("b", now), BreakerDecision::Allow);
        assert_eq!(m.counts(), (0, 1, 0));
    }

    #[test]
    fn state_names_are_stable_for_stats() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }
}
