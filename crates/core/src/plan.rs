//! Storage-plan assembly: GCTD end to end.
//!
//! Runs Phase 1 (interference + coloring) and Phase 2 (storage-size
//! partial order + decomposition) over each function, then binds every
//! variable to a **slot** — one storage area per group. Statically
//! estimable groups become fixed-size **stack** slots (§3.2.1); the rest
//! become **heap** slots resized on the fly (§3.2.2), with each
//! definition annotated `∘` (no resize), `+` (grow, preserving
//! contents — `subsasgn`) or `±` (resize to the definition's needs).
//!
//! The plan also carries the coalescing statistics behind the paper's
//! Table 2.

use crate::coloring::{Coloring, ColoringStrategy};
use crate::interference::{InterferenceGraph, InterferenceOptions};
use crate::liveness::Dataflow;
use crate::metrics::{Phase, UnitMetrics};
use crate::order::{decompose_color_class, SizeClass, Sizing};
use matc_ir::ids::{FuncId, VarId};
use matc_ir::instr::{InstrKind, Op, Operand};
use matc_ir::{Budget, BudgetError, FuncIr, IrProgram};
use matc_typeinf::{ExprId, Intrinsic, ProgramTypes};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Options for a GCTD run (ablations and the Figure 6 baseline).
#[derive(Debug, Clone, Copy)]
pub struct GctdOptions {
    /// Master switch: `false` reproduces "mat2c without GCTD" — every
    /// variable gets its own storage (Figure 6).
    pub coalesce: bool,
    /// Phase 1 options.
    pub interference: InterferenceOptions,
    /// Enable Relation 1's second (symbolic) criterion; disabling it is
    /// the "clump nothing dynamic" ablation the paper argues against.
    pub symbolic_criterion: bool,
    /// Coloring strategy (§2.4's lexical greedy by default; see
    /// [`ColoringStrategy`] for the §5-motivated alternatives).
    pub coloring: ColoringStrategy,
}

impl Default for GctdOptions {
    fn default() -> Self {
        GctdOptions {
            coalesce: true,
            interference: InterferenceOptions::default(),
            symbolic_criterion: true,
            coloring: ColoringStrategy::LexicalGreedy,
        }
    }
}

/// Where a slot lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Fixed-size stack storage (statically estimable group).
    Stack {
        /// The group's byte size (the maximal element's).
        bytes: u64,
    },
    /// Heap storage, resized on the fly.
    Heap,
}

/// One storage area shared by a group of variables.
#[derive(Debug, Clone)]
pub struct SlotInfo {
    /// Stack or heap.
    pub kind: SlotKind,
    /// The group's (joined) intrinsic type.
    pub intrinsic: Intrinsic,
    /// All variables bound to this slot.
    pub members: Vec<VarId>,
}

/// Per-definition resize annotation (§3.2.2, Examples 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeKind {
    /// `∘` — the slot already has exactly this size.
    NoResize,
    /// `+` — grow only, preserving contents (subsasgn).
    Grow,
    /// `±` — resize to this definition's needs.
    Resize,
}

/// Coalescing statistics (Table 2 inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Variables in the CFG on entry to GCTD ("Original Variable Count").
    pub original_vars: usize,
    /// Statically-estimable variables subsumed into another's storage
    /// (the `s` of Table 2's `s/d`).
    pub static_subsumed: usize,
    /// Dynamically-allocated variables statically subsumed within
    /// another dynamic variable (`d`).
    pub dynamic_subsumed: usize,
    /// Bytes of stack storage saved by coalescing (Table 2's "Storage
    /// Reduction", conservative: heap savings not counted).
    pub stack_bytes_saved: u64,
    /// Total bytes of the coalesced stack frame.
    pub stack_bytes_total: u64,
    /// Colors used by the greedy heuristic.
    pub colors: u32,
    /// φ-coalescings performed.
    pub coalesced_phis: usize,
    /// Operator-semantics conflicts inserted.
    pub op_conflicts: usize,
    /// Number of storage slots in the plan.
    pub slots: usize,
}

/// The storage plan of one function.
#[derive(Debug, Clone)]
pub struct StoragePlan {
    /// The planned function's name.
    pub func_name: String,
    /// All slots.
    pub slots: Vec<SlotInfo>,
    /// Slot index per variable.
    pub var_slot: BTreeMap<VarId, usize>,
    /// Resize annotation per (SSA) definition of heap-slot variables.
    pub resize: BTreeMap<VarId, ResizeKind>,
    /// Statistics.
    pub stats: PlanStats,
}

impl StoragePlan {
    /// The slot of variable `v`, if planned.
    pub fn slot_of(&self, v: VarId) -> Option<usize> {
        self.var_slot.get(&v).copied()
    }

    /// Whether `a` and `b` share storage.
    pub fn share_storage(&self, a: VarId, b: VarId) -> bool {
        match (self.slot_of(a), self.slot_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The resize annotation of a definition (defaults to `±` for heap,
    /// `∘` for stack members).
    pub fn resize_of(&self, v: VarId) -> ResizeKind {
        if let Some(r) = self.resize.get(&v) {
            return *r;
        }
        match self.slot_of(v).map(|s| self.slots[s].kind) {
            Some(SlotKind::Heap) => ResizeKind::Resize,
            _ => ResizeKind::NoResize,
        }
    }
}

/// Plans of every function in a program, indexed by [`FuncId`].
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    /// Per-function plans.
    pub plans: Vec<StoragePlan>,
    /// Options used.
    pub options: GctdOptions,
}

impl ProgramPlan {
    /// The plan of function `f`.
    pub fn plan(&self, f: FuncId) -> &StoragePlan {
        &self.plans[f.index()]
    }

    /// Program-wide aggregated statistics (Table 2 rows sum functions).
    pub fn total_stats(&self) -> PlanStats {
        let mut t = PlanStats::default();
        for p in &self.plans {
            t.original_vars += p.stats.original_vars;
            t.static_subsumed += p.stats.static_subsumed;
            t.dynamic_subsumed += p.stats.dynamic_subsumed;
            t.stack_bytes_saved += p.stats.stack_bytes_saved;
            t.stack_bytes_total += p.stats.stack_bytes_total;
            t.colors += p.stats.colors;
            t.coalesced_phis += p.stats.coalesced_phis;
            t.op_conflicts += p.stats.op_conflicts;
            t.slots += p.stats.slots;
        }
        t
    }
}

/// Runs GCTD over every function of an SSA program.
pub fn plan_program(
    prog: &IrProgram,
    types: &mut ProgramTypes,
    options: GctdOptions,
) -> ProgramPlan {
    let plans = (0..prog.functions.len())
        .map(|i| plan_function(prog.func(FuncId::new(i)), FuncId::new(i), types, options))
        .collect();
    ProgramPlan { plans, options }
}

/// [`plan_program`] with phase observability: per-phase wall times
/// (interference build, coloring, decomposition) and interference-graph
/// node/edge totals accumulate into `rec`. Produces exactly the same
/// plan as the unrecorded entry point.
pub fn plan_program_with(
    prog: &IrProgram,
    types: &mut ProgramTypes,
    options: GctdOptions,
    rec: &mut UnitMetrics,
) -> ProgramPlan {
    let budget = Budget::unlimited();
    let plans = (0..prog.functions.len())
        .map(|i| {
            plan_function_budgeted(
                prog.func(FuncId::new(i)),
                FuncId::new(i),
                types,
                options,
                &budget,
                Some(rec),
            )
            .expect("unlimited budget cannot trip")
        })
        .collect();
    ProgramPlan { plans, options }
}

/// Node-level sizing facts for a coalesced interference class.
struct NodeFacts {
    members: Vec<VarId>,
    intrinsic: Intrinsic,
    size: Option<NodeSize>,
}

enum NodeSize {
    Static(u64),
    Dynamic(ExprId),
}

/// Runs GCTD over one function.
pub fn plan_function(
    func: &FuncIr,
    fid: FuncId,
    types: &mut ProgramTypes,
    options: GctdOptions,
) -> StoragePlan {
    let budget = Budget::unlimited();
    plan_function_budgeted(func, fid, types, options, &budget, None)
        .expect("unlimited budget cannot trip")
}

/// [`plan_function`] under a [`Budget`] with optional phase recording
/// (see [`plan_program_with`]; the `rec: None` path takes no
/// timestamps). The budget's fuel charges cover the dataflow fixpoints,
/// the interference-graph backward scan, and the coloring search — the
/// three input-dependent parts of GCTD — under the phase names
/// `"interference"`, `"coloring"` and `"decompose"`.
///
/// # Errors
///
/// Returns the [`BudgetError`] that tripped; no partial plan is
/// produced, so the caller can re-plan the same function with the
/// conservative all-heap options instead.
///
/// # Panics
///
/// Panics if `func` is not in SSA form.
pub fn plan_function_budgeted(
    func: &FuncIr,
    fid: FuncId,
    types: &mut ProgramTypes,
    options: GctdOptions,
    budget: &Budget,
    mut rec: Option<&mut UnitMetrics>,
) -> Result<StoragePlan, BudgetError> {
    assert!(func.in_ssa, "GCTD runs on SSA");
    let t = Instant::now();
    budget.enter_phase("interference");
    let flow = Dataflow::compute_budgeted(func, budget)?;
    let dataflow_elapsed = t.elapsed();
    let graph = {
        let ftypes = &types.funcs[fid.index()];
        InterferenceGraph::build_budgeted(func, &flow, ftypes, types, options.interference, budget)?
    };
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::Interference, t.elapsed());
        r.interference_nodes += graph.node_count();
        r.interference_edges += graph.edge_count();
        r.dataflow_nanos += dataflow_elapsed.as_nanos() as u64;
        r.dataflow_iters += flow.worklist_iterations();
        r.peak_live_words = r.peak_live_words.max(flow.live_set_words() as u64);
    }
    let t = Instant::now();
    let sizing = Sizing::compute(func, fid, types);

    if !options.coalesce {
        let plan = plan_without_coalescing(func, &graph, &sizing);
        if let Some(r) = rec.as_deref_mut() {
            r.record(Phase::Decompose, t.elapsed());
        }
        return Ok(plan);
    }
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::Decompose, t.elapsed());
    }

    let node_bytes = |rep: matc_ir::ids::VarId| -> u64 {
        graph
            .members(rep)
            .iter()
            .map(|m| match sizing.class[m.index()] {
                Some(SizeClass::Static(b)) => b,
                // Dynamic sizes are unknown; rank them above every
                // static so size-aware strategies color them first.
                Some(SizeClass::Dynamic(_)) => 1 << 40,
                None => 0,
            })
            .max()
            .unwrap_or(0)
    };
    let t = Instant::now();
    budget.enter_phase("coloring");
    let coloring =
        Coloring::with_strategy_budgeted(func, &graph, options.coloring, &node_bytes, budget)?;
    debug_assert!(coloring.validate(&graph), "improper coloring");
    if let Some(r) = rec.as_deref_mut() {
        r.record(Phase::Coloring, t.elapsed());
    }
    let t = Instant::now();
    budget.enter_phase("decompose");

    // ------------------------------------------------------------------
    // Build node-level facts per class representative.
    // ------------------------------------------------------------------
    let mut node_facts: HashMap<VarId, NodeFacts> = HashMap::new();
    for rep in graph.representatives() {
        let members = graph.members(rep);
        let mut intrinsic = Intrinsic::Bool;
        let mut first = true;
        for m in &members {
            let it = sizing.intrinsic[m.index()];
            intrinsic = if first { it } else { intrinsic.join(it) };
            first = false;
        }
        // All-static nodes take the max byte size; any dynamic member
        // makes the node dynamic with a Max element-count expression.
        let mut static_max: u64 = 0;
        let mut all_static = true;
        let mut dyn_numel: Option<ExprId> = None;
        let mut missing = false;
        for m in &members {
            match sizing.class[m.index()] {
                Some(SizeClass::Static(b)) => {
                    static_max = static_max.max(b);
                    let numel_elems = b / sizing.intrinsic[m.index()].byte_size().max(1);
                    let c = types.ctx.constant(numel_elems as i64);
                    dyn_numel = Some(match dyn_numel {
                        None => c,
                        Some(acc) => types.ctx.max(acc, c),
                    });
                }
                Some(SizeClass::Dynamic(n)) => {
                    all_static = false;
                    dyn_numel = Some(match dyn_numel {
                        None => n,
                        Some(acc) => types.ctx.max(acc, n),
                    });
                }
                None => missing = true,
            }
        }
        let size = match (missing, dyn_numel) {
            (true, _) | (_, None) => None,
            _ if all_static => Some(NodeSize::Static(static_max)),
            (_, Some(n)) => Some(NodeSize::Dynamic(n)),
        };
        node_facts.insert(
            rep,
            NodeFacts {
                members,
                intrinsic,
                size,
            },
        );
    }

    // ------------------------------------------------------------------
    // Decompose every color class into groups (Phase 2).
    // ------------------------------------------------------------------
    let mut slots: Vec<SlotInfo> = Vec::new();
    let mut var_slot: BTreeMap<VarId, usize> = BTreeMap::new();
    let mut static_subsumed = 0usize;
    let mut dynamic_subsumed = 0usize;
    let mut stack_bytes_saved = 0u64;
    let mut stack_bytes_total = 0u64;

    for class in coloring.classes() {
        let n = class.len();
        // Decomposition compares class nodes pairwise; charge quadratic
        // work so a fuel limit also bounds Phase 2.
        budget.spend((n as u64).saturating_mul(n as u64) + 1)?;
        let le = |i: usize, j: usize| -> bool {
            if i == j {
                return true;
            }
            let (a, b) = (&node_facts[&class[i]], &node_facts[&class[j]]);
            if a.intrinsic != b.intrinsic {
                return false;
            }
            match (&a.size, &b.size) {
                (Some(NodeSize::Static(x)), Some(NodeSize::Static(y))) => x <= y,
                (Some(NodeSize::Dynamic(x)), Some(NodeSize::Dynamic(y))) => {
                    if !options.symbolic_criterion {
                        return false;
                    }
                    // Availability between nodes: some member of `a`
                    // available at some member-def of `b`.
                    let avail = a
                        .members
                        .iter()
                        .any(|u| b.members.iter().any(|v| flow.available_at_def(*u, *v)));
                    if !avail {
                        return false;
                    }
                    if *x == *y || types.ctx.provably_ge(*y, *x) {
                        return true;
                    }
                    // subsasgn growth chains between the nodes.
                    b.members.iter().any(|v| {
                        let mut cur = *v;
                        let mut hops = 0;
                        while let Some(p) = sizing.grows_from.get(&cur) {
                            if a.members.contains(p) {
                                return true;
                            }
                            cur = *p;
                            hops += 1;
                            if hops > 64 {
                                break;
                            }
                        }
                        false
                    })
                }
                _ => false,
            }
        };
        let groups = decompose_color_class(n, le);
        for g in groups {
            let slot_idx = slots.len();
            let root_rep = class[g.root];
            let root = &node_facts[&root_rep];
            let kind = match root.size {
                Some(NodeSize::Static(bytes)) => SlotKind::Stack { bytes },
                _ => SlotKind::Heap,
            };
            let mut members: Vec<VarId> = Vec::new();
            let mut intrinsic = root.intrinsic;
            for &mi in &g.members {
                let nf = &node_facts[&class[mi]];
                intrinsic = intrinsic.join(nf.intrinsic);
                members.extend(nf.members.iter().copied());
            }
            members.sort();
            // Statistics: every member beyond the first is subsumed.
            let subsumed = members.len().saturating_sub(1);
            match kind {
                SlotKind::Stack { bytes } => {
                    static_subsumed += subsumed;
                    stack_bytes_total += bytes;
                    let sum: u64 = members
                        .iter()
                        .map(|m| match sizing.class[m.index()] {
                            Some(SizeClass::Static(b)) => b,
                            _ => 0,
                        })
                        .sum();
                    stack_bytes_saved += sum.saturating_sub(bytes);
                }
                SlotKind::Heap => dynamic_subsumed += subsumed,
            }
            for m in &members {
                var_slot.insert(*m, slot_idx);
            }
            slots.push(SlotInfo {
                kind,
                intrinsic,
                members,
            });
        }
    }

    // ------------------------------------------------------------------
    // Resize annotations for heap-slot definitions.
    // ------------------------------------------------------------------
    let mut resize: BTreeMap<VarId, ResizeKind> = BTreeMap::new();
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            for d in instr.defs() {
                let Some(si) = var_slot.get(&d) else { continue };
                if !matches!(slots[*si].kind, SlotKind::Heap) {
                    continue;
                }
                let kind = match &instr.kind {
                    // A φ merges values already resident in the slot.
                    InstrKind::Phi { .. } => ResizeKind::NoResize,
                    InstrKind::Compute {
                        op: Op::Subsasgn,
                        args,
                        ..
                    } => match args.first() {
                        Some(Operand::Var(a)) if var_slot.get(a) == Some(si) => ResizeKind::Grow,
                        _ => ResizeKind::Resize,
                    },
                    _ => {
                        // `∘` when a same-slot predecessor provably has
                        // the same element count.
                        let my_numel = match sizing.class[d.index()] {
                            Some(SizeClass::Dynamic(n)) => Some(n),
                            _ => None,
                        };
                        let same = my_numel.is_some()
                            && slots[*si].members.iter().any(|u| {
                                *u != d
                                    && flow.available_at_def(*u, d)
                                    && match sizing.class[u.index()] {
                                        Some(SizeClass::Dynamic(n)) => Some(n) == my_numel,
                                        _ => false,
                                    }
                            });
                        if same {
                            ResizeKind::NoResize
                        } else {
                            ResizeKind::Resize
                        }
                    }
                };
                resize.insert(d, kind);
            }
        }
    }

    let stats = PlanStats {
        original_vars: graph.occurring_count(),
        static_subsumed,
        dynamic_subsumed,
        stack_bytes_saved,
        stack_bytes_total,
        colors: coloring.num_colors,
        coalesced_phis: graph.coalesced,
        op_conflicts: graph.op_conflicts,
        slots: slots.len(),
    };
    if let Some(r) = rec {
        r.record(Phase::Decompose, t.elapsed());
    }
    Ok(StoragePlan {
        func_name: func.name.clone(),
        slots,
        var_slot,
        resize,
        stats,
    })
}

/// The Figure 6 baseline, "mat2c without GCTD": one heap slot per
/// variable, no sharing. Stack placement and in-place execution are both
/// Phase 2 products, so the baseline allocates every array dynamically at
/// each definition (scalars stay in registers/immediates as the backend
/// would keep them).
fn plan_without_coalescing(
    func: &FuncIr,
    graph: &InterferenceGraph,
    sizing: &Sizing,
) -> StoragePlan {
    let mut slots = Vec::new();
    let mut var_slot = BTreeMap::new();
    let mut vars: Vec<VarId> = Vec::new();
    for p in &func.params {
        vars.push(*p);
    }
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            vars.extend(instr.defs().into_iter().filter(|d| !graph.is_immediate(*d)));
        }
    }
    vars.sort();
    vars.dedup();
    for v in vars {
        let idx = slots.len();
        var_slot.insert(v, idx);
        slots.push(SlotInfo {
            kind: SlotKind::Heap,
            intrinsic: sizing.intrinsic[v.index()],
            members: vec![v],
        });
    }
    let stats = PlanStats {
        original_vars: graph.occurring_count(),
        colors: slots.len() as u32,
        slots: slots.len(),
        stack_bytes_total: 0,
        ..PlanStats::default()
    };
    StoragePlan {
        func_name: func.name.clone(),
        slots,
        var_slot,
        resize: BTreeMap::new(),
        stats,
    }
}
