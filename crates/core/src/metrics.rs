//! Phase-level observability for the compilation pipeline.
//!
//! Every compilation unit driven through the batch compiler (or any
//! caller that opts in) carries a [`UnitMetrics`] record: wall time per
//! [`Phase`], IR and AST sizes, interference-graph node/edge counts,
//! plan statistics and the cache outcome. [`BatchReport`] aggregates
//! unit records into the machine-readable JSON emitted by
//! `matc batch --stats` and the human summary table.
//!
//! The module is deliberately dependency-free: timings come from
//! [`std::time::Instant`], JSON is emitted by hand with deterministic
//! key order, and recording a phase is a single array store — cheap
//! enough to leave on in production builds.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::plan::PlanStats;

/// The pipeline phases the batch driver distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Frontend parse (lexer + parser + program assembly).
    Parse,
    /// Lowering to the CFG IR and SSA construction.
    SsaBuild,
    /// The classic SSA optimization pipeline.
    Optimize,
    /// Intrinsic/shape/range inference.
    TypeInfer,
    /// Dataflow + interference-graph construction (GCTD Phase 1a).
    Interference,
    /// Graph coloring (GCTD Phase 1b).
    Coloring,
    /// Color-class decomposition into storage slots (GCTD Phase 2).
    Decompose,
    /// The independent storage-plan audit + AST lints.
    Audit,
    /// SSA inversion filtered through the storage plan.
    SsaInvert,
    /// C code emission.
    Codegen,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 10] = [
        Phase::Parse,
        Phase::SsaBuild,
        Phase::Optimize,
        Phase::TypeInfer,
        Phase::Interference,
        Phase::Coloring,
        Phase::Decompose,
        Phase::Audit,
        Phase::SsaInvert,
        Phase::Codegen,
    ];

    /// Stable lower-snake name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::SsaBuild => "ssa_build",
            Phase::Optimize => "optimize",
            Phase::TypeInfer => "type_infer",
            Phase::Interference => "interference",
            Phase::Coloring => "coloring",
            Phase::Decompose => "decompose",
            Phase::Audit => "audit",
            Phase::SsaInvert => "ssa_invert",
            Phase::Codegen => "codegen",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).unwrap()
    }
}

/// Whether a unit's artifacts were served from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache was consulted.
    Bypass,
    /// Key present: artifacts served without recompiling.
    Hit,
    /// Key absent: the unit was compiled and the result stored.
    Miss,
    /// Unit key absent, but per-function fragments served part of the
    /// compile — a warm recompile after an edit that reused every
    /// untouched function's stored plan/codegen work.
    Partial,
}

impl CacheOutcome {
    /// Stable lower-case name (the JSON value).
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Bypass => "bypass",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Partial => "partial",
        }
    }
}

/// One rung of the degradation ladder having fired: a function (or the
/// whole unit) was re-lowered with the conservative all-heap mcc-style
/// plan instead of its GCTD plan, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The unit the degradation happened in.
    pub unit: String,
    /// The function that was degraded; empty for unit-level degradations
    /// (e.g. an optimizer or type-inference budget trip re-lowering the
    /// whole unit conservatively).
    pub func: String,
    /// Which rung fired: `"plan_panic"`, `"plan_budget"`, `"audit"`,
    /// `"audit_budget"`, `"optimize_budget"`, `"type_infer_budget"`.
    pub stage: &'static str,
    /// Human-readable cause (panic message, audit findings, budget
    /// error).
    pub reason: String,
}

impl DegradationEvent {
    /// The event's JSON object (an element of a unit's `degradations`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"unit\":{},\"func\":{},\"stage\":{},\"reason\":{}}}",
            json_string(&self.unit),
            json_string(&self.func),
            json_string(self.stage),
            json_string(&self.reason)
        )
    }
}

/// A phase budget (fuel or wall-clock) having tripped during a unit's
/// compile; paired with a [`DegradationEvent`] when the trip was
/// recovered by the ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetEvent {
    /// The phase that tripped (stable lower-snake name).
    pub phase: String,
    /// `"fuel"` or `"wall-clock"`.
    pub kind: String,
}

impl BudgetEvent {
    /// The event's JSON object (an element of a unit's
    /// `budget_exceeded`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"phase\":{},\"kind\":{}}}",
            json_string(&self.phase),
            json_string(&self.kind)
        )
    }
}

/// A running wall-clock timer for one phase.
///
/// ```
/// use matc_gctd::metrics::{Phase, PhaseTimer, UnitMetrics};
/// let mut m = UnitMetrics::new("demo");
/// let t = PhaseTimer::start(Phase::Parse);
/// // ... do the work ...
/// t.stop(&mut m);
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    pub fn start(phase: Phase) -> PhaseTimer {
        PhaseTimer {
            phase,
            start: Instant::now(),
        }
    }

    /// Stops the timer, adding the elapsed time to `metrics`.
    pub fn stop(self, metrics: &mut UnitMetrics) {
        metrics.record(self.phase, self.start.elapsed());
    }
}

/// Metrics for one compilation unit (one program through the pipeline).
#[derive(Debug, Clone)]
pub struct UnitMetrics {
    /// The unit's display name (file stem or benchmark name).
    pub unit: String,
    /// Accumulated wall time per phase, nanoseconds.
    phase_nanos: [u64; Phase::ALL.len()],
    /// AST function count.
    pub ast_functions: usize,
    /// AST statement count (recursive).
    pub ast_statements: usize,
    /// AST expression count (recursive).
    pub ast_expressions: usize,
    /// IR function count.
    pub ir_functions: usize,
    /// IR basic-block count.
    pub ir_blocks: usize,
    /// IR instruction count (φs included).
    pub ir_instrs: usize,
    /// IR variable-table entries.
    pub ir_vars: usize,
    /// Total rewrites performed by the optimization pipeline.
    pub opt_removed: usize,
    /// Variables with inference facts.
    pub typeinf_facts: usize,
    /// Of those, provably scalar.
    pub typeinf_scalars: usize,
    /// Interference-graph nodes (coalesced classes), summed over functions.
    pub interference_nodes: usize,
    /// Interference-graph edges, summed over functions.
    pub interference_edges: usize,
    /// Worklist visits the bitset dataflow fixpoints performed
    /// (liveness + availability + reachability), summed over functions.
    pub dataflow_iters: u64,
    /// Widest dense live-set row, in `u64` words, across functions.
    pub peak_live_words: u64,
    /// Wall time of the dataflow fixpoints alone, nanoseconds (a
    /// sub-slice of the `interference` phase; not restored on cache
    /// hits, like all timings).
    pub dataflow_nanos: u64,
    /// Program-wide storage-plan statistics.
    pub plan: PlanStats,
    /// Error-severity audit findings.
    pub audit_errors: usize,
    /// Warning-severity audit findings (lints included).
    pub audit_warnings: usize,
    /// CFG edges the auditor processed (the unit of audit throughput,
    /// feeding the perf bench's `audit_edges_per_sec`).
    pub audit_edges: u64,
    /// Emitted C size in bytes.
    pub c_bytes: usize,
    /// Emitted C size in lines.
    pub c_lines: usize,
    /// Cache outcome for this unit.
    pub cache: CacheOutcome,
    /// Compilation error, if the unit failed (parse/lowering).
    pub error: Option<String>,
    /// Degradation-ladder rungs that fired for this unit.
    pub degradations: Vec<DegradationEvent>,
    /// Phase budgets that tripped for this unit.
    pub budget_exceeded: Vec<BudgetEvent>,
}

impl UnitMetrics {
    /// Fresh all-zero metrics for `unit`.
    pub fn new(unit: impl Into<String>) -> UnitMetrics {
        UnitMetrics {
            unit: unit.into(),
            phase_nanos: [0; Phase::ALL.len()],
            ast_functions: 0,
            ast_statements: 0,
            ast_expressions: 0,
            ir_functions: 0,
            ir_blocks: 0,
            ir_instrs: 0,
            ir_vars: 0,
            opt_removed: 0,
            typeinf_facts: 0,
            typeinf_scalars: 0,
            interference_nodes: 0,
            interference_edges: 0,
            dataflow_iters: 0,
            peak_live_words: 0,
            dataflow_nanos: 0,
            plan: PlanStats::default(),
            audit_errors: 0,
            audit_warnings: 0,
            audit_edges: 0,
            c_bytes: 0,
            c_lines: 0,
            cache: CacheOutcome::Bypass,
            error: None,
            degradations: Vec::new(),
            budget_exceeded: Vec::new(),
        }
    }

    /// Adds `elapsed` to `phase`'s accumulated wall time.
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.phase_nanos[phase.index()] = self.phase_nanos[phase.index()].saturating_add(ns);
    }

    /// Times `f` under `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t = PhaseTimer::start(phase);
        let r = f();
        t.stop(self);
        r
    }

    /// Accumulated microseconds spent in `phase`.
    pub fn phase_micros(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()] / 1_000
    }

    /// Total microseconds across all phases.
    pub fn total_micros(&self) -> u64 {
        self.phase_nanos.iter().map(|n| n / 1_000).sum()
    }

    /// Whether the unit compiled (no pipeline error). Degraded units
    /// are `ok`: they produced a correct (conservatively planned)
    /// artifact.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }

    /// Whether any degradation-ladder rung fired for this unit.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The unit's JSON object (one element of the report's `units`
    /// array; see DESIGN.md §6 for the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"unit\":{}", json_string(&self.unit));
        let status = if !self.ok() {
            "error"
        } else if self.degraded() {
            "degraded"
        } else {
            "ok"
        };
        let _ = write!(s, ",\"status\":{}", json_string(status));
        if let Some(e) = &self.error {
            let _ = write!(s, ",\"error\":{}", json_string(e));
        }
        s.push_str(",\"degradations\":[");
        for (i, d) in self.degradations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push(']');
        s.push_str(",\"budget_exceeded\":[");
        for (i, b) in self.budget_exceeded.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_json());
        }
        s.push(']');
        let _ = write!(s, ",\"cache\":{}", json_string(self.cache.name()));
        s.push_str(",\"phases_micros\":{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", p.name(), self.phase_micros(*p));
        }
        s.push('}');
        let _ = write!(
            s,
            ",\"ast\":{{\"functions\":{},\"statements\":{},\"expressions\":{}}}",
            self.ast_functions, self.ast_statements, self.ast_expressions
        );
        let _ = write!(
            s,
            ",\"ir\":{{\"functions\":{},\"blocks\":{},\"instrs\":{},\"vars\":{}}}",
            self.ir_functions, self.ir_blocks, self.ir_instrs, self.ir_vars
        );
        let _ = write!(s, ",\"opt\":{{\"rewrites\":{}}}", self.opt_removed);
        let _ = write!(
            s,
            ",\"typeinf\":{{\"facts\":{},\"scalars\":{}}}",
            self.typeinf_facts, self.typeinf_scalars
        );
        let _ = write!(
            s,
            ",\"interference\":{{\"nodes\":{},\"edges\":{},\"dataflow_iters\":{},\
             \"peak_live_words\":{},\"dataflow_micros\":{}}}",
            self.interference_nodes,
            self.interference_edges,
            self.dataflow_iters,
            self.peak_live_words,
            self.dataflow_nanos / 1_000
        );
        let _ = write!(
            s,
            ",\"plan\":{{\"original_vars\":{},\"static_subsumed\":{},\"dynamic_subsumed\":{},\
             \"stack_bytes_saved\":{},\"stack_bytes_total\":{},\"colors\":{},\
             \"coalesced_phis\":{},\"op_conflicts\":{},\"slots\":{}}}",
            self.plan.original_vars,
            self.plan.static_subsumed,
            self.plan.dynamic_subsumed,
            self.plan.stack_bytes_saved,
            self.plan.stack_bytes_total,
            self.plan.colors,
            self.plan.coalesced_phis,
            self.plan.op_conflicts,
            self.plan.slots
        );
        let _ = write!(
            s,
            ",\"audit\":{{\"errors\":{},\"warnings\":{},\"edges\":{}}}",
            self.audit_errors, self.audit_warnings, self.audit_edges
        );
        let _ = write!(
            s,
            ",\"c\":{{\"bytes\":{},\"lines\":{}}}",
            self.c_bytes, self.c_lines
        );
        s.push('}');
        s
    }
}

/// Aggregated results of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker-thread count used.
    pub jobs: usize,
    /// End-to-end wall time of the batch, microseconds.
    pub wall_micros: u64,
    /// Units served from the cache this run.
    pub cache_hits: u64,
    /// Units compiled (cache consulted but absent) this run.
    pub cache_misses: u64,
    /// Per-function fragments served from the store this run (the
    /// incremental-compilation counter: each one is a function whose
    /// plan/audit/codegen work was skipped).
    pub cache_partial_hits: u64,
    /// Per-function fragment misses this run.
    pub cache_frag_misses: u64,
    /// Store files that failed integrity verification and were
    /// quarantined to `corrupt/` this run.
    pub cache_quarantined: u64,
    /// Per-unit metrics, in input order.
    pub units: Vec<UnitMetrics>,
}

impl BatchReport {
    /// Total microseconds spent in `phase` across all units.
    pub fn phase_total_micros(&self, phase: Phase) -> u64 {
        self.units.iter().map(|u| u.phase_micros(phase)).sum()
    }

    /// Units that failed to compile.
    pub fn failed(&self) -> usize {
        self.units.iter().filter(|u| !u.ok()).count()
    }

    /// Units that compiled but only via the degradation ladder.
    pub fn degraded(&self) -> usize {
        self.units.iter().filter(|u| u.ok() && u.degraded()).count()
    }

    /// The stats document's schema version (`"schema"` in the JSON).
    /// Bumped from 1 (PR 2) to 2 when per-unit `degradations` and
    /// `budget_exceeded` arrays and the `"degraded"` status were added;
    /// from 2 to 3 when the bitset dataflow engine's `dataflow_iters`,
    /// `peak_live_words` and `dataflow_micros` fields joined each
    /// unit's `interference` object (PR 4); from 3 to 4 when the
    /// `"kind"` discriminator (`"batch"` vs `"serve"`) was added so the
    /// `matc serve` daemon can emit the same document shape extended
    /// with a `server` object (DESIGN.md §9); from 4 to 5 when the
    /// bitset audit engine's `edges` counter joined each unit's
    /// `audit` object (PR 6); from 5 to 6 when `matc shadow --stats`
    /// began emitting the same document shape with `"kind":"shadow"`
    /// and a top-level `shadow` object carrying the plan-vs-reality
    /// replay counters (PR 7, [`ShadowStats`]); from 6 to 7 when the
    /// crash-safe artifact store's counters (`partial_hits`,
    /// `frag_misses`, `quarantined`) joined the top-level `cache`
    /// object and the per-unit `cache` value gained `"partial"`
    /// (PR 8, function-granular incremental compilation); from 7 to 8
    /// when the event-driven serve reactor's counters (`backend`,
    /// `conns_accepted`, `conns_open`, `frames_in`, `responses_out`,
    /// `pipelined_peak`, `write_overflow_disconnects`, `wakeups`)
    /// joined the `server` object as a nested `reactor` object
    /// (PR 9, epoll readiness loop + request pipelining); from 8 to 9
    /// when `accept_errors` (transient `accept()` failures absorbed by
    /// the one-tick backoff) joined the server `reactor` object and
    /// `swept` (stale `.tmp` debris removed on store open) joined the
    /// server `cache` object (PR 10, deterministic simulation testing).
    pub const SCHEMA_VERSION: u32 = 9;

    /// The full stats document (`matc batch --stats`), `"kind":"batch"`.
    pub fn to_json(&self) -> String {
        self.to_json_with_kind("batch", "")
    }

    /// The stats document with an explicit `"kind"` and, when
    /// `extra` is non-empty, additional top-level members spliced in
    /// verbatim right after the kind (the serve daemon passes its
    /// `"server":{…}` object here). `extra` must be either empty or a
    /// comma-led fragment of valid JSON members.
    pub fn to_json_with_kind(&self, kind: &str, extra: &str) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"schema\":{}", Self::SCHEMA_VERSION);
        let _ = write!(s, ",\"kind\":{}", json_string(kind));
        s.push_str(extra);
        let _ = write!(s, ",\"jobs\":{}", self.jobs);
        let _ = write!(s, ",\"wall_micros\":{}", self.wall_micros);
        let _ = write!(
            s,
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"partial_hits\":{},\
             \"frag_misses\":{},\"quarantined\":{}}}",
            self.cache_hits,
            self.cache_misses,
            self.cache_partial_hits,
            self.cache_frag_misses,
            self.cache_quarantined
        );
        s.push_str(",\"phase_totals_micros\":{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", p.name(), self.phase_total_micros(*p));
        }
        s.push('}');
        s.push_str(",\"units\":[");
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&u.to_json());
        }
        s.push_str("]}");
        s
    }

    /// The human summary table printed by `matc batch`.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>7} {:>9} {:>7} {:>9}  status",
            "unit", "time", "cache", "instrs", "slots", "C bytes"
        );
        for u in &self.units {
            let status = match &u.error {
                Some(e) => format!("error: {e}"),
                None if u.audit_errors > 0 => format!("{} audit error(s)", u.audit_errors),
                None if u.degraded() => format!("degraded ({} event(s))", u.degradations.len()),
                None => "ok".to_string(),
            };
            let _ = writeln!(
                s,
                "{:<12} {:>6}us {:>7} {:>9} {:>7} {:>9}  {}",
                u.unit,
                u.total_micros(),
                u.cache.name(),
                u.ir_instrs,
                u.plan.slots,
                u.c_bytes,
                status
            );
        }
        let _ = writeln!(
            s,
            "{} unit(s), {} failed; cache {} hit(s) / {} miss(es); wall {}us on {} job(s)",
            self.units.len(),
            self.failed(),
            self.cache_hits,
            self.cache_misses,
            self.wall_micros,
            self.jobs
        );
        if self.cache_partial_hits > 0 {
            let _ = writeln!(
                s,
                "{} per-function fragment(s) reused incrementally",
                self.cache_partial_hits
            );
        }
        if self.cache_quarantined > 0 {
            let _ = writeln!(
                s,
                "{} corrupt store file(s) quarantined and recompiled",
                self.cache_quarantined
            );
        }
        let degraded = self.degraded();
        if degraded > 0 {
            let _ = writeln!(s, "{degraded} unit(s) degraded to the conservative plan");
        }
        s
    }
}

/// Aggregate counters of one `matc shadow` run — the top-level
/// `shadow` object of the schema-v9 stats document
/// (`{"schema":9,"kind":"shadow","shadow":{…},…}`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Units replayed.
    pub units: usize,
    /// Function activations observed across all units.
    pub frames: u64,
    /// Slot definition events observed.
    pub defs: u64,
    /// Distinct slot reads observed.
    pub reads: u64,
    /// Heap alloc / realloc / free events observed.
    pub heap_events: u64,
    /// The planned VM's plan-violation counter, summed over units.
    pub plan_violations: u64,
    /// `∘` definitions observed resizing (soundness).
    pub s101: usize,
    /// Stack slots observed overflowing (soundness).
    pub s102: usize,
    /// `±` definitions that never resized (precision headroom).
    pub s103: usize,
    /// Slot reads outside the auditor's liveness facts.
    pub s104: usize,
    /// Equation 2 log-vs-recorder disagreements.
    pub s105: usize,
    /// Planned outputs diverging from the reference interpreter.
    pub s100: usize,
}

impl ShadowStats {
    /// The `"shadow":{…}` JSON member, deterministic key order.
    pub fn to_json(&self) -> String {
        format!(
            "\"shadow\":{{\"units\":{},\"frames\":{},\"defs\":{},\"reads\":{},\
             \"heap_events\":{},\"plan_violations\":{},\"s100\":{},\"s101\":{},\
             \"s102\":{},\"s103\":{},\"s104\":{},\"s105\":{}}}",
            self.units,
            self.frames,
            self.defs,
            self.reads,
            self.heap_events,
            self.plan_violations,
            self.s100,
            self.s101,
            self.s102,
            self.s103,
            self.s104,
            self.s105
        )
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_unique_names_and_indices() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn timing_accumulates() {
        let mut m = UnitMetrics::new("u");
        m.record(Phase::Parse, Duration::from_micros(30));
        m.record(Phase::Parse, Duration::from_micros(12));
        assert_eq!(m.phase_micros(Phase::Parse), 42);
        assert_eq!(m.total_micros(), 42);
        let v = m.time(Phase::Codegen, || 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn json_has_expected_fields() {
        let mut m = UnitMetrics::new("fiff");
        m.cache = CacheOutcome::Hit;
        m.c_bytes = 10;
        let j = m.to_json();
        assert!(j.contains("\"unit\":\"fiff\""), "{j}");
        assert!(j.contains("\"cache\":\"hit\""), "{j}");
        assert!(j.contains("\"phases_micros\""), "{j}");
        assert!(j.contains("\"interference\""), "{j}");
        assert!(j.contains("\"dataflow_iters\":0"), "{j}");
        assert!(j.contains("\"peak_live_words\":0"), "{j}");
        assert!(j.contains("\"dataflow_micros\":0"), "{j}");
        let report = BatchReport {
            jobs: 2,
            wall_micros: 5,
            cache_hits: 1,
            cache_misses: 0,
            cache_partial_hits: 3,
            cache_frag_misses: 1,
            cache_quarantined: 2,
            units: vec![m],
        };
        let j = report.to_json();
        assert!(j.contains("\"jobs\":2"), "{j}");
        assert!(j.contains("\"phase_totals_micros\""), "{j}");
        assert!(report.render_table().contains("fiff"));
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn schema_carries_degradations_and_budget_events() {
        let mut m = UnitMetrics::new("wobbly");
        m.degradations.push(DegradationEvent {
            unit: "wobbly".to_string(),
            func: "kernel".to_string(),
            stage: "audit",
            reason: "A101: slot clobbered".to_string(),
        });
        m.budget_exceeded.push(BudgetEvent {
            phase: "coloring".to_string(),
            kind: "fuel".to_string(),
        });
        assert!(m.ok() && m.degraded());
        let j = m.to_json();
        assert!(j.contains("\"status\":\"degraded\""), "{j}");
        assert!(j.contains("\"degradations\":[{\"unit\":\"wobbly\""), "{j}");
        assert!(j.contains("\"stage\":\"audit\""), "{j}");
        assert!(
            j.contains("\"budget_exceeded\":[{\"phase\":\"coloring\",\"kind\":\"fuel\"}]"),
            "{j}"
        );
        let clean = UnitMetrics::new("clean");
        let cj = clean.to_json();
        assert!(cj.contains("\"degradations\":[]"), "{cj}");
        assert!(cj.contains("\"budget_exceeded\":[]"), "{cj}");
        let report = BatchReport {
            jobs: 1,
            wall_micros: 0,
            cache_hits: 0,
            cache_misses: 1,
            cache_partial_hits: 0,
            cache_frag_misses: 0,
            cache_quarantined: 0,
            units: vec![m, clean],
        };
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.failed(), 0);
        let j = report.to_json();
        assert!(j.starts_with("{\"schema\":9,\"kind\":\"batch\","), "{j}");
        let served = report.to_json_with_kind("serve", ",\"server\":{\"queue_depth\":0}");
        assert!(
            served.starts_with("{\"schema\":9,\"kind\":\"serve\",\"server\":{\"queue_depth\":0},"),
            "{served}"
        );
        assert!(report.render_table().contains("degraded (1 event(s))"));
        assert!(report
            .render_table()
            .contains("1 unit(s) degraded to the conservative plan"));
    }

    #[test]
    fn failed_units_render_as_errors() {
        let mut m = UnitMetrics::new("bad");
        m.error = Some("parse error".to_string());
        assert!(!m.ok());
        assert!(m.to_json().contains("\"status\":\"error\""));
        let report = BatchReport {
            jobs: 1,
            wall_micros: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_partial_hits: 0,
            cache_frag_misses: 0,
            cache_quarantined: 0,
            units: vec![m],
        };
        assert_eq!(report.failed(), 1);
        assert!(report.render_table().contains("error: parse error"));
    }
}
