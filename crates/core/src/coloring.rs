//! Coloring of the interference graph.
//!
//! The paper's heuristic (§2.4) visits nodes "in the lexical order of
//! the corresponding variable definitions" and gives each the smallest
//! color consistent with its neighbors. §5 notes this is non-optimal:
//! with storage sizes 4/2/3 on nodes A–B–C and a single edge A–B, which
//! minimal coloring is found changes the aggregate storage, and
//! optimality "would require an exploration of all possible colorings"
//! (also observed by Fabri). This module therefore offers three
//! strategies:
//!
//! * [`ColoringStrategy::LexicalGreedy`] — the paper's (default);
//! * [`ColoringStrategy::SizeOrderedGreedy`] — Fabri-flavored: largest
//!   storage first, so big arrays claim the low colors before scalars;
//! * [`ColoringStrategy::Exhaustive`] — branch-and-bound over all
//!   colorings minimizing total storage, for graphs up to a node limit
//!   (falls back to size-ordered greedy beyond it).

use crate::interference::InterferenceGraph;
use matc_ir::ids::VarId;
use matc_ir::{Budget, BudgetError, FuncIr};
use std::collections::HashMap;

/// How to color the interference graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColoringStrategy {
    /// The paper's §2.4 heuristic: lexical definition order.
    #[default]
    LexicalGreedy,
    /// Greedy over nodes sorted by decreasing storage size.
    SizeOrderedGreedy,
    /// Exact minimum-aggregate-storage search (branch and bound) for
    /// classes of at most `max_nodes` nodes; size-ordered greedy beyond.
    Exhaustive {
        /// Node-count cap for the exact search.
        max_nodes: usize,
    },
}

/// A coloring of the interference graph's classes.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Color of each class representative.
    color: HashMap<VarId, u32>,
    /// Number of colors used.
    pub num_colors: u32,
}

impl Coloring {
    /// Colors `graph` greedily in definition order (parameters first,
    /// then instruction order).
    pub fn greedy(func: &FuncIr, graph: &InterferenceGraph) -> Coloring {
        let order = Coloring::definition_order(func, graph);
        let budget = Budget::unlimited();
        Coloring::greedy_in_order(graph, &order, &budget).expect("unlimited budget cannot trip")
    }

    /// Colors `graph` with the chosen strategy. `node_bytes` supplies an
    /// approximate storage size per class representative (used by the
    /// size-aware strategies; irrelevant for [`ColoringStrategy::LexicalGreedy`]).
    pub fn with_strategy(
        func: &FuncIr,
        graph: &InterferenceGraph,
        strategy: ColoringStrategy,
        node_bytes: &dyn Fn(VarId) -> u64,
    ) -> Coloring {
        let budget = Budget::unlimited();
        Coloring::with_strategy_budgeted(func, graph, strategy, node_bytes, &budget)
            .expect("unlimited budget cannot trip")
    }

    /// [`Coloring::with_strategy`] under a [`Budget`]: greedy strategies
    /// charge one fuel unit per node colored; the exhaustive
    /// branch-and-bound charges one per search node expanded, so a fuel
    /// limit bounds the §5 "exploration of all possible colorings".
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetError`] that tripped (no partial coloring).
    pub fn with_strategy_budgeted(
        func: &FuncIr,
        graph: &InterferenceGraph,
        strategy: ColoringStrategy,
        node_bytes: &dyn Fn(VarId) -> u64,
        budget: &Budget,
    ) -> Result<Coloring, BudgetError> {
        match strategy {
            ColoringStrategy::LexicalGreedy => {
                let order = Coloring::definition_order(func, graph);
                Coloring::greedy_in_order(graph, &order, budget)
            }
            ColoringStrategy::SizeOrderedGreedy => {
                let mut reps = graph.representatives();
                reps.sort_by_key(|r| std::cmp::Reverse(node_bytes(*r)));
                Coloring::greedy_in_order(graph, &reps, budget)
            }
            ColoringStrategy::Exhaustive { max_nodes } => {
                let reps = graph.representatives();
                if reps.len() > max_nodes {
                    let mut reps = reps;
                    reps.sort_by_key(|r| std::cmp::Reverse(node_bytes(*r)));
                    return Coloring::greedy_in_order(graph, &reps, budget);
                }
                Coloring::exhaustive(graph, &reps, node_bytes, budget)
            }
        }
    }

    /// The paper's §2.4 node order: parameters first, then definitions
    /// in lexical (instruction) order, one entry per class.
    fn definition_order(func: &FuncIr, graph: &InterferenceGraph) -> Vec<VarId> {
        let mut order: Vec<VarId> = Vec::new();
        let mut seen: HashMap<VarId, ()> = HashMap::new();
        let push = |v: VarId, order: &mut Vec<VarId>, seen: &mut HashMap<VarId, ()>| {
            if graph.is_immediate(v) {
                return; // literals hold no storage and need no color
            }
            let r = graph.rep(v);
            if seen.insert(r, ()).is_none() {
                order.push(r);
            }
        };
        for p in &func.params {
            push(*p, &mut order, &mut seen);
        }
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                for d in instr.defs() {
                    push(d, &mut order, &mut seen);
                }
            }
        }
        order
    }

    /// Greedy coloring over an explicit node order.
    fn greedy_in_order(
        graph: &InterferenceGraph,
        order: &[VarId],
        budget: &Budget,
    ) -> Result<Coloring, BudgetError> {
        let mut color: HashMap<VarId, u32> = HashMap::new();
        // Dense mirror of `color` for the neighbor scan, plus the
        // memoized class degree bounding the scratch array: a node of
        // degree d has at most d distinct neighbor colors, so the
        // smallest free color is ≤ min(d, colors-used-so-far) and marks
        // beyond that bound cannot change the choice.
        let mut color_of: Vec<u32> = vec![u32::MAX; graph.variable_count()];
        let mut num_colors = 0;
        let mut used: Vec<bool> = Vec::new();
        for rep in order {
            budget.spend(1)?;
            let bound = graph.degree(*rep).min(num_colors as usize) + 1;
            used.clear();
            used.resize(bound, false);
            for n in graph.neighbors(*rep) {
                let c = color_of[graph.rep(n).index()];
                if c != u32::MAX && (c as usize) < bound {
                    used[c as usize] = true;
                }
            }
            let c = used.iter().position(|u| !u).expect("free slot") as u32;
            num_colors = num_colors.max(c + 1);
            color_of[rep.index()] = c;
            color.insert(*rep, c);
        }
        Ok(Coloring { color, num_colors })
    }

    /// Branch-and-bound search for the coloring minimizing aggregate
    /// storage: Σ over colors of the maximal node size in that color.
    /// This is the exploration the paper's §5 says optimality requires.
    fn exhaustive(
        graph: &InterferenceGraph,
        reps: &[VarId],
        node_bytes: &dyn Fn(VarId) -> u64,
        budget: &Budget,
    ) -> Result<Coloring, BudgetError> {
        // Order by decreasing size so pruning bites early.
        let mut order: Vec<VarId> = reps.to_vec();
        order.sort_by_key(|r| std::cmp::Reverse(node_bytes(*r)));
        let sizes: Vec<u64> = order.iter().map(|r| node_bytes(*r)).collect();

        let mut best_assign: Vec<u32> = Vec::new();
        let mut best_cost = u64::MAX;
        let mut assign: Vec<u32> = vec![0; order.len()];
        // class_max[c] = current maximal size in color c.
        let mut class_max: Vec<u64> = Vec::new();

        fn conflicts(
            graph: &InterferenceGraph,
            order: &[VarId],
            assign: &[u32],
            i: usize,
            c: u32,
        ) -> bool {
            for (j, other) in order.iter().enumerate().take(i) {
                if assign[j] == c && graph.interferes(order[i], *other) {
                    return true;
                }
            }
            false
        }

        #[allow(clippy::too_many_arguments)] // explicit branch-and-bound state
        fn search(
            graph: &InterferenceGraph,
            order: &[VarId],
            sizes: &[u64],
            i: usize,
            assign: &mut Vec<u32>,
            class_max: &mut Vec<u64>,
            cost: u64,
            best_cost: &mut u64,
            best_assign: &mut Vec<u32>,
            budget: &Budget,
        ) -> Result<(), BudgetError> {
            budget.spend(1)?;
            if cost >= *best_cost {
                return Ok(()); // prune
            }
            if i == order.len() {
                *best_cost = cost;
                *best_assign = assign.clone();
                return Ok(());
            }
            // Try each existing color plus one fresh color (symmetry
            // break: a new color is always the next index).
            let ncols = class_max.len();
            for c in 0..=ncols {
                if c < ncols && conflicts(graph, order, assign, i, c as u32) {
                    continue;
                }
                let extra = if c == ncols {
                    sizes[i]
                } else {
                    sizes[i].saturating_sub(class_max[c])
                };
                assign[i] = c as u32;
                if c == ncols {
                    class_max.push(sizes[i]);
                } else {
                    class_max[c] = class_max[c].max(sizes[i]);
                }
                search(
                    graph,
                    order,
                    sizes,
                    i + 1,
                    assign,
                    class_max,
                    cost + extra,
                    best_cost,
                    best_assign,
                    budget,
                )?;
                if c == ncols {
                    class_max.pop();
                } else if class_max[c] == sizes[i] {
                    // Restore the previous maximum.
                    let prev = order
                        .iter()
                        .enumerate()
                        .take(i)
                        .filter(|(j, _)| assign[*j] == c as u32)
                        .map(|(j, _)| sizes[j])
                        .max()
                        .unwrap_or(0);
                    class_max[c] = prev;
                }
            }
            Ok(())
        }

        search(
            graph,
            &order,
            &sizes,
            0,
            &mut assign,
            &mut class_max,
            0,
            &mut best_cost,
            &mut best_assign,
            budget,
        )?;
        let mut color = HashMap::new();
        let mut num_colors = 0;
        for (i, rep) in order.iter().enumerate() {
            let c = best_assign.get(i).copied().unwrap_or(0);
            num_colors = num_colors.max(c + 1);
            color.insert(*rep, c);
        }
        Ok(Coloring { color, num_colors })
    }

    /// The color of variable `v` (via its class representative).
    pub fn of(&self, graph: &InterferenceGraph, v: VarId) -> Option<u32> {
        self.color.get(&graph.rep(v)).copied()
    }

    /// Groups class representatives by color.
    pub fn classes(&self) -> Vec<Vec<VarId>> {
        let mut classes = vec![Vec::new(); self.num_colors as usize];
        let mut items: Vec<(VarId, u32)> = self.color.iter().map(|(v, c)| (*v, *c)).collect();
        items.sort();
        for (v, c) in items {
            classes[c as usize].push(v);
        }
        classes
    }

    /// A sanity check: no two adjacent classes share a color.
    pub fn validate(&self, graph: &InterferenceGraph) -> bool {
        for (rep, c) in &self.color {
            for n in graph.neighbors(*rep) {
                if self.color.get(&graph.rep(n)) == Some(c) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceOptions;
    use crate::liveness::Dataflow;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;
    use matc_typeinf::infer_program;

    fn color(src: &str) -> (FuncIr, InterferenceGraph, Coloring) {
        let ast = parse_program([src]).unwrap();
        let mut prog = build_ssa(&ast).unwrap();
        matc_passes::optimize_program(&mut prog);
        let types = infer_program(&prog);
        let f = prog.entry_func().clone();
        let fid = prog.entry.unwrap();
        let flow = Dataflow::compute(&f);
        let g = InterferenceGraph::build(
            &f,
            &flow,
            &types.funcs[fid.index()],
            &types,
            InterferenceOptions::default(),
        );
        let c = Coloring::greedy(&f, &g);
        (f, g, c)
    }

    #[test]
    fn coloring_is_proper() {
        let (_, g, c) = color(
            "function f()\na = rand(3, 3);\nb = rand(3, 3);\nc = a * b;\nd = c + 1;\ndisp(d);\n",
        );
        assert!(c.validate(&g));
    }

    #[test]
    fn disjoint_lifetimes_share_a_color() {
        let (f, g, c) = color(
            "function f()\na = rand(4, 4);\nfprintf('%g\\n', sum(sum(a)));\nb = rand(4, 4);\nfprintf('%g\\n', sum(sum(b)));\n",
        );
        let a = f
            .vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some("a") && i.ssa_version == 1)
            .map(|(v, _)| v)
            .unwrap();
        let b = f
            .vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some("b") && i.ssa_version == 1)
            .map(|(v, _)| v)
            .unwrap();
        assert_eq!(c.of(&g, a), c.of(&g, b), "a and b can share storage\n{f}");
    }

    #[test]
    fn chromatic_number_of_triangle() {
        // Three mutually-live arrays need three colors.
        let (_, g, c) = color(
            "function f()\na = rand(2, 2);\nb = rand(2, 2);\nc = rand(2, 2);\nd = a + b + c;\ne = a .* b .* c;\nfprintf('%g\\n', d(1) + e(1));\n",
        );
        assert!(c.num_colors >= 3, "got {}", c.num_colors);
        assert!(c.validate(&g));
    }

    #[test]
    fn exhaustive_beats_greedy_on_paper_abc_example() {
        // §5's non-optimality example: nodes A (4 units), B (2), C (3),
        // single edge A–B. Minimal colorings use 2 colors; grouping B
        // with C costs 4 + 3 = 7, grouping A with C costs 4 + 2 = 6.
        // The storage-aware exhaustive search must find 6.
        //
        // Build a function where a and b live simultaneously (the A–B
        // edge) and c's lifetime is disjoint from both.
        let src = "function f()\n\
                   a = rand(2, 2);\n\
                   b = rand(1, 2);\n\
                   fprintf('%g %g\\n', a(1), b(1));\n\
                   c = rand(1, 3);\n\
                   fprintf('%g\\n', c(1));\n";
        let ast = matc_frontend::parser::parse_program([src]).unwrap();
        let mut prog = matc_ir::build_ssa(&ast).unwrap();
        matc_passes::optimize_program(&mut prog);
        let types = matc_typeinf::infer_program(&prog);
        let f = prog.entry_func().clone();
        let fid = prog.entry.unwrap();
        let flow = Dataflow::compute(&f);
        let g = InterferenceGraph::build(
            &f,
            &flow,
            &types.funcs[fid.index()],
            &types,
            InterferenceOptions::default(),
        );
        let var = |name: &str| {
            f.vars
                .iter()
                .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == 1)
                .map(|(v, _)| v)
                .unwrap()
        };
        let (a, b, c) = (var("a"), var("b"), var("c"));
        assert!(g.interferes(a, b), "{f}");
        assert!(!g.interferes(a, c));
        assert!(!g.interferes(b, c));
        // Sizes: a = 4 doubles (32B), b = 2 (16B), c = 3 (24B).
        let bytes = |v: VarId| -> u64 {
            if g.rep(v) == g.rep(a) {
                32
            } else if g.rep(v) == g.rep(b) {
                16
            } else if g.rep(v) == g.rep(c) {
                24
            } else {
                8
            }
        };
        let aggregate = |col: &Coloring| -> u64 {
            col.classes()
                .iter()
                .map(|class| class.iter().map(|r| bytes(*r)).max().unwrap_or(0))
                .sum()
        };
        let exhaustive = Coloring::with_strategy(
            &f,
            &g,
            ColoringStrategy::Exhaustive { max_nodes: 16 },
            &bytes,
        );
        assert!(exhaustive.validate(&g));
        // The optimum groups a with c: 32 + 16 (+ scalars' slots).
        let best = aggregate(&exhaustive);
        let lexical = Coloring::greedy(&f, &g);
        let lex_cost = aggregate(&lexical);
        assert!(
            best <= lex_cost,
            "exhaustive ({best}) must not lose to greedy ({lex_cost})"
        );
        assert!(
            exhaustive.of(&g, a) == exhaustive.of(&g, c),
            "optimal grouping pairs the 32B and 24B arrays"
        );
    }

    #[test]
    fn size_ordered_greedy_is_proper_and_size_aware() {
        let (f, g, _) = color(
            "function f()\na = rand(9, 9);\nb = rand(2, 2);\nfprintf('%g %g\\n', a(1), b(1));\nc = rand(9, 9);\nfprintf('%g\\n', c(1));\n",
        );
        let bytes = |v: VarId| -> u64 {
            let name = f.vars.display_name(v);
            if name.starts_with('a') || name.starts_with('c') {
                9 * 9 * 8
            } else {
                32
            }
        };
        let col = Coloring::with_strategy(&f, &g, ColoringStrategy::SizeOrderedGreedy, &bytes);
        assert!(col.validate(&g));
        let var = |name: &str| {
            f.vars
                .iter()
                .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == 1)
                .map(|(v, _)| v)
                .unwrap()
        };
        // The two big arrays (disjoint lifetimes) share a color because
        // they are colored first.
        assert_eq!(col.of(&g, var("a")), col.of(&g, var("c")), "{f}");
    }

    #[test]
    fn paper_nonoptimality_example_shape() {
        // A chain a -> b -> c of elementwise updates: all three arrays
        // can live in one color class (the scalars and format strings
        // take their own colors). The §5 non-optimality caveat is about
        // which minimal coloring is found, not about propriety.
        let (f, g, c) = color(
            "function f()\na = rand(2, 2);\nb = a + 1;\nc = b + 1;\nfprintf('%g\\n', c(1));\n",
        );
        let want = |name: &str| {
            f.vars
                .iter()
                .find(|(_, i)| i.name.as_deref() == Some(name) && i.ssa_version == 1)
                .map(|(v, _)| v)
                .unwrap()
        };
        let (a, b, cc) = (want("a"), want("b"), want("c"));
        assert_eq!(c.of(&g, a), c.of(&g, b), "{f}");
        assert_eq!(c.of(&g, b), c.of(&g, cc), "{f}");
        assert!(c.validate(&g));
    }
}
