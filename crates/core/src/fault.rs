//! Seeded fault injection for the fault-tolerant pipeline.
//!
//! A [`FaultPlan`] is a deterministic function of a `u64` seed: every
//! probe point in the pipeline asks [`FaultPlan::fires`] with a stable
//! string key (unit name, cache key, phase name…) and gets the same
//! answer on every run with the same seed — independent of thread
//! scheduling, iteration order, or how often the probe is reached. That
//! schedule independence is what makes the `tests/fault_injection.rs`
//! matrix reproducible on a work-stealing pool.
//!
//! Probe sites ([`FaultSite`]):
//!
//! * `CacheRead` — a disk-cache read is served corrupted/torn, which
//!   the cache must degrade to a miss;
//! * `CacheWrite` — a disk-cache write attempt fails with an I/O error
//!   (optionally only the first `write_transient` attempts per key, to
//!   exercise the retry path);
//! * `PhasePanic` — a phase entry panics, exercising `catch_unwind`
//!   isolation;
//! * `AuditViolation` — a synthetic audit error is attached to a
//!   function's GCTD plan, forcing the mcc-fallback rung of the
//!   degradation ladder.
//!
//! Network-level probe sites, exercised by the `matc serve` daemon's
//! chaos harness (keys are per-connection/per-request serials, so one
//! seed reproduces one connection fate schedule):
//!
//! * `NetAccept` — an accepted connection is dropped before any byte is
//!   read (accept failure from the client's point of view);
//! * `NetDisconnect` — the connection is closed mid-frame, after the
//!   request was read but before any response byte is written;
//! * `NetStall` — a slow-loris read: the server stalls between reads of
//!   the request frame (bounded by its idle timeout);
//! * `NetTorn` — a torn response: only a prefix of the response frame
//!   is written before the connection is closed.
//!
//! Artifact-store probe sites, exercised by the crash-consistency
//! matrix over the fragment/manifest store (DESIGN.md §12; keys are
//! fragment/unit hashes, so one seed reproduces one corruption
//! schedule):
//!
//! * `StoreFragCorrupt` — a fragment is bit-flipped on its way to disk,
//!   so the embedded SHA-256 must catch it on read and quarantine it;
//! * `StoreTornManifest` — only a prefix of a unit manifest reaches
//!   disk (a torn write/rename), which integrity verification must
//!   degrade to a miss, never a hybrid unit;
//! * `StorePutCrash` — the writer "crashes" between committing its
//!   fragments and renaming the manifest: fragments land, the manifest
//!   never does, and a fresh process must see either the complete old
//!   unit or a clean miss;
//! * `StoreFull` — a durable write fails as if the disk were full
//!   (`ENOSPC`), which the store must degrade to memory-only caching
//!   with a single structured warning rather than an error.
//!
//! Plans are enabled via the `MATC_FAULTS` environment variable or the
//! `--faults` CLI flag, both taking the spec grammar of
//! [`FaultPlan::parse`].

use std::fmt;

/// Environment variable carrying a [`FaultPlan::parse`] spec.
pub const FAULTS_ENV: &str = "MATC_FAULTS";

/// A pipeline location where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Disk-cache read served corrupted (must degrade to a miss).
    CacheRead,
    /// Disk-cache write attempt fails with an I/O error.
    CacheWrite,
    /// Injected panic at a phase entry.
    PhasePanic,
    /// Synthetic storage-plan audit violation.
    AuditViolation,
    /// Accepted connection dropped before any byte is read.
    NetAccept,
    /// Connection closed mid-frame: request read, no response written.
    NetDisconnect,
    /// Slow-loris read: the server stalls between request-frame reads.
    NetStall,
    /// Torn response: only a prefix of the response frame is written.
    NetTorn,
    /// Store fragment bit-flipped on its way to disk (caught by the
    /// embedded SHA-256 on read, then quarantined).
    StoreFragCorrupt,
    /// Only a prefix of a unit manifest reaches disk (torn write).
    StoreTornManifest,
    /// Writer crash between fragment commit and manifest rename.
    StorePutCrash,
    /// Durable store write fails as if the disk were full (`ENOSPC`).
    StoreFull,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::CacheRead => 0x9e37_79b9_7f4a_7c15,
            FaultSite::CacheWrite => 0xbf58_476d_1ce4_e5b9,
            FaultSite::PhasePanic => 0x94d0_49bb_1331_11eb,
            FaultSite::AuditViolation => 0x2545_f491_4f6c_dd1d,
            FaultSite::NetAccept => 0x6a09_e667_f3bc_c908,
            FaultSite::NetDisconnect => 0xbb67_ae85_84ca_a73b,
            FaultSite::NetStall => 0x3c6e_f372_fe94_f82b,
            FaultSite::NetTorn => 0xa54f_f53a_5f1d_36f1,
            FaultSite::StoreFragCorrupt => 0x510e_527f_ade6_82d1,
            FaultSite::StoreTornManifest => 0x9b05_688c_2b3e_6c1f,
            FaultSite::StorePutCrash => 0x5be0_cd19_137e_2179,
            FaultSite::StoreFull => 0x428a_2f98_d728_ae22,
        }
    }
}

/// A deterministic, seed-derived plan of which probe points fire.
///
/// Copyable so it can ride inside batch configuration; `fires` is pure,
/// so one plan can be shared by every worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed all decisions derive from.
    pub seed: u64,
    /// Percentage (0–100) of keyed cache reads served corrupted.
    pub cache_read_pct: u8,
    /// Percentage (0–100) of keyed cache writes that fail.
    pub cache_write_pct: u8,
    /// Percentage (0–100) of probed phase entries that panic.
    pub phase_panic_pct: u8,
    /// Percentage (0–100) of audited functions given a synthetic
    /// violation.
    pub audit_violation_pct: u8,
    /// For faulted cache writes: how many attempts per key fail before
    /// the write succeeds. `u8::MAX` means every attempt fails
    /// (persistent fault, e.g. a read-only cache dir).
    pub write_transient: u8,
    /// Percentage (0–100) of accepted connections dropped before any
    /// byte is read.
    pub net_accept_pct: u8,
    /// Percentage (0–100) of requests whose connection dies mid-frame
    /// (request read, no response written).
    pub net_disconnect_pct: u8,
    /// Percentage (0–100) of request frames read slow-loris style.
    pub net_stall_pct: u8,
    /// Percentage (0–100) of responses torn after a prefix.
    pub net_torn_pct: u8,
    /// Percentage (0–100) of store fragments bit-flipped on write.
    pub store_frag_corrupt_pct: u8,
    /// Percentage (0–100) of unit manifests torn after a prefix.
    pub store_torn_manifest_pct: u8,
    /// Percentage (0–100) of unit puts that crash between fragment
    /// commit and manifest rename.
    pub store_put_crash_pct: u8,
    /// Percentage (0–100) of durable store writes that fail as if the
    /// disk were full (`ENOSPC`).
    pub store_full_pct: u8,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled; compose with
    /// the builder methods to switch sites on.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cache_read_pct: 0,
            cache_write_pct: 0,
            phase_panic_pct: 0,
            audit_violation_pct: 0,
            write_transient: u8::MAX,
            net_accept_pct: 0,
            net_disconnect_pct: 0,
            net_stall_pct: 0,
            net_torn_pct: 0,
            store_frag_corrupt_pct: 0,
            store_torn_manifest_pct: 0,
            store_put_crash_pct: 0,
            store_full_pct: 0,
        }
    }

    /// Derives a mixed plan from a seed alone: every 8th seed is a
    /// fault-free control (the matrix's byte-identity baseline rides
    /// inside the matrix itself), and the rest pick each site's rate
    /// from {0, 10, 30, 100} by the seed's hash bits — so a small seed
    /// range (the 50-case matrix) deterministically covers
    /// single-site, multi-site and fault-free configurations.
    pub fn from_seed(seed: u64) -> FaultPlan {
        if seed.is_multiple_of(8) {
            return FaultPlan::quiet(seed);
        }
        const RATES: [u8; 4] = [0, 10, 30, 100];
        let h = splitmix64(seed ^ 0x5bf0_3635_dcb2_9359);
        FaultPlan {
            cache_read_pct: RATES[(h & 3) as usize],
            cache_write_pct: RATES[((h >> 2) & 3) as usize],
            phase_panic_pct: RATES[((h >> 4) & 3) as usize],
            audit_violation_pct: RATES[((h >> 6) & 3) as usize],
            write_transient: match (h >> 8) & 3 {
                0 => u8::MAX, // persistent write failure
                k => k as u8, // 1–3 failed attempts, then success
            },
            // Network/store probes stay off: `from_seed` seeds the
            // pipeline matrix, whose artifacts are pinned per seed.
            ..FaultPlan::quiet(seed)
        }
    }

    /// Derives a network-chaos plan from a seed alone, for the serve
    /// chaos matrix: every 8th seed is a connection-fault-free control,
    /// and the rest pick each network site's rate from {0, 10, 30, 100}
    /// by the seed's hash bits, with two of every eight seeds also
    /// panicking phase entries so the matrix crosses connection faults
    /// with in-pipeline faults. Pipeline cache/audit faults stay off —
    /// the daemon under network chaos must serve *correct* artifacts,
    /// and this keeps the reference bytes seed-independent.
    pub fn net_from_seed(seed: u64) -> FaultPlan {
        if seed.is_multiple_of(8) {
            return FaultPlan::quiet(seed);
        }
        const RATES: [u8; 4] = [0, 10, 30, 100];
        let h = splitmix64(seed ^ 0x1f83_d9ab_fb41_bd6b);
        let mut plan = FaultPlan::quiet(seed);
        plan.net_accept_pct = RATES[(h & 3) as usize];
        plan.net_disconnect_pct = RATES[((h >> 2) & 3) as usize];
        plan.net_stall_pct = RATES[((h >> 4) & 3) as usize];
        plan.net_torn_pct = RATES[((h >> 6) & 3) as usize];
        if seed % 8 >= 6 {
            plan.phase_panic_pct = RATES[1 + ((h >> 8) & 1) as usize];
        }
        plan
    }

    /// Derives a store-chaos plan from a seed alone, for the artifact
    /// store's crash-consistency matrix: every 8th seed is a fault-free
    /// control, and the rest pick each store site's rate from
    /// {0, 10, 30, 100} by the seed's hash bits, with two of every
    /// eight seeds also corrupting legacy cache reads so the matrix
    /// crosses write-side corruption with read-side corruption.
    /// Pipeline panic/audit faults stay off — the store matrix pins
    /// healed units byte-identical to the fault-free reference, which
    /// requires the *compiles* themselves to stay pristine.
    pub fn store_from_seed(seed: u64) -> FaultPlan {
        if seed.is_multiple_of(8) {
            return FaultPlan::quiet(seed);
        }
        const RATES: [u8; 4] = [0, 10, 30, 100];
        let h = splitmix64(seed ^ 0x7137_4491_23ef_65cd);
        let mut plan = FaultPlan::quiet(seed);
        plan.store_frag_corrupt_pct = RATES[(h & 3) as usize];
        plan.store_torn_manifest_pct = RATES[((h >> 2) & 3) as usize];
        plan.store_put_crash_pct = RATES[((h >> 4) & 3) as usize];
        if seed % 8 >= 6 {
            plan.cache_read_pct = RATES[1 + ((h >> 6) & 1) as usize];
        }
        plan
    }

    /// Sets the cache-read corruption rate (builder style).
    pub fn cache_reads(mut self, pct: u8) -> FaultPlan {
        self.cache_read_pct = pct.min(100);
        self
    }

    /// Sets the cache-write failure rate (builder style).
    pub fn cache_writes(mut self, pct: u8) -> FaultPlan {
        self.cache_write_pct = pct.min(100);
        self
    }

    /// Sets the phase-panic rate (builder style).
    pub fn panics(mut self, pct: u8) -> FaultPlan {
        self.phase_panic_pct = pct.min(100);
        self
    }

    /// Sets the synthetic audit-violation rate (builder style).
    pub fn audit_violations(mut self, pct: u8) -> FaultPlan {
        self.audit_violation_pct = pct.min(100);
        self
    }

    /// Sets how many write attempts per faulted key fail before
    /// succeeding; `u8::MAX` makes the fault persistent.
    pub fn transient(mut self, attempts: u8) -> FaultPlan {
        self.write_transient = attempts;
        self
    }

    /// Sets the accept-drop rate (builder style).
    pub fn net_accepts(mut self, pct: u8) -> FaultPlan {
        self.net_accept_pct = pct.min(100);
        self
    }

    /// Sets the mid-frame disconnect rate (builder style).
    pub fn net_disconnects(mut self, pct: u8) -> FaultPlan {
        self.net_disconnect_pct = pct.min(100);
        self
    }

    /// Sets the slow-loris read-stall rate (builder style).
    pub fn net_stalls(mut self, pct: u8) -> FaultPlan {
        self.net_stall_pct = pct.min(100);
        self
    }

    /// Sets the torn-response rate (builder style).
    pub fn net_torn(mut self, pct: u8) -> FaultPlan {
        self.net_torn_pct = pct.min(100);
        self
    }

    /// Sets the fragment write-corruption rate (builder style).
    pub fn frag_corruptions(mut self, pct: u8) -> FaultPlan {
        self.store_frag_corrupt_pct = pct.min(100);
        self
    }

    /// Sets the torn-manifest rate (builder style).
    pub fn torn_manifests(mut self, pct: u8) -> FaultPlan {
        self.store_torn_manifest_pct = pct.min(100);
        self
    }

    /// Sets the crash-between-fragment-and-manifest rate (builder
    /// style).
    pub fn put_crashes(mut self, pct: u8) -> FaultPlan {
        self.store_put_crash_pct = pct.min(100);
        self
    }

    /// Sets the disk-full durable-write failure rate (builder style).
    pub fn store_fulls(mut self, pct: u8) -> FaultPlan {
        self.store_full_pct = pct.min(100);
        self
    }

    /// Whether any site has a non-zero rate.
    pub fn any_enabled(&self) -> bool {
        self.cache_read_pct > 0
            || self.cache_write_pct > 0
            || self.phase_panic_pct > 0
            || self.audit_violation_pct > 0
            || self.any_net_enabled()
            || self.any_store_enabled()
    }

    /// Whether any network probe site has a non-zero rate.
    pub fn any_net_enabled(&self) -> bool {
        self.net_accept_pct > 0
            || self.net_disconnect_pct > 0
            || self.net_stall_pct > 0
            || self.net_torn_pct > 0
    }

    /// Whether any artifact-store probe site has a non-zero rate.
    pub fn any_store_enabled(&self) -> bool {
        self.store_frag_corrupt_pct > 0
            || self.store_torn_manifest_pct > 0
            || self.store_put_crash_pct > 0
            || self.store_full_pct > 0
    }

    /// Whether the probe at `site` keyed by `key` fires. Deterministic
    /// in `(seed, site, key)` — never in call order or thread schedule.
    pub fn fires(&self, site: FaultSite, key: &str) -> bool {
        let pct = match site {
            FaultSite::CacheRead => self.cache_read_pct,
            FaultSite::CacheWrite => self.cache_write_pct,
            FaultSite::PhasePanic => self.phase_panic_pct,
            FaultSite::AuditViolation => self.audit_violation_pct,
            FaultSite::NetAccept => self.net_accept_pct,
            FaultSite::NetDisconnect => self.net_disconnect_pct,
            FaultSite::NetStall => self.net_stall_pct,
            FaultSite::NetTorn => self.net_torn_pct,
            FaultSite::StoreFragCorrupt => self.store_frag_corrupt_pct,
            FaultSite::StoreTornManifest => self.store_torn_manifest_pct,
            FaultSite::StorePutCrash => self.store_put_crash_pct,
            FaultSite::StoreFull => self.store_full_pct,
        };
        if pct == 0 {
            return false;
        }
        if pct >= 100 {
            return true;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ fnv1a(key));
        (h % 100) < pct as u64
    }

    /// For a faulted cache write: whether the `attempt`-th try (0-based)
    /// still fails. Combines [`FaultPlan::fires`] at
    /// [`FaultSite::CacheWrite`] with the transient count, so retry
    /// loops can distinguish transient from persistent failures.
    pub fn write_attempt_fails(&self, key: &str, attempt: u32) -> bool {
        if !self.fires(FaultSite::CacheWrite, key) {
            return false;
        }
        self.write_transient == u8::MAX || attempt < self.write_transient as u32
    }

    /// Parses a fault spec.
    ///
    /// Grammar: either a bare seed (`"42"`) or a comma-separated
    /// `key=value` list starting from [`FaultPlan::from_seed`] defaults:
    /// `seed=42,read=10,write=30,panic=0,audit=100,transient=2`.
    /// `transient=max` makes write faults persistent. Network probe
    /// rates take the keys `accept=`, `disconnect=`, `stall=` and
    /// `torn=`; artifact-store probe rates take `fragcorrupt=`,
    /// `manifesttorn=`, `putcrash=` and `storefull=` (all default 0).
    /// A spec without `seed` is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, out-of-range
    /// rates, or a missing seed.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(FaultPlan::from_seed(seed));
        }
        let mut seed: Option<u64> = None;
        let mut overrides: Vec<(String, String)> = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((k, v)) = part.split_once('=') else {
                return Err(format!("fault spec item `{part}` is not key=value"));
            };
            if k == "seed" {
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad fault seed `{v}`"))?,
                );
            } else {
                overrides.push((k.to_string(), v.to_string()));
            }
        }
        let Some(seed) = seed else {
            return Err("fault spec needs seed=N (or a bare seed)".to_string());
        };
        let mut plan = FaultPlan::from_seed(seed);
        for (k, v) in overrides {
            let pct = |v: &str| -> Result<u8, String> {
                let n: u8 = v.parse().map_err(|_| format!("bad fault rate `{v}`"))?;
                if n > 100 {
                    return Err(format!("fault rate `{v}` exceeds 100"));
                }
                Ok(n)
            };
            match k.as_str() {
                "read" => plan.cache_read_pct = pct(&v)?,
                "write" => plan.cache_write_pct = pct(&v)?,
                "panic" => plan.phase_panic_pct = pct(&v)?,
                "audit" => plan.audit_violation_pct = pct(&v)?,
                "accept" => plan.net_accept_pct = pct(&v)?,
                "disconnect" => plan.net_disconnect_pct = pct(&v)?,
                "stall" => plan.net_stall_pct = pct(&v)?,
                "torn" => plan.net_torn_pct = pct(&v)?,
                "fragcorrupt" => plan.store_frag_corrupt_pct = pct(&v)?,
                "manifesttorn" => plan.store_torn_manifest_pct = pct(&v)?,
                "putcrash" => plan.store_put_crash_pct = pct(&v)?,
                "storefull" => plan.store_full_pct = pct(&v)?,
                "transient" => {
                    plan.write_transient = if v == "max" {
                        u8::MAX
                    } else {
                        v.parse::<u8>()
                            .map_err(|_| format!("bad transient count `{v}`"))?
                    }
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Reads a plan from the `MATC_FAULTS` environment variable.
    ///
    /// # Errors
    ///
    /// Returns `Ok(None)` when the variable is unset or empty, and the
    /// parse error when it is set but malformed.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v).map(Some),
            _ => Ok(None),
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},read={},write={},panic={},audit={},transient={}",
            self.seed,
            self.cache_read_pct,
            self.cache_write_pct,
            self.phase_panic_pct,
            self.audit_violation_pct,
            if self.write_transient == u8::MAX {
                "max".to_string()
            } else {
                self.write_transient.to_string()
            }
        )?;
        if self.any_net_enabled() {
            write!(
                f,
                ",accept={},disconnect={},stall={},torn={}",
                self.net_accept_pct, self.net_disconnect_pct, self.net_stall_pct, self.net_torn_pct
            )?;
        }
        if self.any_store_enabled() {
            write!(
                f,
                ",fragcorrupt={},manifesttorn={},putcrash={},storefull={}",
                self.store_frag_corrupt_pct,
                self.store_torn_manifest_pct,
                self.store_put_crash_pct,
                self.store_full_pct
            )?;
        }
        Ok(())
    }
}

/// SplitMix64 — the standard 64-bit finalizer-style mixer. Public so
/// the cache's retry jitter and the deterministic simulation's RNG can
/// reuse it.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the key string (stable across platforms and runs).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_schedule_independent() {
        let p = FaultPlan::from_seed(7).cache_reads(50);
        let first: Vec<bool> = (0..64)
            .map(|i| p.fires(FaultSite::CacheRead, &format!("unit{i}")))
            .collect();
        // Re-query in reverse order: same answers per key.
        for i in (0..64).rev() {
            assert_eq!(
                p.fires(FaultSite::CacheRead, &format!("unit{i}")),
                first[i as usize]
            );
        }
        assert!(first.iter().any(|b| *b));
        assert!(first.iter().any(|b| !*b));
    }

    #[test]
    fn sites_are_independent() {
        let p = FaultPlan::quiet(3).panics(100);
        assert!(p.fires(FaultSite::PhasePanic, "x"));
        assert!(!p.fires(FaultSite::CacheRead, "x"));
        assert!(!p.fires(FaultSite::CacheWrite, "x"));
        assert!(!p.fires(FaultSite::AuditViolation, "x"));
    }

    #[test]
    fn transient_write_faults_clear_after_n_attempts() {
        let p = FaultPlan::quiet(1).cache_writes(100).transient(2);
        assert!(p.write_attempt_fails("k", 0));
        assert!(p.write_attempt_fails("k", 1));
        assert!(!p.write_attempt_fails("k", 2));
        let persistent = p.transient(u8::MAX);
        assert!(persistent.write_attempt_fails("k", 1000));
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let p = FaultPlan::parse("seed=9,read=10,write=0,panic=100,audit=5,transient=max").unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.cache_read_pct, 10);
        assert_eq!(p.phase_panic_pct, 100);
        assert_eq!(p.write_transient, u8::MAX);
        let rendered = p.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), p);

        assert_eq!(FaultPlan::parse("42").unwrap(), FaultPlan::from_seed(42));
        assert!(FaultPlan::parse("read=10").is_err(), "seed is required");
        assert!(FaultPlan::parse("seed=1,bogus=2").is_err());
        assert!(FaultPlan::parse("seed=1,read=101").is_err());
    }

    #[test]
    fn pipeline_seed_mixture_never_enables_network_probes() {
        // `from_seed` feeds the pinned pipeline fault matrix; adding the
        // network sites must not perturb any existing seed's plan.
        for seed in 0..200 {
            let p = FaultPlan::from_seed(seed);
            assert!(!p.any_net_enabled(), "seed {seed} gained a net fault");
        }
    }

    #[test]
    fn pipeline_and_net_mixtures_never_enable_store_probes() {
        // Both pinned matrices predate the store sites; adding them
        // must not perturb any existing seed's plan.
        for seed in 0..200 {
            assert!(
                !FaultPlan::from_seed(seed).any_store_enabled(),
                "from_seed {seed} gained a store fault"
            );
            assert!(
                !FaultPlan::net_from_seed(seed).any_store_enabled(),
                "net_from_seed {seed} gained a store fault"
            );
        }
    }

    #[test]
    fn store_seed_mixture_covers_all_corruption_fates() {
        let plans: Vec<FaultPlan> = (0..50).map(FaultPlan::store_from_seed).collect();
        assert!(plans.iter().any(|p| !p.any_enabled()), "some seeds quiet");
        assert!(plans.iter().any(|p| p.store_frag_corrupt_pct > 0));
        assert!(plans.iter().any(|p| p.store_torn_manifest_pct > 0));
        assert!(plans.iter().any(|p| p.store_put_crash_pct > 0));
        assert!(
            plans
                .iter()
                .any(|p| p.cache_read_pct > 0 && p.any_store_enabled()),
            "some seeds cross write-side with read-side corruption"
        );
        assert!(
            plans
                .iter()
                .all(|p| p.phase_panic_pct == 0 && p.audit_violation_pct == 0),
            "store matrix keeps the compiles themselves pristine"
        );
    }

    #[test]
    fn store_spec_keys_parse_and_round_trip() {
        let p = FaultPlan::parse("seed=4,fragcorrupt=10,manifesttorn=30,putcrash=100").unwrap();
        assert_eq!(p.store_frag_corrupt_pct, 10);
        assert_eq!(p.store_torn_manifest_pct, 30);
        assert_eq!(p.store_put_crash_pct, 100);
        assert!(p.any_store_enabled() && p.any_enabled());
        let rendered = p.to_string();
        assert!(
            rendered.contains("putcrash=100"),
            "store rates render: {rendered}"
        );
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), p);
        assert!(FaultPlan::parse("seed=1,fragcorrupt=101").is_err());
        assert!(
            !FaultPlan::quiet(3).to_string().contains("fragcorrupt="),
            "all-zero store rates stay out of the rendering"
        );
    }

    #[test]
    fn store_full_site_parses_and_stays_out_of_seed_mixtures() {
        let p = FaultPlan::parse("seed=5,storefull=100").unwrap();
        assert_eq!(p.store_full_pct, 100);
        assert!(p.fires(FaultSite::StoreFull, "cu0"));
        assert!(!p.fires(FaultSite::StorePutCrash, "cu0"));
        let rendered = p.to_string();
        assert!(rendered.contains("storefull=100"), "renders: {rendered}");
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), p);
        // The pinned store matrix predates this site: no seed may gain it.
        for seed in 0..200 {
            assert_eq!(FaultPlan::store_from_seed(seed).store_full_pct, 0);
        }
    }

    #[test]
    fn store_sites_are_independent_of_pipeline_sites() {
        let p = FaultPlan::quiet(9).put_crashes(100);
        assert!(p.fires(FaultSite::StorePutCrash, "deadbeef"));
        assert!(!p.fires(FaultSite::StoreFragCorrupt, "deadbeef"));
        assert!(!p.fires(FaultSite::StoreTornManifest, "deadbeef"));
        assert!(!p.fires(FaultSite::CacheWrite, "deadbeef"));
        let partial = FaultPlan::quiet(9).frag_corruptions(50);
        let fates: Vec<bool> = (0..64)
            .map(|i| partial.fires(FaultSite::StoreFragCorrupt, &format!("frag{i}")))
            .collect();
        assert!(fates.iter().any(|b| *b) && fates.iter().any(|b| !*b));
    }

    #[test]
    fn net_seed_mixture_covers_all_connection_fates() {
        let plans: Vec<FaultPlan> = (0..50).map(FaultPlan::net_from_seed).collect();
        assert!(plans.iter().any(|p| !p.any_enabled()), "some seeds quiet");
        assert!(plans.iter().any(|p| p.net_accept_pct > 0));
        assert!(plans.iter().any(|p| p.net_disconnect_pct > 0));
        assert!(plans.iter().any(|p| p.net_stall_pct > 0));
        assert!(plans.iter().any(|p| p.net_torn_pct > 0));
        assert!(
            plans
                .iter()
                .any(|p| p.phase_panic_pct > 0 && p.any_net_enabled()),
            "some seeds cross net faults with unit panics"
        );
        assert!(
            plans.iter().all(|p| p.cache_read_pct == 0
                && p.cache_write_pct == 0
                && p.audit_violation_pct == 0),
            "net matrix keeps cache/audit probes off"
        );
    }

    #[test]
    fn net_spec_keys_parse_and_round_trip() {
        let p = FaultPlan::parse("seed=4,accept=10,disconnect=30,stall=5,torn=100").unwrap();
        assert_eq!(p.net_accept_pct, 10);
        assert_eq!(p.net_disconnect_pct, 30);
        assert_eq!(p.net_stall_pct, 5);
        assert_eq!(p.net_torn_pct, 100);
        assert!(p.any_net_enabled() && p.any_enabled());
        let rendered = p.to_string();
        assert!(
            rendered.contains("torn=100"),
            "net rates render: {rendered}"
        );
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), p);
        assert!(FaultPlan::parse("seed=1,stall=101").is_err());

        let quiet = FaultPlan::quiet(3);
        assert!(
            !quiet.to_string().contains("accept="),
            "all-zero net rates stay out of the rendering"
        );
        assert_eq!(FaultPlan::parse(&quiet.to_string()).unwrap(), quiet);
    }

    #[test]
    fn net_sites_are_independent_of_pipeline_sites() {
        let p = FaultPlan::quiet(9).net_torn(100);
        assert!(p.fires(FaultSite::NetTorn, "conn3/req1"));
        assert!(!p.fires(FaultSite::NetAccept, "conn3/req1"));
        assert!(!p.fires(FaultSite::PhasePanic, "conn3/req1"));
        let partial = FaultPlan::quiet(9).net_stalls(50);
        let fates: Vec<bool> = (0..64)
            .map(|i| partial.fires(FaultSite::NetStall, &format!("conn{i}")))
            .collect();
        assert!(fates.iter().any(|b| *b) && fates.iter().any(|b| !*b));
    }

    #[test]
    fn seed_mixture_covers_quiet_and_noisy_plans() {
        let plans: Vec<FaultPlan> = (0..50).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| !p.any_enabled()), "some seeds quiet");
        assert!(
            plans.iter().any(|p| p.phase_panic_pct > 0),
            "some seeds panic"
        );
        assert!(
            plans.iter().any(|p| p.audit_violation_pct > 0),
            "some seeds inject audit violations"
        );
        assert!(
            plans
                .iter()
                .any(|p| p.cache_write_pct > 0 && p.write_transient != u8::MAX),
            "some seeds exercise the transient-retry path"
        );
    }
}
