//! The [`Strategy`] trait and the combinators our tests use.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest
/// there is no value tree / shrinking: a strategy is just a generator.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty integer range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
