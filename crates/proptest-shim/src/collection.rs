//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`]: an exact length, a
/// half-open range, or an inclusive range.
pub trait IntoSizeRange {
    /// Inclusive lower bound, exclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty vec length range");
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
