//! A small, offline, drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace aliases `proptest` to this shim (see the root
//! `Cargo.toml`). It implements exactly the API surface our property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`
//! / `boxed`, integer and float range strategies, tuples, [`Just`],
//! `any::<T>()`, `prop_oneof!`, `collection::vec`, and the
//! [`proptest!`] test macro with `ProptestConfig { cases, .. }`.
//!
//! Differences from real proptest, by design:
//! - generation is a deterministic xorshift stream per test case (the
//!   seed can be moved with `MATC_PROPTEST_SEED`), so failures are
//!   reproducible without a persistence file;
//! - there is no shrinking — on failure the full generated input is
//!   printed instead;
//! - `prop_assume!` skips the case rather than retrying it.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Mirrors proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr);
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __repr = format!("{:?}", __vals);
                    // Bodies may use `?` / `return Ok(())` as with real
                    // proptest, so they run inside a Result closure.
                    type __TestResult =
                        ::std::result::Result<(), ::std::boxed::Box<dyn ::std::error::Error>>;
                    let __res = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> __TestResult {
                            let ( $($pat,)+ ) = __vals;
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ));
                    let __failure = match __res {
                        Ok(Ok(())) => None,
                        Ok(Err(e)) => Some(Err(e)),
                        Err(p) => Some(Ok(p)),
                    };
                    if let Some(__f) = __failure {
                        eprintln!(
                            "[proptest-shim] case {}/{} failed; generated input:\n{}",
                            __case + 1,
                            __cfg.cases,
                            __repr
                        );
                        match __f {
                            Ok(__panic) => ::std::panic::resume_unwind(__panic),
                            Err(__err) => panic!("test case returned error: {__err}"),
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::Strategy::boxed($s) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}
