//! Deterministic case runner: configuration and the generation RNG.

/// Subset of proptest's configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// xorshift64* generator. Deterministic per test case so failures
/// reproduce without persistence files; set `MATC_PROPTEST_SEED` to
/// explore a different stream.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // 0 is a fixed point of xorshift; nudge it off.
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// RNG for the `case`-th invocation of a test function.
    pub fn for_case(case: u32) -> Self {
        let base = std::env::var("MATC_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x6d61_7463_7365_6564); // "matcseed"
        TestRng::new(base.wrapping_add(0x5851_f42d_4c95_7f2d_u64.wrapping_mul(u64::from(case) + 1)))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
