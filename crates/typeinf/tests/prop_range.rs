//! Range-arithmetic soundness: for any concrete values inside two
//! ranges, every interval operation's result must contain the concrete
//! result — the containment property the inference's subscript-bound
//! and growth reasoning (§3.2) relies on.

use matc_typeinf::Range;
use proptest::prelude::*;

/// A random finite range plus a sample point inside it.
fn arb_range_with_point() -> impl Strategy<Value = (Range, f64)> {
    (-50i32..50, 0u8..20, any::<bool>(), 0.0..1.0f64).prop_map(|(lo, w, int, t)| {
        let lo = lo as f64;
        let hi = lo + w as f64;
        let x = if int {
            (lo + (w as f64 * t).floor()).min(hi)
        } else {
            lo + (hi - lo) * t
        };
        (Range::new(lo, hi, int), x)
    })
}

fn contains(r: &Range, x: f64) -> bool {
    r.lo <= x && x <= r.hi
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn add_is_sound(((a, x), (b, y)) in (arb_range_with_point(), arb_range_with_point())) {
        prop_assert!(contains(&a.add(b), x + y));
    }

    #[test]
    fn sub_is_sound(((a, x), (b, y)) in (arb_range_with_point(), arb_range_with_point())) {
        prop_assert!(contains(&a.sub(b), x - y));
    }

    #[test]
    fn mul_is_sound(((a, x), (b, y)) in (arb_range_with_point(), arb_range_with_point())) {
        prop_assert!(contains(&a.mul(b), x * y));
    }

    #[test]
    fn neg_is_sound((a, x) in arb_range_with_point()) {
        prop_assert!(contains(&a.neg(), -x));
    }

    #[test]
    fn join_contains_both_sides(((a, x), (b, y)) in (arb_range_with_point(), arb_range_with_point())) {
        let j = a.join(b);
        prop_assert!(contains(&j, x));
        prop_assert!(contains(&j, y));
    }

    #[test]
    fn widen_still_contains((a, x) in arb_range_with_point(), (b, _) in arb_range_with_point()) {
        // Widening a against previous b must still cover a's points.
        prop_assert!(contains(&a.widen(b), x));
    }

    #[test]
    fn integrality_preserved_by_add(((a, _), (b, _)) in (arb_range_with_point(), arb_range_with_point())) {
        let r = a.add(b);
        if a.integral && b.integral {
            prop_assert!(r.integral, "int + int lost integrality");
        }
    }
}
