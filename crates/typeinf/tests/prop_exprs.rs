//! Property tests for the symbolic-expression arena: every `provably_ge`
//! claim must hold under evaluation for all admissible (nonnegative)
//! assignments, and canonicalization must respect arithmetic identity.

use matc_typeinf::exprs::{ExprCtx, ExprId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Node {
    Sym(u8),
    Const(i8),
    Add(usize, usize),
    Mul(usize, usize),
    Max(usize, usize),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..3u8).prop_map(Node::Sym),
        (0..8i8).prop_map(Node::Const),
        (0..16usize, 0..16usize).prop_map(|(a, b)| Node::Add(a, b)),
        (0..16usize, 0..16usize).prop_map(|(a, b)| Node::Mul(a, b)),
        (0..16usize, 0..16usize).prop_map(|(a, b)| Node::Max(a, b)),
    ]
}

fn build(cx: &mut ExprCtx, nodes: &[Node]) -> Vec<ExprId> {
    let syms: Vec<ExprId> = (0..3)
        .map(|i| cx.fresh_sym(format!("s{i}"), true))
        .collect();
    let mut pool: Vec<ExprId> = syms;
    for n in nodes {
        let id = match n {
            Node::Sym(i) => pool[*i as usize % 3],
            Node::Const(v) => cx.constant(*v as i64),
            Node::Add(a, b) => {
                let (x, y) = (pool[a % pool.len()], pool[b % pool.len()]);
                cx.add(x, y)
            }
            Node::Mul(a, b) => {
                let (x, y) = (pool[a % pool.len()], pool[b % pool.len()]);
                cx.mul(x, y)
            }
            Node::Max(a, b) => {
                let (x, y) = (pool[a % pool.len()], pool[b % pool.len()]);
                cx.max(x, y)
            }
        };
        pool.push(id);
    }
    pool
}

proptest! {
    #[test]
    fn provably_ge_is_sound(
        nodes in proptest::collection::vec(node_strategy(), 1..20),
        envs in proptest::collection::vec((0..50i64, 0..50i64, 0..50i64), 8)
    ) {
        let mut cx = ExprCtx::new();
        let pool = build(&mut cx, &nodes);
        for i in 0..pool.len().min(12) {
            for j in 0..pool.len().min(12) {
                let (a, b) = (pool[i], pool[j]);
                if cx.provably_ge(a, b) {
                    for (x, y, z) in &envs {
                        let env = [*x, *y, *z];
                        prop_assert!(
                            cx.eval(a, &env) >= cx.eval(b, &env),
                            "claimed {} >= {} but {:?} refutes",
                            cx.render(a),
                            cx.render(b),
                            env
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn canonicalization_preserves_value(
        nodes in proptest::collection::vec(node_strategy(), 1..20),
        env in (0..50i64, 0..50i64, 0..50i64)
    ) {
        // add/mul built in either order evaluate identically and intern
        // to the same handle.
        let mut cx = ExprCtx::new();
        let pool = build(&mut cx, &nodes);
        let env = [env.0, env.1, env.2];
        for w in pool.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ab = cx.add(a, b);
            let ba = cx.add(b, a);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(cx.eval(ab, &env), cx.eval(a, &env) + cx.eval(b, &env));
            let m1 = cx.mul(a, b);
            let m2 = cx.mul(b, a);
            prop_assert_eq!(m1, m2);
            let mx1 = cx.max(a, b);
            prop_assert_eq!(cx.eval(mx1, &env), cx.eval(a, &env).max(cx.eval(b, &env)));
        }
    }
}
