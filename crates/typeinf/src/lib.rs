//! # matc-typeinf
//!
//! Type inference for `matc` — the stand-in for the paper's MAGICA engine
//! (§3.1 of *Static Array Storage Optimization in MATLAB*, PLDI 2003).
//!
//! For every SSA variable the engine infers the four facts GCTD consumes:
//! the intrinsic type `t(v)` ([`intrinsic::Intrinsic`]), the shape tuple
//! `s(v)` with symbolic extents ([`shape::Shape`] over interned
//! [`exprs::ExprCtx`] expressions), the rank, and a value range
//! ([`range::Range`]). Symbolically equivalent shapes share one interned
//! identity, giving Phase 2 of GCTD its "shape expression reuse".
//!
//! ## Example
//!
//! ```
//! use matc_frontend::parser::parse_program;
//! use matc_ir::build_ssa;
//! use matc_typeinf::infer_program;
//!
//! let ast = parse_program([
//!     "function y = driver()\ny = kernel(16);\nend\nfunction a = kernel(n)\na = rand(n, n);\nend\n",
//! ]).unwrap();
//! let ir = build_ssa(&ast).unwrap();
//! let types = infer_program(&ir);
//! let out = ir.entry_func().ssa_outs[0];
//! let facts = types.facts(ir.entry.unwrap(), out).unwrap();
//! assert_eq!(facts.shape.known_dims(&types.ctx), Some(vec![16, 16]));
//! ```

#![warn(missing_docs)]

pub mod exprs;
pub mod infer;
pub mod intrinsic;
pub mod range;
pub mod shape;

pub use exprs::{ExprCtx, ExprId};
pub use infer::{
    infer_program, infer_program_budgeted, FuncTypes, ProgramTypes, TypeSummary, VarFacts,
};
pub use intrinsic::Intrinsic;
pub use range::Range;
pub use shape::Shape;
