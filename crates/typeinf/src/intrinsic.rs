//! The intrinsic-type lattice.
//!
//! The paper's MAGICA engine infers one of BOOLEAN, BYTE, INTEGER, REAL,
//! COMPLEX, NONREAL or the abstract illegal type *i* for every variable
//! (§3.1). Our lattice is the chain
//!
//! ```text
//! Bool ⊑ Byte ⊑ Int ⊑ Real ⊑ Complex   (+ Illegal as ⊤-error)
//! ```
//!
//! NONREAL — MAGICA's "anything but complex" — coincides with `Real` in a
//! chain model and is represented by it (see DESIGN.md §4). The
//! storage-size function |t| of §3.2 is [`Intrinsic::byte_size`]; phase 2
//! of GCTD demands *identical* intrinsic types within a group precisely
//! so the generated C needs no casts or realignment.

use std::fmt;

/// An intrinsic (element) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Intrinsic {
    /// Logical 0/1 (`BOOLEAN`), 1 byte.
    Bool,
    /// Character / small unsigned (`BYTE`), 1 byte.
    Byte,
    /// 32-bit integral values (`INTEGER`), 4 bytes.
    Int,
    /// Double-precision real (`REAL`, subsuming `NONREAL`), 8 bytes.
    Real,
    /// Double-precision complex (`COMPLEX`), 16 bytes.
    Complex,
    /// The abstract illegal type *i*: an intrinsic-type error was proven
    /// possible. Treated as 16 bytes for conservative sizing.
    Illegal,
}

impl Intrinsic {
    /// The C storage size |t| in bytes of one element.
    pub fn byte_size(self) -> u64 {
        match self {
            Intrinsic::Bool | Intrinsic::Byte => 1,
            Intrinsic::Int => 4,
            Intrinsic::Real => 8,
            Intrinsic::Complex | Intrinsic::Illegal => 16,
        }
    }

    /// Lattice join (least upper bound): the chain maximum.
    pub fn join(self, other: Intrinsic) -> Intrinsic {
        self.max(other)
    }

    /// The smallest intrinsic type able to represent the closed real
    /// interval `[lo, hi]`, given whether all values are integral.
    ///
    /// ```
    /// use matc_typeinf::intrinsic::Intrinsic;
    ///
    /// assert_eq!(Intrinsic::for_range(0.0, 1.0, true), Intrinsic::Bool);
    /// assert_eq!(Intrinsic::for_range(0.0, 200.0, true), Intrinsic::Byte);
    /// assert_eq!(Intrinsic::for_range(-5.0, 9.0, true), Intrinsic::Int);
    /// assert_eq!(Intrinsic::for_range(0.0, 1.0, false), Intrinsic::Real);
    /// ```
    pub fn for_range(lo: f64, hi: f64, integral: bool) -> Intrinsic {
        if !integral || !lo.is_finite() || !hi.is_finite() {
            return Intrinsic::Real;
        }
        if lo >= 0.0 && hi <= 1.0 {
            Intrinsic::Bool
        } else if lo >= 0.0 && hi <= 255.0 {
            Intrinsic::Byte
        } else if lo >= i32::MIN as f64 && hi <= i32::MAX as f64 {
            Intrinsic::Int
        } else {
            Intrinsic::Real
        }
    }

    /// Whether values of this type may have a nonzero imaginary part.
    pub fn is_complex(self) -> bool {
        matches!(self, Intrinsic::Complex | Intrinsic::Illegal)
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Bool => "BOOLEAN",
            Intrinsic::Byte => "BYTE",
            Intrinsic::Int => "INTEGER",
            Intrinsic::Real => "REAL",
            Intrinsic::Complex => "COMPLEX",
            Intrinsic::Illegal => "ILLEGAL",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_chain_max() {
        assert_eq!(Intrinsic::Bool.join(Intrinsic::Real), Intrinsic::Real);
        assert_eq!(Intrinsic::Int.join(Intrinsic::Byte), Intrinsic::Int);
        assert_eq!(Intrinsic::Complex.join(Intrinsic::Bool), Intrinsic::Complex);
        assert_eq!(
            Intrinsic::Illegal.join(Intrinsic::Complex),
            Intrinsic::Illegal
        );
    }

    #[test]
    fn sizes_match_c_mapping() {
        assert_eq!(Intrinsic::Bool.byte_size(), 1);
        assert_eq!(Intrinsic::Int.byte_size(), 4);
        assert_eq!(Intrinsic::Real.byte_size(), 8);
        assert_eq!(Intrinsic::Complex.byte_size(), 16);
    }

    #[test]
    fn range_classification_edges() {
        assert_eq!(Intrinsic::for_range(0.0, 255.0, true), Intrinsic::Byte);
        assert_eq!(Intrinsic::for_range(0.0, 256.0, true), Intrinsic::Int);
        assert_eq!(Intrinsic::for_range(-1.0, 1.0, true), Intrinsic::Int);
        assert_eq!(
            Intrinsic::for_range(f64::NEG_INFINITY, 0.0, true),
            Intrinsic::Real
        );
        assert_eq!(Intrinsic::for_range(1e300, 1e301, true), Intrinsic::Real);
    }
}
