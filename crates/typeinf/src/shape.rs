//! Shape tuples, possibly symbolic (§3.1–3.2).
//!
//! A shape is either an explicit tuple of (symbolic) extents or a
//! rank-unknown shape identified by its symbolic element count. The
//! storage size of §3.2 is `|s(u)|·|t(u)|`, where `|s(u)|` — the element
//! count — is an interned [`ExprId`], so symbolically equivalent shapes
//! compare equal by handle and `provably_ge` decides the ⪯ order's
//! `S(u) ≤ S(v)` obligations.

use crate::exprs::{ExprCtx, ExprId};
use std::fmt;

/// An inferred array shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Known rank with per-dimension extents (rank ≥ 2 in MATLAB; a
    /// scalar is `1 × 1`). Extents are interned symbolic expressions.
    Tuple(Vec<ExprId>),
    /// Unknown rank; the payload is a symbolic expression for the
    /// element count, giving the shape an identity that elementwise
    /// operations propagate (the paper's shape-expression reuse).
    Any(ExprId),
}

impl Shape {
    /// The `1 × 1` scalar shape.
    pub fn scalar(cx: &mut ExprCtx) -> Shape {
        let one = cx.constant(1);
        Shape::Tuple(vec![one, one])
    }

    /// A `rows × cols` shape from constants.
    pub fn matrix(cx: &mut ExprCtx, rows: i64, cols: i64) -> Shape {
        let r = cx.constant(rows);
        let c = cx.constant(cols);
        Shape::Tuple(vec![r, c])
    }

    /// The `0 × 0` empty shape.
    pub fn empty(cx: &mut ExprCtx) -> Shape {
        Shape::matrix(cx, 0, 0)
    }

    /// A fresh completely-unknown shape.
    pub fn fresh(cx: &mut ExprCtx, hint: &str) -> Shape {
        Shape::Any(cx.fresh_sym(format!("|{hint}|"), true))
    }

    /// Whether the shape is provably `1 × 1`.
    pub fn is_scalar(&self, cx: &ExprCtx) -> bool {
        match self {
            Shape::Tuple(dims) => dims.iter().all(|d| cx.as_const(*d) == Some(1)),
            Shape::Any(_) => false,
        }
    }

    /// Whether the shape is provably a vector (some dimension is 1 and
    /// rank is 2). Scalars count as vectors.
    pub fn is_vector(&self, cx: &ExprCtx) -> bool {
        match self {
            Shape::Tuple(dims) => {
                dims.len() == 2 && dims.iter().any(|d| cx.as_const(*d) == Some(1))
            }
            Shape::Any(_) => false,
        }
    }

    /// The rank (dimensionality ϱ), if known.
    pub fn rank(&self) -> Option<usize> {
        match self {
            Shape::Tuple(d) => Some(d.len()),
            Shape::Any(_) => None,
        }
    }

    /// The symbolic element count `|s|`.
    pub fn numel(&self, cx: &mut ExprCtx) -> ExprId {
        match self {
            Shape::Tuple(dims) => {
                let mut acc = cx.constant(1);
                for d in dims {
                    acc = cx.mul(acc, *d);
                }
                acc
            }
            Shape::Any(e) => *e,
        }
    }

    /// All extents as constants, if fully explicit (§3.2.1 case 1).
    pub fn known_dims(&self, cx: &ExprCtx) -> Option<Vec<i64>> {
        match self {
            Shape::Tuple(dims) => dims.iter().map(|d| cx.as_const(*d)).collect(),
            Shape::Any(_) => None,
        }
    }

    /// Whether every extent is a compile-time constant.
    pub fn is_explicit(&self, cx: &ExprCtx) -> bool {
        self.known_dims(cx).is_some()
    }

    /// Unifies two shapes known (by operation semantics) to be equal at
    /// run time — e.g. the operands of a non-scalar elementwise op. Picks
    /// the more specific structure.
    pub fn unify_equal(&self, other: &Shape, cx: &mut ExprCtx) -> Shape {
        match (self, other) {
            (Shape::Tuple(a), Shape::Tuple(b)) if a.len() == b.len() => {
                let dims = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        // Prefer a constant extent when one side has it;
                        // otherwise either identity works (they are equal
                        // at run time by operation semantics).
                        if cx.as_const(*y).is_some() && cx.as_const(*x).is_none() {
                            *y
                        } else {
                            *x
                        }
                    })
                    .collect();
                Shape::Tuple(dims)
            }
            (Shape::Tuple(_), Shape::Any(_)) => self.clone(),
            (Shape::Any(_), Shape::Tuple(_)) => other.clone(),
            (Shape::Any(a), Shape::Any(_)) => Shape::Any(*a),
            _ => self.clone(),
        }
    }

    /// Joins two shapes that may differ at run time (φ-nodes). Equal
    /// handles stay; differing extents become *fresh-free* only when one
    /// side is constant-equal, otherwise the join degrades per dimension
    /// to a `max` (a sound upper-bound identity is not required here —
    /// only equality is ever *relied* on, so a lossy join is safe).
    pub fn join(&self, other: &Shape, cx: &mut ExprCtx) -> Shape {
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Shape::Tuple(a), Shape::Tuple(b)) if a.len() == b.len() => {
                let dims = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| if x == y { *x } else { cx.max(*x, *y) })
                    .collect();
                Shape::Tuple(dims)
            }
            _ => {
                let na = self.clone().numel(cx);
                let nb = other.clone().numel(cx);
                Shape::Any(cx.max(na, nb))
            }
        }
    }

    /// Renders for diagnostics, e.g. `(3, n)` or `|rand|`.
    pub fn render(&self, cx: &ExprCtx) -> String {
        match self {
            Shape::Tuple(dims) => {
                let parts: Vec<String> = dims.iter().map(|d| cx.render(*d)).collect();
                format!("({})", parts.join(", "))
            }
            Shape::Any(e) => format!("any[{}]", cx.render(*e)),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Tuple(d) => write!(f, "tuple(rank {})", d.len()),
            Shape::Any(_) => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_predicates() {
        let mut cx = ExprCtx::new();
        let s = Shape::scalar(&mut cx);
        assert!(s.is_scalar(&cx));
        assert!(s.is_vector(&cx));
        assert!(s.is_explicit(&cx));
        assert_eq!(s.rank(), Some(2));
        let n = cx.fresh_sym("n", true);
        let one = cx.constant(1);
        let v = Shape::Tuple(vec![one, n]);
        assert!(!v.is_scalar(&cx));
        assert!(v.is_vector(&cx));
        assert!(!v.is_explicit(&cx));
    }

    #[test]
    fn numel_is_product() {
        let mut cx = ExprCtx::new();
        let m = Shape::matrix(&mut cx, 4, 5);
        let n = m.numel(&mut cx);
        assert_eq!(cx.as_const(n), Some(20));

        let k = cx.fresh_sym("k", true);
        let three = cx.constant(3);
        let s = Shape::Tuple(vec![three, k]);
        let ne = s.numel(&mut cx);
        let expect = cx.mul(three, k);
        assert_eq!(ne, expect);
    }

    #[test]
    fn elementwise_shape_identity_reuse() {
        // The paper's Example 1: t1 = t0 - 1.345 etc. all share s(t0).
        let mut cx = ExprCtx::new();
        let t0 = Shape::fresh(&mut cx, "t0");
        let scalar = Shape::scalar(&mut cx);
        // elementwise(t0, scalar) keeps t0's identity
        let t1 = if scalar.is_scalar(&cx) {
            t0.clone()
        } else {
            scalar.clone()
        };
        assert_eq!(t0, t1);
        let n0 = t0.clone().numel(&mut cx);
        let n1 = t1.clone().numel(&mut cx);
        assert_eq!(n0, n1, "identical symbolic sizes");
    }

    #[test]
    fn unify_prefers_constants() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let three = cx.constant(3);
        let four = cx.constant(4);
        let a = Shape::Tuple(vec![n, four]);
        let b = Shape::Tuple(vec![three, four]);
        let u = a.unify_equal(&b, &mut cx);
        assert_eq!(u, Shape::Tuple(vec![three, four]));
    }

    #[test]
    fn join_equal_shapes_is_identity() {
        let mut cx = ExprCtx::new();
        let s = Shape::fresh(&mut cx, "x");
        let j = s.join(&s.clone(), &mut cx);
        assert_eq!(j, s);
    }

    #[test]
    fn join_differing_tuples_takes_max() {
        let mut cx = ExprCtx::new();
        let a = Shape::matrix(&mut cx, 2, 3);
        let b = Shape::matrix(&mut cx, 5, 3);
        let j = a.join(&b, &mut cx);
        if let Shape::Tuple(d) = j {
            assert_eq!(cx.as_const(d[0]), Some(5));
            assert_eq!(cx.as_const(d[1]), Some(3));
        } else {
            panic!("expected tuple");
        }
    }
}
