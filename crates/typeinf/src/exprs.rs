//! Interned symbolic integer expressions.
//!
//! The shape-tuple and value analyses both manipulate small symbolic
//! integer expressions (array extents like `n`, `n+1`, `max(m, k)`,
//! `m*n`). Expressions are hash-consed into an arena with canonical
//! forms, so **symbolic equivalence is handle equality** — exactly the
//! reuse discipline the paper's MAGICA engine provides and the ⪯ partial
//! order of §3.2 depends on ("inferences are reused whenever symbolic
//! equivalence can be established").
//!
//! Sums are kept in a *linear normal form* (constant + Σ coeffᵢ·atomᵢ
//! with atoms sorted and coefficients combined), so differences cancel
//! and ordering queries like `n ≥ n−3` resolve structurally. Beyond
//! equality the arena answers *provable* ordering queries
//! ([`ExprCtx::provably_ge`]), used by Relation 1 to compare symbolic
//! storage sizes: `max(n, k) ≥ n`, `n + 2 ≥ n`, `3·n ≥ n`, etc. The
//! checker is sound (never claims an ordering that can fail for an
//! admissible assignment) but incomplete, matching the conservative
//! flavor of the paper.

use std::collections::HashMap;
use std::fmt;

/// An interned expression handle. Equal handles ⇔ structurally equal
/// (canonicalized) expressions within one [`ExprCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbolic unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(u32);

/// Canonical expression nodes.
///
/// Invariants maintained by the constructors:
/// * `Add` has ≥ 2 operands, at most one leading `Const`, non-constant
///   operands sorted; no operand is itself an `Add`;
/// * `Mul` has ≥ 2 operands, at most one leading `Const` (≠ 0, ±1 unless
///   alone), non-constant operands sorted; no operand is itself a `Mul`;
/// * `Max` has ≥ 2 distinct sorted operands, none provably dominated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// An integer literal.
    Const(i64),
    /// A symbolic unknown.
    Sym(SymId),
    /// Sum of operands.
    Add(Vec<ExprId>),
    /// Product of operands.
    Mul(Vec<ExprId>),
    /// Maximum of operands.
    Max(Vec<ExprId>),
}

/// The hash-consing arena for symbolic expressions.
#[derive(Debug, Default, Clone)]
pub struct ExprCtx {
    nodes: Vec<ExprNode>,
    memo: HashMap<ExprNode, ExprId>,
    /// Whether each symbol is known to be ≥ 0 (array extents are).
    sym_nonneg: Vec<bool>,
    /// Debug names of symbols.
    sym_names: Vec<String>,
}

#[allow(clippy::should_implement_trait)] // add/mul/sub/max are the symbolic algebra API
impl ExprCtx {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ExprCtx::default()
    }

    fn intern(&mut self, node: ExprNode) -> ExprId {
        if let Some(id) = self.memo.get(&node) {
            return *id;
        }
        let id = ExprId(u32::try_from(self.nodes.len()).expect("expr arena overflow"));
        self.nodes.push(node.clone());
        self.memo.insert(node, id);
        id
    }

    /// The node behind `id`.
    pub fn node(&self, id: ExprId) -> &ExprNode {
        &self.nodes[id.index()]
    }

    /// Interns an integer literal.
    pub fn constant(&mut self, v: i64) -> ExprId {
        self.intern(ExprNode::Const(v))
    }

    /// Creates a fresh symbolic unknown. `nonneg` marks symbols that can
    /// never be negative (array extents, element counts).
    pub fn fresh_sym(&mut self, name: impl Into<String>, nonneg: bool) -> ExprId {
        let sym = SymId(u32::try_from(self.sym_nonneg.len()).expect("too many symbols"));
        self.sym_nonneg.push(nonneg);
        self.sym_names.push(name.into());
        self.intern(ExprNode::Sym(sym))
    }

    /// The literal value of `id`, if it is a constant.
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.node(id) {
            ExprNode::Const(v) => Some(*v),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Linear normal form
    // ------------------------------------------------------------------

    /// Decomposes `id` into `konst + Σ coeff·atom` (atoms never `Add` or
    /// constant; a `Mul` atom never has a leading constant).
    fn linear_parts(&self, id: ExprId) -> (i64, Vec<(i64, ExprId)>) {
        match self.node(id).clone() {
            ExprNode::Const(v) => (v, vec![]),
            ExprNode::Add(ops) => {
                let mut konst = 0i64;
                let mut terms = Vec::new();
                for op in ops {
                    let (c, t) = self.linear_parts(op);
                    konst = konst.saturating_add(c);
                    terms.extend(t);
                }
                (konst, terms)
            }
            ExprNode::Mul(ops) => {
                // Extract the leading constant as the coefficient.
                let mut coeff = 1i64;
                let mut rest = Vec::new();
                for op in &ops {
                    match self.node(*op) {
                        ExprNode::Const(v) => coeff = coeff.saturating_mul(*v),
                        _ => rest.push(*op),
                    }
                }
                let atom = if rest.len() == 1 {
                    rest[0]
                } else {
                    // Multi-factor atom: reuse the existing interned node
                    // without the constant. (It must already exist or be
                    // internable; we cannot intern from &self, so fall
                    // back to treating the whole Mul as an atom when a
                    // constant is present and rest has >1 factor.)
                    if coeff == 1 {
                        id
                    } else {
                        return (0, vec![(1, id)]);
                    }
                };
                (0, vec![(coeff, atom)])
            }
            _ => (0, vec![(1, id)]),
        }
    }

    /// Rebuilds an expression from linear parts.
    fn rebuild_linear(&mut self, konst: i64, terms: Vec<(i64, ExprId)>) -> ExprId {
        // Combine equal atoms.
        let mut map: HashMap<ExprId, i64> = HashMap::new();
        for (c, a) in terms {
            *map.entry(a).or_insert(0) += c;
        }
        let mut atoms: Vec<(ExprId, i64)> = map.into_iter().filter(|(_, c)| *c != 0).collect();
        atoms.sort();
        let mut ops: Vec<ExprId> = Vec::with_capacity(atoms.len() + 1);
        if konst != 0 {
            ops.push(self.constant(konst));
        }
        for (atom, coeff) in atoms {
            if coeff == 1 {
                ops.push(atom);
            } else {
                let c = self.constant(coeff);
                ops.push(self.raw_mul(c, atom));
            }
        }
        match ops.len() {
            0 => self.constant(0),
            1 => ops[0],
            _ => self.intern(ExprNode::Add(ops)),
        }
    }

    /// Interns `c * atom` where `atom` is not `Add`/`Const`.
    fn raw_mul(&mut self, c: ExprId, atom: ExprId) -> ExprId {
        let mut ops = vec![c];
        match self.node(atom).clone() {
            ExprNode::Mul(inner) => ops.extend(inner),
            _ => ops.push(atom),
        }
        ops[1..].sort();
        self.intern(ExprNode::Mul(ops))
    }

    // ------------------------------------------------------------------
    // Canonicalizing constructors
    // ------------------------------------------------------------------

    /// Interns `a + b` in linear normal form (constants folded, like
    /// atoms combined, zero terms dropped).
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let (ca, mut ta) = self.linear_parts(a);
        let (cb, tb) = self.linear_parts(b);
        ta.extend(tb);
        self.rebuild_linear(ca.saturating_add(cb), ta)
    }

    /// Interns `a - b`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let (ca, ta) = self.linear_parts(a);
        let (cb, tb) = self.linear_parts(b);
        let mut terms = ta;
        terms.extend(tb.into_iter().map(|(c, at)| (-c, at)));
        self.rebuild_linear(ca.saturating_sub(cb), terms)
    }

    /// Interns `a * b`. Constant factors distribute over sums; products
    /// of non-constant sums remain opaque atoms.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if let Some(v) = self.as_const(a) {
            return self.scale(v, b);
        }
        if let Some(v) = self.as_const(b) {
            return self.scale(v, a);
        }
        // Non-constant product: flatten Mul children, fold constants.
        let mut konst = 1i64;
        let mut factors = Vec::new();
        for x in [a, b] {
            match self.node(x).clone() {
                ExprNode::Const(v) => konst = konst.saturating_mul(v),
                ExprNode::Mul(ops) => {
                    for op in ops {
                        match self.node(op) {
                            ExprNode::Const(v) => konst = konst.saturating_mul(*v),
                            _ => factors.push(op),
                        }
                    }
                }
                _ => factors.push(x),
            }
        }
        if konst == 0 {
            return self.constant(0);
        }
        factors.sort();
        if factors.is_empty() {
            return self.constant(konst);
        }
        let mut ops = Vec::with_capacity(factors.len() + 1);
        if konst != 1 {
            ops.push(self.constant(konst));
        }
        ops.extend(factors);
        if ops.len() == 1 {
            return ops[0];
        }
        self.intern(ExprNode::Mul(ops))
    }

    /// Interns `c · x`, distributing over sums.
    pub fn scale(&mut self, c: i64, x: ExprId) -> ExprId {
        match c {
            0 => return self.constant(0),
            1 => return x,
            _ => {}
        }
        let (k, terms) = self.linear_parts(x);
        let scaled: Vec<(i64, ExprId)> = terms
            .into_iter()
            .map(|(coeff, atom)| (coeff.saturating_mul(c), atom))
            .collect();
        self.rebuild_linear(k.saturating_mul(c), scaled)
    }

    /// Interns `max(a, b)`, absorbing provably dominated operands
    /// (`max(x, x) = x`, `max(n+1, n) = n+1`).
    pub fn max(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if self.provably_ge(a, b) {
            return a;
        }
        if self.provably_ge(b, a) {
            return b;
        }
        let mut ops = Vec::new();
        for x in [a, b] {
            match self.node(x).clone() {
                ExprNode::Max(inner) => ops.extend(inner),
                _ => ops.push(x),
            }
        }
        ops.sort();
        ops.dedup();
        // Drop operands dominated by another operand.
        let snapshot = ops.clone();
        ops.retain(|x| {
            !snapshot
                .iter()
                .any(|y| y != x && y < x && self.ge_quick(*y, *x))
        });
        if ops.len() == 1 {
            return ops[0];
        }
        self.intern(ExprNode::Max(ops))
    }

    // ------------------------------------------------------------------
    // Ordering queries
    // ------------------------------------------------------------------

    /// Whether `id` is provably ≥ 0 for every admissible assignment.
    pub fn provably_nonneg(&self, id: ExprId) -> bool {
        self.nonneg_depth(id, 8)
    }

    fn nonneg_depth(&self, id: ExprId, depth: u32) -> bool {
        if depth == 0 {
            return false;
        }
        match self.node(id) {
            ExprNode::Const(v) => *v >= 0,
            ExprNode::Sym(s) => self.sym_nonneg[s.0 as usize],
            ExprNode::Add(ops) | ExprNode::Mul(ops) => {
                ops.iter().all(|o| self.nonneg_depth(*o, depth - 1))
            }
            ExprNode::Max(ops) => ops.iter().any(|o| self.nonneg_depth(*o, depth - 1)),
        }
    }

    /// Whether `a ≥ b` holds for every admissible assignment — a sound,
    /// incomplete check.
    ///
    /// ```
    /// use matc_typeinf::exprs::ExprCtx;
    ///
    /// let mut cx = ExprCtx::new();
    /// let n = cx.fresh_sym("n", true);
    /// let k = cx.fresh_sym("k", true);
    /// let one = cx.constant(1);
    /// let n1 = cx.add(n, one);
    /// let mx = cx.max(n, k);
    /// assert!(cx.provably_ge(n1, n));
    /// assert!(cx.provably_ge(mx, n));
    /// assert!(!cx.provably_ge(n, k));
    /// ```
    pub fn provably_ge(&mut self, a: ExprId, b: ExprId) -> bool {
        self.ge_depth(a, b, 6)
    }

    /// Immutable, shallow domination check used inside `max`.
    fn ge_quick(&self, a: ExprId, b: ExprId) -> bool {
        if a == b {
            return true;
        }
        match (self.node(a), self.node(b)) {
            (ExprNode::Const(x), ExprNode::Const(y)) => x >= y,
            _ => false,
        }
    }

    fn ge_depth(&mut self, a: ExprId, b: ExprId, depth: u32) -> bool {
        if a == b {
            return true;
        }
        if depth == 0 {
            return false;
        }
        // Max decomposition rules.
        if let ExprNode::Max(ops) = self.node(a).clone() {
            if ops.iter().any(|o| self.ge_depth(*o, b, depth - 1)) {
                return true;
            }
        }
        if let ExprNode::Max(ops) = self.node(b).clone() {
            if ops.iter().all(|o| self.ge_depth(a, *o, depth - 1)) {
                return true;
            }
        }
        // Difference rule: a - b provably nonnegative.
        let diff = self.sub(a, b);
        if self.provably_nonneg(diff) {
            return true;
        }
        // Monotone product rules (all factors must be provably
        // nonnegative for products to be monotone).
        if let ExprNode::Mul(aops) = self.node(a).clone() {
            if aops.iter().all(|o| self.nonneg_depth(*o, 2)) {
                match self.node(b).clone() {
                    // Π aᵢ ≥ Π bⱼ by a pairwise matching aᵢ ≥ bⱼ (equal
                    // arity; greedy matching suffices at these sizes).
                    ExprNode::Mul(bops)
                        if bops.len() == aops.len()
                            && bops.iter().all(|o| self.nonneg_depth(*o, 2)) =>
                    {
                        let mut used = vec![false; aops.len()];
                        let mut all = true;
                        for bo in &bops {
                            let found = aops
                                .iter()
                                .enumerate()
                                .position(|(i, ao)| !used[i] && self.ge_depth(*ao, *bo, depth - 1));
                            match found {
                                Some(i) => used[i] = true,
                                None => {
                                    all = false;
                                    break;
                                }
                            }
                        }
                        if all {
                            return true;
                        }
                    }
                    // Π aᵢ ≥ b when some aᵢ ≥ b and every other factor ≥ 1.
                    _ if self.provably_nonneg(b) => {
                        let one = self.constant(1);
                        for (i, ao) in aops.iter().enumerate() {
                            if self.ge_depth(*ao, b, depth - 1)
                                && aops
                                    .iter()
                                    .enumerate()
                                    .all(|(j, o)| j == i || self.ge_depth(*o, one, depth - 1))
                            {
                                return true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Evaluation & display (tests, diagnostics)
    // ------------------------------------------------------------------

    /// Evaluates `id` under an assignment of symbol values (indexed by
    /// symbol number; missing symbols evaluate to 0).
    pub fn eval(&self, id: ExprId, env: &[i64]) -> i64 {
        match self.node(id) {
            ExprNode::Const(v) => *v,
            ExprNode::Sym(s) => env.get(s.0 as usize).copied().unwrap_or(0),
            ExprNode::Add(ops) => ops.iter().map(|o| self.eval(*o, env)).sum(),
            ExprNode::Mul(ops) => ops.iter().map(|o| self.eval(*o, env)).product(),
            ExprNode::Max(ops) => ops
                .iter()
                .map(|o| self.eval(*o, env))
                .max()
                .unwrap_or(i64::MIN),
        }
    }

    /// Renders `id` for diagnostics.
    pub fn render(&self, id: ExprId) -> String {
        match self.node(id) {
            ExprNode::Const(v) => v.to_string(),
            ExprNode::Sym(s) => {
                let name = &self.sym_names[s.0 as usize];
                if name.is_empty() {
                    format!("$s{}", s.0)
                } else {
                    name.clone()
                }
            }
            ExprNode::Add(ops) => {
                let parts: Vec<String> = ops.iter().map(|o| self.render(*o)).collect();
                format!("({})", parts.join(" + "))
            }
            ExprNode::Mul(ops) => {
                let parts: Vec<String> = ops.iter().map(|o| self.render(*o)).collect();
                format!("({})", parts.join("*"))
            }
            ExprNode::Max(ops) => {
                let parts: Vec<String> = ops.iter().map(|o| self.render(*o)).collect();
                format!("max({})", parts.join(", "))
            }
        }
    }

    /// Renders `id` canonically and **arena-independently**: symbols
    /// are numbered by first occurrence in the walk (`renumber` is
    /// shared by the caller across every expression of one function)
    /// and annotated with their debug name and sign flag instead of
    /// their global arena index. Two fact sets that render identically
    /// are isomorphic under a symbol renaming preserving names and
    /// nonnegativity — the equivalence the incremental store's
    /// per-function fragment keys are built on (equal rendering ⇒
    /// equal planning/audit behavior).
    pub fn render_canonical(
        &self,
        id: ExprId,
        renumber: &mut HashMap<SymId, usize>,
        out: &mut String,
    ) {
        use std::fmt::Write as _;
        match self.node(id) {
            ExprNode::Const(v) => {
                let _ = write!(out, "{v}");
            }
            ExprNode::Sym(s) => {
                let next = renumber.len();
                let n = *renumber.entry(*s).or_insert(next);
                let flag = if self.sym_nonneg[s.0 as usize] {
                    '+'
                } else {
                    '?'
                };
                let _ = write!(out, "s{n}{flag}{}", self.sym_names[s.0 as usize]);
            }
            ExprNode::Add(ops) | ExprNode::Mul(ops) | ExprNode::Max(ops) => {
                out.push_str(match self.node(id) {
                    ExprNode::Add(_) => "add(",
                    ExprNode::Mul(_) => "mul(",
                    _ => "max(",
                });
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.render_canonical(*op, renumber, out);
                }
                out.push(')');
            }
        }
    }

    /// The number of interned nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fmt::Display for ExprCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExprCtx[{} nodes, {} syms]",
            self.nodes.len(),
            self.sym_nonneg.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_gives_handle_equality() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let one = cx.constant(1);
        let a = cx.add(n, one);
        let b = cx.add(one, n);
        assert_eq!(a, b, "commutative canonical form");
        let two = cx.constant(2);
        let c = cx.add(a, one);
        let d = cx.add(n, two);
        assert_eq!(c, d, "constants folded: (n+1)+1 == n+2");
    }

    #[test]
    fn like_terms_combine_and_cancel() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let two_n = cx.add(n, n);
        let two = cx.constant(2);
        let expect = cx.mul(two, n);
        assert_eq!(two_n, expect, "n + n = 2n");
        let zero = cx.sub(n, n);
        assert_eq!(cx.as_const(zero), Some(0), "n - n = 0");
    }

    #[test]
    fn mul_canonicalization() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let m = cx.fresh_sym("m", true);
        let a = cx.mul(n, m);
        let b = cx.mul(m, n);
        assert_eq!(a, b);
        let zero = cx.constant(0);
        assert_eq!(cx.mul(n, zero), zero);
        let one = cx.constant(1);
        assert_eq!(cx.mul(one, n), n);
        // (2*n)*3 = 6*n
        let two = cx.constant(2);
        let three = cx.constant(3);
        let t = cx.mul(two, n);
        let six_n = cx.mul(t, three);
        let six = cx.constant(6);
        let expect = cx.mul(six, n);
        assert_eq!(six_n, expect);
    }

    #[test]
    fn constants_distribute_over_sums() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let one = cx.constant(1);
        let two = cx.constant(2);
        let n1 = cx.add(n, one);
        let d = cx.mul(two, n1);
        // 2*(n+1) = 2n + 2
        let two_n = cx.mul(two, n);
        let expect = cx.add(two_n, two);
        assert_eq!(d, expect);
    }

    #[test]
    fn max_absorbs() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        assert_eq!(cx.max(n, n), n);
        let one = cx.constant(1);
        let n1 = cx.add(n, one);
        assert_eq!(cx.max(n1, n), n1, "n+1 dominates n");
        let k = cx.fresh_sym("k", true);
        let m1 = cx.max(n, k);
        let m2 = cx.max(k, n);
        assert_eq!(m1, m2);
        // max(max(n,k), n) = max(n,k)
        assert_eq!(cx.max(m1, n), m1);
    }

    #[test]
    fn provable_orderings() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let k = cx.fresh_sym("k", true);
        let one = cx.constant(1);
        let two = cx.constant(2);

        let n1 = cx.add(n, one);
        let n2 = cx.add(n, two);
        assert!(cx.provably_ge(n2, n1), "n+2 >= n+1");
        assert!(!cx.provably_ge(n1, n2));

        let nk = cx.add(n, k);
        assert!(cx.provably_ge(nk, n), "n+k >= n with k nonneg");

        let two_n = cx.mul(two, n);
        assert!(cx.provably_ge(two_n, n), "2n >= n");

        let nm = cx.mul(n, k);
        assert!(!cx.provably_ge(nm, n), "n*k >= n needs k >= 1");

        let mx = cx.max(n, k);
        assert!(cx.provably_ge(mx, n));
        assert!(cx.provably_ge(mx, k));

        let zero = cx.constant(0);
        assert!(cx.provably_ge(n, zero), "extents are nonnegative");

        // Unknown-sign symbol.
        let v = cx.fresh_sym("v", false);
        assert!(!cx.provably_nonneg(v));
        let m3 = cx.constant(-3);
        let vm3 = cx.add(v, m3);
        assert!(cx.provably_ge(v, vm3), "v >= v - 3 by cancellation");
        assert!(!cx.provably_ge(vm3, v));
        assert!(!cx.provably_ge(v, zero));
    }

    #[test]
    fn soundness_against_evaluation() {
        // Randomized check: whenever provably_ge says yes, evaluation
        // agrees across many nonnegative assignments.
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let m = cx.fresh_sym("m", true);
        let c2 = cx.constant(2);
        let c5 = cx.constant(5);
        let mut pool = vec![n, m, c2, c5];
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let a = pool[(rnd() % pool.len() as u64) as usize];
            let b = pool[(rnd() % pool.len() as u64) as usize];
            let e = match rnd() % 3 {
                0 => cx.add(a, b),
                1 => cx.mul(a, b),
                _ => cx.max(a, b),
            };
            pool.push(e);
        }
        for _ in 0..100 {
            let a = pool[(rnd() % pool.len() as u64) as usize];
            let b = pool[(rnd() % pool.len() as u64) as usize];
            if cx.provably_ge(a, b) {
                for env in [[0i64, 0], [1, 7], [13, 2], [100, 100], [5, 0]] {
                    assert!(
                        cx.eval(a, &env) >= cx.eval(b, &env),
                        "claimed {} >= {} but env {:?} disagrees",
                        cx.render(a),
                        cx.render(b),
                        env
                    );
                }
            }
        }
    }

    #[test]
    fn eval_and_render() {
        let mut cx = ExprCtx::new();
        let n = cx.fresh_sym("n", true);
        let one = cx.constant(1);
        let e = cx.add(n, one);
        assert_eq!(cx.eval(e, &[41]), 42);
        assert!(cx.render(e).contains('n'));
    }
}
