//! Scalar value ranges.
//!
//! A light interval analysis that feeds two consumers: intrinsic-type
//! refinement (a value in `{0,1}` is BOOLEAN, in `[0,255]` BYTE, …, as in
//! the paper's example where `eye`'s output and the constant 1 are both
//! inferred BOOLEAN) and subscript reasoning (`subsref(a, e)` can be
//! computed in place when `e` is a scalar — and bounds checks vanish when
//! the range proves legality).

use std::fmt;

/// A closed interval `[lo, hi]` with an integrality flag.
///
/// `Range::top()` is `[-∞, +∞]`, non-integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound (may be `-∞`).
    pub lo: f64,
    /// Upper bound (may be `+∞`).
    pub hi: f64,
    /// Whether every value in the range is an integer.
    pub integral: bool,
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/neg mirror interval arithmetic
impl Range {
    /// The unconstrained range.
    pub fn top() -> Range {
        Range {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            integral: false,
        }
    }

    /// An exact value.
    pub fn exact(v: f64) -> Range {
        Range {
            lo: v,
            hi: v,
            integral: v.fract() == 0.0 && v.is_finite(),
        }
    }

    /// An interval with explicit integrality.
    pub fn new(lo: f64, hi: f64, integral: bool) -> Range {
        Range { lo, hi, integral }
    }

    /// The exact value, if the range is a finite point.
    pub fn as_exact(&self) -> Option<f64> {
        (self.lo == self.hi && self.lo.is_finite()).then_some(self.lo)
    }

    /// Interval-union join (for φ-nodes / joins).
    pub fn join(self, other: Range) -> Range {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            integral: self.integral && other.integral,
        }
    }

    /// Widens against a previous iterate: bounds that grew go to ±∞.
    /// Guarantees termination of the fixpoint loop.
    pub fn widen(self, prev: Range) -> Range {
        Range {
            lo: if self.lo < prev.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            hi: if self.hi > prev.hi {
                f64::INFINITY
            } else {
                self.hi
            },
            integral: self.integral && prev.integral,
        }
    }

    /// Interval addition.
    pub fn add(self, o: Range) -> Range {
        Range {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
            integral: self.integral && o.integral,
        }
    }

    /// Interval subtraction.
    pub fn sub(self, o: Range) -> Range {
        Range {
            lo: self.lo - o.hi,
            hi: self.hi - o.lo,
            integral: self.integral && o.integral,
        }
    }

    /// Interval multiplication.
    pub fn mul(self, o: Range) -> Range {
        let cands = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let lo = cands.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cands.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Range {
            lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
            hi: if hi.is_nan() { f64::INFINITY } else { hi },
            integral: self.integral && o.integral,
        }
    }

    /// Interval negation.
    pub fn neg(self) -> Range {
        Range {
            lo: -self.hi,
            hi: -self.lo,
            integral: self.integral,
        }
    }

    /// The range of a comparison/logical result.
    pub fn boolean() -> Range {
        Range {
            lo: 0.0,
            hi: 1.0,
            integral: true,
        }
    }

    /// Whether every value is ≥ 0.
    pub fn nonneg(&self) -> bool {
        self.lo >= 0.0
    }

    /// Whether the range proves the value is never negative *and* never
    /// zero (useful for proving `sqrt`/`log` stay real).
    pub fn positive(&self) -> bool {
        self.lo > 0.0
    }
}

impl Default for Range {
    fn default() -> Self {
        Range::top()
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]{}",
            self.lo,
            self.hi,
            if self.integral { "ℤ" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_detects_integrality() {
        assert!(Range::exact(3.0).integral);
        assert!(!Range::exact(3.5).integral);
        assert_eq!(Range::exact(3.0).as_exact(), Some(3.0));
        assert_eq!(Range::top().as_exact(), None);
    }

    #[test]
    fn join_unions() {
        let a = Range::exact(1.0);
        let b = Range::exact(5.0);
        let j = a.join(b);
        assert_eq!((j.lo, j.hi), (1.0, 5.0));
        assert!(j.integral);
        let k = j.join(Range::exact(2.5));
        assert!(!k.integral);
    }

    #[test]
    fn widen_blows_growing_bounds() {
        let prev = Range::new(0.0, 10.0, true);
        let grown = Range::new(0.0, 11.0, true);
        let w = grown.widen(prev);
        assert_eq!(w.hi, f64::INFINITY);
        assert_eq!(w.lo, 0.0, "stable bound survives widening");
    }

    #[test]
    fn arithmetic() {
        let a = Range::new(1.0, 2.0, true);
        let b = Range::new(-3.0, 4.0, true);
        let s = a.add(b);
        assert_eq!((s.lo, s.hi), (-2.0, 6.0));
        let m = a.mul(b);
        assert_eq!((m.lo, m.hi), (-6.0, 8.0));
        let n = b.neg();
        assert_eq!((n.lo, n.hi), (-4.0, 3.0));
        let d = a.sub(b);
        assert_eq!((d.lo, d.hi), (-3.0, 5.0));
    }

    #[test]
    fn predicates() {
        assert!(Range::boolean().nonneg());
        assert!(!Range::boolean().positive());
        assert!(Range::new(0.5, 9.0, false).positive());
        assert!(!Range::top().nonneg());
    }
}
