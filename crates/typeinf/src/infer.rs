//! The type-inference engine (the MAGICA substitute, §3.1).
//!
//! For every SSA variable of every function the engine infers:
//!
//! * an **intrinsic type** `t(v)` on the chain lattice (value-range
//!   refined, so `eye`'s output and the literal `1` are both BOOLEAN, as
//!   in the paper's Example 2);
//! * a **shape tuple** `s(v)` with symbolic extents, interned so that
//!   symbolically equivalent shapes are *identical handles* — the reuse
//!   property Phase 2's partial order exploits;
//! * a **value range** `ϱ(v)` and, for integral scalars, a **symbolic
//!   value expression** connecting scalar dataflow to array extents
//!   (`m = size(a,1); b = zeros(m,1)` gives `b` extent `s(a)₁`);
//! * a symbolic **upper bound** on subscript values (`maxval`), which
//!   lets `subsasgn` growth produce `max(extent, bound)` extents.
//!
//! Inference is interprocedural: functions are analyzed on demand at
//! call sites with the join of all observed argument facts, iterating to
//! a global fixpoint (recursion falls back to unknown facts, i.e.
//! COMPLEX scalars of unknown shape, exactly MAGICA's "assume nothing"
//! default from Example 1).

use crate::exprs::{ExprCtx, ExprId};
use crate::intrinsic::Intrinsic;
use crate::range::Range;
use crate::shape::Shape;
use matc_frontend::ast::{BinOp, UnOp};
use matc_ir::ids::{FuncId, VarId};
use matc_ir::instr::{Const, InstrKind, Op, Operand};
use matc_ir::{Budget, BudgetError, Builtin, FuncIr, IrProgram};
use std::collections::HashMap;

/// Everything inferred about one SSA variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarFacts {
    /// Intrinsic (element) type `t(v)`.
    pub intrinsic: Intrinsic,
    /// Shape tuple `s(v)`.
    pub shape: Shape,
    /// Range of the variable's (elements') values.
    pub range: Range,
    /// Symbolic value, when the variable is an integral scalar.
    pub value: Option<ExprId>,
    /// Symbolic upper bound over all element values (used for subscript
    /// vectors; scalars fall back to `value`).
    pub maxval: Option<ExprId>,
}

impl VarFacts {
    /// The "assume nothing" element: COMPLEX, unknown shape, ⊤ range.
    pub fn unknown(cx: &mut ExprCtx, hint: &str) -> VarFacts {
        VarFacts {
            intrinsic: Intrinsic::Complex,
            shape: Shape::fresh(cx, hint),
            range: Range::top(),
            value: None,
            maxval: None,
        }
    }

    /// Facts for an exact real scalar.
    pub fn exact_scalar(cx: &mut ExprCtx, v: f64) -> VarFacts {
        let range = Range::exact(v);
        let value = (range.integral && v.abs() < 9e15).then(|| cx.constant(v as i64));
        VarFacts {
            intrinsic: Intrinsic::for_range(v, v, range.integral),
            shape: Shape::scalar(cx),
            range,
            value,
            maxval: value,
        }
    }

    /// The symbolic upper bound on values: explicit `maxval`, else the
    /// scalar `value`.
    pub fn upper_bound(&self) -> Option<ExprId> {
        self.maxval.or(self.value)
    }

    /// Pointwise lattice join.
    pub fn join(&self, other: &VarFacts, cx: &mut ExprCtx) -> VarFacts {
        VarFacts {
            intrinsic: self.intrinsic.join(other.intrinsic),
            shape: self.shape.join(&other.shape, cx),
            range: self.range.join(other.range),
            value: match (self.value, other.value) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            maxval: match (self.upper_bound(), other.upper_bound()) {
                (Some(a), Some(b)) => Some(cx.max(a, b)),
                _ => None,
            },
        }
    }
}

/// Inference results for one function (indexed by [`VarId`]).
#[derive(Debug, Clone, Default)]
pub struct FuncTypes {
    facts: Vec<Option<VarFacts>>,
}

impl FuncTypes {
    /// Facts for `v`, if inferred (undefined/unreachable variables have
    /// none).
    pub fn get(&self, v: VarId) -> Option<&VarFacts> {
        self.facts.get(v.index()).and_then(|f| f.as_ref())
    }

    /// All inferred `(variable, facts)` pairs, in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarFacts)> {
        self.facts
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (VarId::new(i), f)))
    }

    fn set(&mut self, v: VarId, f: VarFacts) {
        if v.index() >= self.facts.len() {
            self.facts.resize(v.index() + 1, None);
        }
        self.facts[v.index()] = Some(f);
    }
}

/// Inference results for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramTypes {
    /// The shared symbolic-expression arena.
    pub ctx: ExprCtx,
    /// Per-function facts, indexed by [`FuncId`].
    pub funcs: Vec<FuncTypes>,
}

impl ProgramTypes {
    /// Facts for variable `v` of function `f`.
    pub fn facts(&self, f: FuncId, v: VarId) -> Option<&VarFacts> {
        self.funcs.get(f.index()).and_then(|ft| ft.get(v))
    }

    /// Program-wide inference counters — the engine's contribution to
    /// the batch driver's per-unit metrics.
    pub fn summary(&self) -> TypeSummary {
        let mut s = TypeSummary {
            facts: 0,
            scalars: 0,
            explicit_shapes: 0,
        };
        for ft in &self.funcs {
            for (_, f) in ft.iter() {
                s.facts += 1;
                if f.shape.is_scalar(&self.ctx) {
                    s.scalars += 1;
                }
                if f.shape.is_explicit(&self.ctx) {
                    s.explicit_shapes += 1;
                }
            }
        }
        s
    }

    /// Canonical, arena-independent rendering of one function's
    /// inference facts (see [`ExprCtx::render_canonical`]): every
    /// variable's intrinsic, shape, range and symbolic value/bound,
    /// with symbols renumbered by first occurrence *within this
    /// function*. Two functions rendering identically plan, audit and
    /// emit identically — this string is a fragment-key ingredient of
    /// the incremental artifact store.
    pub fn canonical_func_facts(&self, f: FuncId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut renumber = HashMap::new();
        let Some(ft) = self.funcs.get(f.index()) else {
            return out;
        };
        for (v, facts) in ft.iter() {
            let _ = write!(out, "v{}: t={:?} shape=", v.index(), facts.intrinsic);
            match &facts.shape {
                Shape::Tuple(dims) => {
                    out.push('(');
                    for (i, d) in dims.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        self.ctx.render_canonical(*d, &mut renumber, &mut out);
                    }
                    out.push(')');
                }
                Shape::Any(e) => {
                    out.push_str("any[");
                    self.ctx.render_canonical(*e, &mut renumber, &mut out);
                    out.push(']');
                }
            }
            let _ = write!(out, " range={:?}", facts.range);
            out.push_str(" value=");
            match facts.value {
                Some(e) => self.ctx.render_canonical(e, &mut renumber, &mut out),
                None => out.push('-'),
            }
            out.push_str(" maxval=");
            match facts.maxval {
                Some(e) => self.ctx.render_canonical(e, &mut renumber, &mut out),
                None => out.push('-'),
            }
            out.push('\n');
        }
        out
    }
}

/// Aggregate inference counters (see [`ProgramTypes::summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeSummary {
    /// Variables with inference facts.
    pub facts: usize,
    /// Of those, provably `1 × 1`.
    pub scalars: usize,
    /// Of those, with fully explicit (constant-extent) shapes.
    pub explicit_shapes: usize,
}

/// Runs interprocedural inference over an SSA program.
///
/// # Panics
///
/// Panics if a function is not in SSA form.
///
/// # Examples
///
/// ```
/// use matc_frontend::parser::parse_program;
/// use matc_ir::build_ssa;
/// use matc_typeinf::infer::infer_program;
///
/// let ast = parse_program(["function y = f(n)\ny = zeros(3, 3);\n"]).unwrap();
/// let ir = build_ssa(&ast).unwrap();
/// let types = infer_program(&ir);
/// let f = ir.entry.unwrap();
/// let out = ir.entry_func().ssa_outs[0];
/// let facts = types.facts(f, out).unwrap();
/// assert!(facts.shape.is_explicit(&types.ctx));
/// ```
pub fn infer_program(prog: &IrProgram) -> ProgramTypes {
    let budget = Budget::unlimited();
    infer_program_budgeted(prog, &budget).expect("unlimited budget cannot trip")
}

/// [`infer_program`] under a [`Budget`]: the interprocedural fixpoint
/// charges one fuel unit per instruction transfer and observes the
/// phase wall-clock deadline (armed here under the phase name
/// `"type_infer"`).
///
/// # Errors
///
/// Returns the [`BudgetError`] that tripped; any partially inferred
/// facts are discarded, so callers either fall back to a conservative
/// lowering or fail the unit — they never observe half-inferred types.
///
/// # Panics
///
/// Panics if a function is not in SSA form.
pub fn infer_program_budgeted(
    prog: &IrProgram,
    budget: &Budget,
) -> Result<ProgramTypes, BudgetError> {
    budget.enter_phase("type_infer");
    let mut eng = Engine {
        prog,
        budget,
        tripped: None,
        cx: ExprCtx::new(),
        summaries: (0..prog.functions.len())
            .map(|_| Summary::default())
            .collect(),
        in_progress: vec![false; prog.functions.len()],
        round_changed: false,
    };
    if let Some(entry) = prog.entry {
        // The entry takes no observable arguments: unknown facts.
        let nparams = prog.func(entry).params.len();
        let args: Vec<VarFacts> = (0..nparams)
            .map(|i| VarFacts::unknown(&mut eng.cx, &format!("entry_arg{i}")))
            .collect();
        for round in 0..8 {
            eng.round_changed = false;
            eng.call(entry, args.clone());
            if !eng.round_changed || round == 7 || eng.tripped.is_some() {
                break;
            }
        }
    }
    // Also analyze never-called functions (dead code) so every function
    // has facts — with unknown arguments.
    for (i, f) in prog.functions.iter().enumerate() {
        if eng.tripped.is_some() {
            break;
        }
        let fid = FuncId::new(i);
        if eng.summaries[i].types.is_none() {
            let args: Vec<VarFacts> = (0..f.params.len())
                .map(|k| VarFacts::unknown(&mut eng.cx, &format!("{}_arg{k}", f.name)))
                .collect();
            eng.call(fid, args);
        }
    }
    if let Some(err) = eng.tripped {
        return Err(err);
    }
    Ok(ProgramTypes {
        funcs: eng
            .summaries
            .into_iter()
            .map(|s| s.types.unwrap_or_default())
            .collect(),
        ctx: eng.cx,
    })
}

#[derive(Default)]
struct Summary {
    /// Join of argument facts over all observed call sites.
    arg_facts: Option<Vec<VarFacts>>,
    /// Return facts of the last analysis.
    ret_facts: Option<Vec<VarFacts>>,
    /// Body facts of the last analysis.
    types: Option<FuncTypes>,
}

struct Engine<'p> {
    prog: &'p IrProgram,
    budget: &'p Budget,
    /// First budget trip observed; once set, all fixpoint loops drain
    /// without doing further work and the whole inference fails.
    tripped: Option<BudgetError>,
    cx: ExprCtx,
    summaries: Vec<Summary>,
    in_progress: Vec<bool>,
    round_changed: bool,
}

impl Engine<'_> {
    /// Charges work against the budget; records the first trip and
    /// reports `false` so iteration stops.
    fn charge(&mut self, units: u64) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        match self.budget.spend(units) {
            Ok(()) => true,
            Err(e) => {
                self.tripped = Some(e);
                false
            }
        }
    }

    /// Records a call to `fid` with `args` facts; (re)analyzes if the
    /// argument join changed; returns the callee's return facts.
    fn call(&mut self, fid: FuncId, args: Vec<VarFacts>) -> Vec<VarFacts> {
        let func = self.prog.func(fid);
        let nouts = func.ssa_outs.len();
        if self.tripped.is_some() {
            // Budget already blown: answer with unknowns and unwind the
            // in-flight fixpoint without further analysis work.
            return (0..nouts)
                .map(|_| VarFacts::unknown(&mut self.cx, "budget_tripped"))
                .collect();
        }
        // Pad missing arguments with unknowns.
        let mut args = args;
        while args.len() < func.params.len() {
            args.push(VarFacts::unknown(&mut self.cx, "missing_arg"));
        }
        // Join into the summary.
        let changed = {
            let prev = self.summaries[fid.index()].arg_facts.take();
            let joined = match &prev {
                None => args,
                Some(prev) => prev
                    .iter()
                    .zip(&args)
                    .map(|(a, b)| a.join(b, &mut self.cx))
                    .collect(),
            };
            let changed = prev.as_ref() != Some(&joined);
            self.summaries[fid.index()].arg_facts = Some(joined);
            changed || self.summaries[fid.index()].types.is_none()
        };

        if self.in_progress[fid.index()] {
            // Recursive cycle: answer with unknowns; the outer fixpoint
            // rounds stabilize the summary.
            return (0..nouts)
                .map(|_| VarFacts::unknown(&mut self.cx, "recursive_ret"))
                .collect();
        }
        if changed {
            self.round_changed = true;
            self.analyze(fid);
        }
        self.summaries[fid.index()]
            .ret_facts
            .clone()
            .unwrap_or_else(|| {
                (0..nouts)
                    .map(|_| VarFacts::unknown(&mut self.cx, "no_ret"))
                    .collect()
            })
    }

    /// Intraprocedural fixpoint over one function body.
    fn analyze(&mut self, fid: FuncId) {
        let func = self.prog.func(fid);
        assert!(func.in_ssa, "type inference requires SSA form");
        self.in_progress[fid.index()] = true;

        let mut body = BodyInfer {
            func,
            fid,
            types: FuncTypes::default(),
            site_syms: HashMap::new(),
            widen_syms: HashMap::new(),
            change_count: HashMap::new(),
        };
        // Seed parameters from the summary.
        let arg_facts = self.summaries[fid.index()]
            .arg_facts
            .clone()
            .unwrap_or_default();
        for (p, f) in func.params.iter().zip(arg_facts) {
            body.types.set(*p, f);
        }
        for p in func.params.iter().skip(
            self.summaries[fid.index()]
                .arg_facts
                .as_ref()
                .map_or(0, |a| a.len()),
        ) {
            let f = VarFacts::unknown(&mut self.cx, "param");
            body.types.set(*p, f);
        }

        let rpo = func.reverse_postorder();
        'fixpoint: for _iter in 0..10 {
            let mut changed = false;
            for &b in &rpo {
                for instr in &func.block(b).instrs {
                    if !self.charge(1) {
                        break 'fixpoint;
                    }
                    changed |= body.transfer(self, instr);
                }
            }
            if !changed {
                break;
            }
        }

        let ret_facts: Vec<VarFacts> = func
            .ssa_outs
            .iter()
            .map(|o| {
                body.types
                    .get(*o)
                    .cloned()
                    .unwrap_or_else(|| VarFacts::unknown(&mut self.cx, "out"))
            })
            .collect();
        let types = std::mem::take(&mut body.types);
        self.summaries[fid.index()].ret_facts = Some(ret_facts);
        self.summaries[fid.index()].types = Some(types);
        self.in_progress[fid.index()] = false;
    }
}

struct BodyInfer<'f> {
    func: &'f FuncIr,
    #[allow(dead_code)]
    fid: FuncId,
    types: FuncTypes,
    /// Stable fresh symbols per (variable, slot) — extents of `rand(n)`
    /// etc. must not change across fixpoint iterations.
    site_syms: HashMap<(VarId, usize), ExprId>,
    /// Stable widening symbols per variable.
    widen_syms: HashMap<VarId, ExprId>,
    change_count: HashMap<VarId, u32>,
}

impl BodyInfer<'_> {
    fn fact(&mut self, eng: &mut Engine<'_>, v: VarId) -> VarFacts {
        match self.types.get(v) {
            Some(f) => f.clone(),
            None => VarFacts::unknown(&mut eng.cx, "pending"),
        }
    }

    fn operand_fact(&mut self, eng: &mut Engine<'_>, o: &Operand) -> VarFacts {
        match o.as_var() {
            Some(v) => self.fact(eng, v),
            None => VarFacts::unknown(&mut eng.cx, "colon"),
        }
    }

    fn site_sym(&mut self, eng: &mut Engine<'_>, v: VarId, slot: usize) -> ExprId {
        if let Some(e) = self.site_syms.get(&(v, slot)) {
            return *e;
        }
        let name = format!("{}#{slot}", self.func.vars.display_name(v));
        let e = eng.cx.fresh_sym(name, true);
        self.site_syms.insert((v, slot), e);
        e
    }

    /// Updates `dst`'s facts, applying widening when oscillating;
    /// returns whether anything changed.
    fn update(&mut self, eng: &mut Engine<'_>, dst: VarId, new: VarFacts) -> bool {
        let old = self.types.get(dst).cloned();
        if old.as_ref() == Some(&new) {
            return false;
        }
        let count = self.change_count.entry(dst).or_insert(0);
        *count += 1;
        let mut val = new;
        if *count > 4 {
            // Widen only the oscillating components so stable facts (a
            // loop counter's scalar shape, say) survive.
            if let Some(prev) = &old {
                val.range = val.range.join(prev.range).widen(prev.range);
                val.intrinsic = val.intrinsic.join(prev.intrinsic);
                if val.shape != prev.shape {
                    let wsym = *self.widen_syms.entry(dst).or_insert_with(|| {
                        eng.cx
                            .fresh_sym(format!("widen_{}", self.func.vars.display_name(dst)), true)
                    });
                    val.shape = Shape::Any(wsym);
                }
                if val.value != prev.value {
                    val.value = None;
                }
                if val.maxval != prev.maxval {
                    val.maxval = None;
                }
            }
            if old.as_ref() == Some(&val) {
                return false;
            }
        }
        self.types.set(dst, val);
        true
    }

    fn transfer(&mut self, eng: &mut Engine<'_>, instr: &matc_ir::Instr) -> bool {
        match &instr.kind {
            InstrKind::Const { dst, value } => {
                let f = self.const_facts(eng, value);
                self.update(eng, *dst, f)
            }
            InstrKind::Copy { dst, src } => {
                let f = self.fact(eng, *src);
                self.update(eng, *dst, f)
            }
            InstrKind::Phi { dst, args } => {
                let mut acc: Option<VarFacts> = None;
                for (_, v) in args {
                    if let Some(f) = self.types.get(*v).cloned() {
                        acc = Some(match acc {
                            None => f,
                            Some(a) => a.join(&f, &mut eng.cx),
                        });
                    }
                }
                match acc {
                    Some(f) => self.update(eng, *dst, f),
                    None => false, // all inputs pending; retry next pass
                }
            }
            InstrKind::Compute { dst, op, args } => {
                let f = self.compute_facts(eng, *dst, op, args);
                self.update(eng, *dst, f)
            }
            InstrKind::CallMulti { dsts, func, args } => {
                let facts: Vec<VarFacts> = args.iter().map(|a| self.operand_fact(eng, a)).collect();
                let rets = self.call_multi_facts(eng, dsts, func, &facts);
                let mut changed = false;
                for (d, f) in dsts.iter().zip(rets) {
                    changed |= self.update(eng, *d, f);
                }
                changed
            }
            InstrKind::Display { .. } | InstrKind::Effect { .. } => false,
        }
    }

    fn const_facts(&mut self, eng: &mut Engine<'_>, c: &Const) -> VarFacts {
        let cx = &mut eng.cx;
        match c {
            Const::Num(v) => VarFacts::exact_scalar(cx, *v),
            Const::Bool(b) => {
                let mut f = VarFacts::exact_scalar(cx, if *b { 1.0 } else { 0.0 });
                f.intrinsic = Intrinsic::Bool;
                f
            }
            Const::Imag(v) => VarFacts {
                intrinsic: Intrinsic::Complex,
                shape: Shape::scalar(cx),
                range: Range::new(0.0, 0.0, false).join(Range::exact(*v)),
                value: None,
                maxval: None,
            },
            Const::Str(s) => {
                let one = cx.constant(1);
                let len = cx.constant(s.len() as i64);
                VarFacts {
                    intrinsic: Intrinsic::Byte,
                    shape: Shape::Tuple(vec![one, len]),
                    range: Range::new(0.0, 255.0, true),
                    value: None,
                    maxval: None,
                }
            }
            Const::Empty => VarFacts {
                intrinsic: Intrinsic::Bool,
                shape: Shape::empty(cx),
                range: Range::new(0.0, 0.0, true),
                value: None,
                maxval: None,
            },
        }
    }

    /// Shape of an elementwise application with MATLAB scalar expansion.
    fn elementwise_shape(&mut self, eng: &mut Engine<'_>, a: &VarFacts, b: &VarFacts) -> Shape {
        let cx = &mut eng.cx;
        if a.shape.is_scalar(cx) {
            b.shape.clone()
        } else if b.shape.is_scalar(cx) {
            a.shape.clone()
        } else {
            a.shape.unify_equal(&b.shape, cx)
        }
    }

    fn compute_facts(
        &mut self,
        eng: &mut Engine<'_>,
        dst: VarId,
        op: &Op,
        args: &[Operand],
    ) -> VarFacts {
        match op {
            Op::Bin(b) => self.bin_facts(eng, *b, args),
            Op::Un(u) => self.un_facts(eng, *u, args),
            Op::Subsref => self.subsref_facts(eng, dst, args),
            Op::Subsasgn => self.subsasgn_facts(eng, dst, args),
            Op::Range2 | Op::Range3 => self.range_facts(eng, dst, op, args),
            Op::MatrixBuild { rows } => self.matrix_facts(eng, dst, rows, args),
            Op::Builtin(bi) => self.builtin_facts(eng, dst, *bi, args),
            Op::Call(name) => {
                let facts: Vec<VarFacts> = args.iter().map(|a| self.operand_fact(eng, a)).collect();
                match self.user_call(eng, name, facts) {
                    Some(mut rets) if !rets.is_empty() => rets.swap_remove(0),
                    _ => VarFacts::unknown(&mut eng.cx, "call"),
                }
            }
        }
    }

    fn user_call(
        &mut self,
        eng: &mut Engine<'_>,
        name: &str,
        args: Vec<VarFacts>,
    ) -> Option<Vec<VarFacts>> {
        let fid = *eng.prog.by_name.get(name)?;
        Some(eng.call(fid, args))
    }

    fn bin_facts(&mut self, eng: &mut Engine<'_>, op: BinOp, args: &[Operand]) -> VarFacts {
        let a = self.operand_fact(eng, &args[0]);
        let b = self.operand_fact(eng, &args[1]);
        let complex = a.intrinsic.is_complex() || b.intrinsic.is_complex();
        match op {
            BinOp::Add | BinOp::Sub => {
                let shape = self.elementwise_shape(eng, &a, &b);
                let cx = &mut eng.cx;
                let range = if op == BinOp::Add {
                    a.range.add(b.range)
                } else {
                    a.range.sub(b.range)
                };
                let value = match (a.value, b.value) {
                    (Some(x), Some(y)) if shape.is_scalar(cx) => Some(if op == BinOp::Add {
                        cx.add(x, y)
                    } else {
                        cx.sub(x, y)
                    }),
                    _ => None,
                };
                VarFacts {
                    intrinsic: if complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape,
                    range,
                    value,
                    maxval: value,
                }
            }
            BinOp::ElemMul => {
                let shape = self.elementwise_shape(eng, &a, &b);
                self.mul_like(eng, a, b, shape, complex)
            }
            BinOp::MatMul => {
                let cx = &mut eng.cx;
                let shape = if a.shape.is_scalar(cx) {
                    b.shape.clone()
                } else if b.shape.is_scalar(cx) {
                    a.shape.clone()
                } else {
                    match (&a.shape, &b.shape) {
                        (Shape::Tuple(x), Shape::Tuple(y)) if x.len() == 2 && y.len() == 2 => {
                            Shape::Tuple(vec![x[0], y[1]])
                        }
                        _ => Shape::fresh(cx, "matmul"),
                    }
                };
                let scalar_case = a.shape.is_scalar(&eng.cx) || b.shape.is_scalar(&eng.cx);
                if scalar_case {
                    self.mul_like(eng, a, b, shape, complex)
                } else {
                    VarFacts {
                        intrinsic: if complex {
                            Intrinsic::Complex
                        } else {
                            Intrinsic::Real
                        },
                        shape,
                        range: Range::new(
                            f64::NEG_INFINITY,
                            f64::INFINITY,
                            a.range.integral && b.range.integral,
                        ),
                        value: None,
                        maxval: None,
                    }
                }
            }
            BinOp::ElemDiv | BinOp::ElemLeftDiv => {
                let shape = self.elementwise_shape(eng, &a, &b);
                let (num, den) = if op == BinOp::ElemDiv {
                    (&a, &b)
                } else {
                    (&b, &a)
                };
                let range = exact_div_range(num, den);
                VarFacts {
                    intrinsic: if complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape,
                    range,
                    value: None,
                    maxval: None,
                }
            }
            BinOp::MatDiv | BinOp::MatLeftDiv => {
                let cx = &mut eng.cx;
                // Scalar divisor (or dividend for `\`) keeps the other
                // operand's shape; the general case is a solve.
                let shape = if op == BinOp::MatDiv && b.shape.is_scalar(cx) {
                    a.shape.clone()
                } else if op == BinOp::MatLeftDiv && a.shape.is_scalar(cx) {
                    b.shape.clone()
                } else if a.shape.is_scalar(cx) && b.shape.is_scalar(cx) {
                    Shape::scalar(cx)
                } else {
                    Shape::fresh(cx, "mdiv")
                };
                // Scalar divisions keep exact ranges (loop bounds like
                // `round(n / 2)` depend on this).
                let scalar_div = (op == BinOp::MatDiv && b.shape.is_scalar(&eng.cx))
                    || (op == BinOp::MatLeftDiv && a.shape.is_scalar(&eng.cx));
                let range = if scalar_div {
                    let (num, den) = if op == BinOp::MatDiv {
                        (&a, &b)
                    } else {
                        (&b, &a)
                    };
                    exact_div_range(num, den)
                } else {
                    Range::top()
                };
                VarFacts {
                    intrinsic: if complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape,
                    range,
                    value: None,
                    maxval: None,
                }
            }
            BinOp::MatPow | BinOp::ElemPow => {
                let cx = &mut eng.cx;
                let shape = if op == BinOp::ElemPow {
                    self.elementwise_shape(eng, &a, &b)
                } else if a.shape.is_scalar(cx) && b.shape.is_scalar(cx) {
                    Shape::scalar(cx)
                } else {
                    a.shape.clone() // A^k keeps A's (square) shape
                };
                // Negative base with fractional exponent goes complex.
                let may_complex = complex || (!a.range.nonneg() && !b.range.integral);
                VarFacts {
                    intrinsic: if may_complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::Real
                    },
                    shape,
                    range: if a.range.nonneg() && b.range.integral {
                        Range::new(0.0, f64::INFINITY, false)
                    } else {
                        Range::top()
                    },
                    value: None,
                    maxval: None,
                }
            }
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => {
                let shape = self.elementwise_shape(eng, &a, &b);
                VarFacts {
                    intrinsic: Intrinsic::Bool,
                    shape,
                    range: Range::boolean(),
                    value: None,
                    maxval: None,
                }
            }
            BinOp::ShortAnd | BinOp::ShortOr => {
                // Lowered to control flow before IR; defensive default.
                let shape = Shape::scalar(&mut eng.cx);
                VarFacts {
                    intrinsic: Intrinsic::Bool,
                    shape,
                    range: Range::boolean(),
                    value: None,
                    maxval: None,
                }
            }
        }
    }

    fn mul_like(
        &mut self,
        eng: &mut Engine<'_>,
        a: VarFacts,
        b: VarFacts,
        shape: Shape,
        complex: bool,
    ) -> VarFacts {
        let cx = &mut eng.cx;
        let range = a.range.mul(b.range);
        let value = match (a.value, b.value) {
            (Some(x), Some(y)) if shape.is_scalar(cx) => Some(cx.mul(x, y)),
            _ => None,
        };
        VarFacts {
            intrinsic: if complex {
                Intrinsic::Complex
            } else {
                Intrinsic::for_range(range.lo, range.hi, range.integral)
            },
            shape,
            range,
            value,
            maxval: value,
        }
    }

    fn un_facts(&mut self, eng: &mut Engine<'_>, op: UnOp, args: &[Operand]) -> VarFacts {
        let a = self.operand_fact(eng, &args[0]);
        let cx = &mut eng.cx;
        match op {
            UnOp::Neg => {
                let range = a.range.neg();
                let value = a.value.map(|v| cx.scale(-1, v));
                VarFacts {
                    intrinsic: if a.intrinsic.is_complex() {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape: a.shape,
                    range,
                    value,
                    maxval: value,
                }
            }
            UnOp::Plus => a,
            UnOp::Not => VarFacts {
                intrinsic: Intrinsic::Bool,
                shape: a.shape,
                range: Range::boolean(),
                value: None,
                maxval: None,
            },
            UnOp::Transpose | UnOp::CTranspose => {
                let shape = match &a.shape {
                    Shape::Tuple(d) if d.len() == 2 => Shape::Tuple(vec![d[1], d[0]]),
                    // numel (and hence the symbolic size) is preserved.
                    other => other.clone(),
                };
                VarFacts {
                    intrinsic: a.intrinsic,
                    shape,
                    range: a.range,
                    value: a.value,
                    maxval: a.maxval,
                }
            }
        }
    }

    fn subsref_facts(&mut self, eng: &mut Engine<'_>, dst: VarId, args: &[Operand]) -> VarFacts {
        let a = self.operand_fact(eng, &args[0]);
        let subs = &args[1..];
        let sub_facts: Vec<Option<VarFacts>> = subs
            .iter()
            .map(|s| s.as_var().map(|v| self.fact(eng, v)))
            .collect();
        let cx = &mut eng.cx;

        let all_scalar = sub_facts
            .iter()
            .all(|f| f.as_ref().is_some_and(|f| f.shape.is_scalar(cx)));
        let element_facts = |cx: &mut ExprCtx| VarFacts {
            intrinsic: a.intrinsic,
            shape: Shape::scalar(cx),
            range: a.range,
            value: None,
            maxval: None,
        };
        if all_scalar && !subs.is_empty() {
            return element_facts(cx);
        }
        // Single-subscript forms.
        if subs.len() == 1 {
            let shape = match &sub_facts[0] {
                // a(:) — a column of numel(a) elements.
                None => {
                    let n = a.shape.clone().numel(cx);
                    let one = cx.constant(1);
                    Shape::Tuple(vec![n, one])
                }
                // a(v) — the subscript's shape.
                Some(f) => f.shape.clone(),
            };
            return VarFacts {
                intrinsic: a.intrinsic,
                shape,
                range: a.range,
                value: None,
                maxval: None,
            };
        }
        // Multi-subscript: per-dimension extents.
        let a_dims: Option<Vec<ExprId>> = match &a.shape {
            Shape::Tuple(d) if d.len() == subs.len() => Some(d.clone()),
            _ => None,
        };
        let mut dims = Vec::with_capacity(subs.len());
        for (k, sf) in sub_facts.iter().enumerate() {
            let ext = match sf {
                None => match &a_dims {
                    // `:` keeps the array's extent in that dimension.
                    Some(d) => d[k],
                    None => self.site_sym_cx(eng, dst, k),
                },
                Some(f) if f.shape.is_scalar(&eng.cx) => eng.cx.constant(1),
                Some(f) => {
                    let s = f.shape.clone();
                    s.numel(&mut eng.cx)
                }
            };
            dims.push(ext);
        }
        VarFacts {
            intrinsic: a.intrinsic,
            shape: Shape::Tuple(dims),
            range: a.range,
            value: None,
            maxval: None,
        }
    }

    fn site_sym_cx(&mut self, eng: &mut Engine<'_>, dst: VarId, slot: usize) -> ExprId {
        self.site_sym(eng, dst, slot)
    }

    fn subsasgn_facts(&mut self, eng: &mut Engine<'_>, dst: VarId, args: &[Operand]) -> VarFacts {
        let a = self.operand_fact(eng, &args[0]);
        let r = self.operand_fact(eng, &args[1]);
        let subs = &args[2..];
        let sub_facts: Vec<Option<VarFacts>> = subs
            .iter()
            .map(|s| s.as_var().map(|v| self.fact(eng, v)))
            .collect();

        let intrinsic = a.intrinsic.join(r.intrinsic);
        // Expansion fills with zeros.
        let range = a.range.join(r.range).join(Range::exact(0.0));

        let shape = match (&a.shape, subs.len()) {
            (Shape::Tuple(d), m) if d.len() == m && m >= 2 => {
                let mut dims = Vec::with_capacity(m);
                for (k, sf) in sub_facts.iter().enumerate() {
                    let ext = match sf {
                        // `:` cannot expand the dimension.
                        None => d[k],
                        Some(f) => match f
                            .range
                            .as_exact()
                            .filter(|v| v.fract() == 0.0 && v.abs() < 1e12)
                            .map(|v| eng.cx.constant(v as i64))
                            .or_else(|| f.upper_bound())
                        {
                            Some(ub) => {
                                let nn = if f.range.nonneg() {
                                    ub
                                } else {
                                    let zero = eng.cx.constant(0);
                                    eng.cx.max(ub, zero)
                                };
                                eng.cx.max(d[k], nn)
                            }
                            None => {
                                let s = self.site_sym(eng, dst, k);
                                eng.cx.max(d[k], s)
                            }
                        },
                    };
                    dims.push(ext);
                }
                Shape::Tuple(dims)
            }
            // Linear indexing of a row/column vector extends its length.
            (Shape::Tuple(d), 1) if d.len() == 2 => {
                let ub = sub_facts[0]
                    .as_ref()
                    .and_then(|f| {
                        f.range
                            .as_exact()
                            .filter(|v| v.fract() == 0.0 && v.abs() < 1e12)
                            .map(|v| eng.cx.constant(v as i64))
                            .or_else(|| f.upper_bound())
                    })
                    .unwrap_or_else(|| self.site_sym(eng, dst, 0));
                let one = eng.cx.constant(1);
                let is_row = eng.cx.as_const(d[0]) == Some(1);
                if is_row {
                    let n = eng.cx.max(d[1], ub);
                    Shape::Tuple(vec![one, n])
                } else if eng.cx.as_const(d[1]) == Some(1) {
                    let n = eng.cx.max(d[0], ub);
                    Shape::Tuple(vec![n, one])
                } else {
                    // Linear store into a (possibly) non-vector: shape
                    // kept, growth only legal for vectors at run time.
                    let grown = self.site_sym(eng, dst, 0);
                    let na = a.shape.clone().numel(&mut eng.cx);
                    Shape::Any(eng.cx.max(na, grown))
                }
            }
            _ => {
                // Unknown layout: the result contains at least `a`.
                let grown = self.site_sym(eng, dst, 63);
                let na = a.shape.clone().numel(&mut eng.cx);
                Shape::Any(eng.cx.max(na, grown))
            }
        };
        VarFacts {
            intrinsic,
            shape,
            range,
            value: None,
            maxval: None,
        }
    }

    fn range_facts(
        &mut self,
        eng: &mut Engine<'_>,
        dst: VarId,
        op: &Op,
        args: &[Operand],
    ) -> VarFacts {
        let a = self.operand_fact(eng, &args[0]);
        let last = self.operand_fact(eng, args.last().expect("range has operands"));
        let step = match op {
            Op::Range3 => Some(self.operand_fact(eng, &args[1])),
            _ => None,
        };
        let cx = &mut eng.cx;
        let unit_step = match &step {
            None => true,
            Some(s) => s.range.as_exact() == Some(1.0),
        };
        // Element count.
        let count = match (a.range.as_exact(), last.range.as_exact(), &step) {
            (Some(x), Some(y), None) => Some(cx.constant(((y - x).floor() as i64 + 1).max(0))),
            (Some(x), Some(y), Some(s)) => s.range.as_exact().and_then(|st| {
                if st == 0.0 {
                    None
                } else {
                    Some(cx.constant((((y - x) / st).floor() as i64 + 1).max(0)))
                }
            }),
            _ if unit_step => match (a.value, last.value) {
                (Some(va), Some(vb)) => {
                    let one = cx.constant(1);
                    let diff = cx.sub(vb, va);
                    let len = cx.add(diff, one);
                    // 1:n with n possibly < 1 clamps at zero.
                    if a.range.as_exact() == Some(1.0) && last.range.positive() {
                        Some(len)
                    } else {
                        let zero = cx.constant(0);
                        Some(cx.max(len, zero))
                    }
                }
                _ => None,
            },
            _ => None,
        };
        let count = count.unwrap_or_else(|| self.site_sym(eng, dst, 0));
        let cx = &mut eng.cx;
        let one = cx.constant(1);
        let range = Range {
            lo: a.range.lo.min(last.range.lo),
            hi: a.range.hi.max(last.range.hi),
            integral: a.range.integral
                && last.range.integral
                && step.as_ref().is_none_or(|s| s.range.integral),
        };
        let maxval = match (a.upper_bound(), last.upper_bound()) {
            (Some(x), Some(y)) => Some(cx.max(x, y)),
            _ => None,
        };
        VarFacts {
            intrinsic: if range.integral {
                Intrinsic::for_range(range.lo, range.hi, true)
            } else {
                Intrinsic::Real
            },
            shape: Shape::Tuple(vec![one, count]),
            range,
            value: None,
            maxval,
        }
    }

    fn matrix_facts(
        &mut self,
        eng: &mut Engine<'_>,
        dst: VarId,
        rows: &[usize],
        args: &[Operand],
    ) -> VarFacts {
        let facts: Vec<VarFacts> = args.iter().map(|a| self.operand_fact(eng, a)).collect();
        let cx = &mut eng.cx;
        let all_scalar = facts.iter().all(|f| f.shape.is_scalar(cx));
        let mut intrinsic = Intrinsic::Bool;
        let mut range = Range::exact(0.0);
        let mut first = true;
        for f in &facts {
            intrinsic = intrinsic.join(f.intrinsic);
            range = if first { f.range } else { range.join(f.range) };
            first = false;
        }
        if facts.is_empty() {
            range = Range::exact(0.0);
        }
        let maxval = {
            let mut acc: Option<ExprId> = None;
            let mut ok = true;
            for f in &facts {
                match (acc, f.upper_bound()) {
                    (None, Some(u)) => acc = Some(u),
                    (Some(a), Some(u)) => acc = Some(cx.max(a, u)),
                    (_, None) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                acc
            } else {
                None
            }
        };
        let shape = if all_scalar {
            let r = cx.constant(rows.len() as i64);
            let c = cx.constant(rows.first().copied().unwrap_or(0) as i64);
            Shape::Tuple(vec![r, c])
        } else {
            // Concatenation of non-scalars: sum heights over rows, sum
            // widths within a row.
            let mut idx = 0usize;
            let mut total_h: Option<ExprId> = None;
            let mut width: Option<ExprId> = None;
            let mut degraded = false;
            for &rlen in rows {
                let mut row_w: Option<ExprId> = None;
                let mut row_h: Option<ExprId> = None;
                for _ in 0..rlen {
                    let f = &facts[idx];
                    idx += 1;
                    let (h, w) = match &f.shape {
                        Shape::Tuple(d) if d.len() == 2 => (d[0], d[1]),
                        _ => {
                            degraded = true;
                            break;
                        }
                    };
                    row_h = Some(row_h.unwrap_or(h));
                    row_w = Some(match row_w {
                        None => w,
                        Some(acc) => cx.add(acc, w),
                    });
                }
                if degraded {
                    break;
                }
                if let (Some(h), Some(w)) = (row_h, row_w) {
                    total_h = Some(match total_h {
                        None => h,
                        Some(acc) => cx.add(acc, h),
                    });
                    width = Some(width.unwrap_or(w));
                }
            }
            if degraded {
                Shape::Any(self.site_sym(eng, dst, 0))
            } else {
                match (total_h, width) {
                    (Some(h), Some(w)) => Shape::Tuple(vec![h, w]),
                    _ => Shape::empty(&mut eng.cx),
                }
            }
        };
        VarFacts {
            intrinsic,
            shape,
            range,
            value: None,
            maxval,
        }
    }

    fn extent_from_value(
        &mut self,
        eng: &mut Engine<'_>,
        f: &VarFacts,
        dst: VarId,
        slot: usize,
    ) -> ExprId {
        if let Some(v) = f.range.as_exact() {
            return eng.cx.constant((v as i64).max(0));
        }
        match f.value {
            Some(v) if f.range.nonneg() => v,
            Some(v) => {
                let zero = eng.cx.constant(0);
                eng.cx.max(v, zero)
            }
            None => self.site_sym(eng, dst, slot),
        }
    }

    fn builtin_facts(
        &mut self,
        eng: &mut Engine<'_>,
        dst: VarId,
        bi: Builtin,
        args: &[Operand],
    ) -> VarFacts {
        use Builtin::*;
        let facts: Vec<VarFacts> = args.iter().map(|a| self.operand_fact(eng, a)).collect();
        match bi {
            Zeros | Ones | Eye | Rand => {
                let shape = match facts.len() {
                    0 => Shape::scalar(&mut eng.cx),
                    1 => {
                        let e = self.extent_from_value(eng, &facts[0], dst, 0);
                        Shape::Tuple(vec![e, e])
                    }
                    n => {
                        let dims: Vec<ExprId> = (0..n)
                            .map(|k| self.extent_from_value(eng, &facts[k], dst, k))
                            .collect();
                        Shape::Tuple(dims)
                    }
                };
                let (intrinsic, range) = match bi {
                    Zeros => (Intrinsic::Bool, Range::exact(0.0)),
                    Ones => (Intrinsic::Bool, Range::exact(1.0)),
                    Eye => (Intrinsic::Bool, Range::new(0.0, 1.0, true)),
                    _ => (Intrinsic::Real, Range::new(0.0, 1.0, false)),
                };
                VarFacts {
                    intrinsic,
                    shape,
                    range,
                    value: None,
                    maxval: None,
                }
            }
            Size => {
                // Compute-position size: size(a) -> 1×rank vector,
                // size(a, d) -> scalar extent.
                let a = &facts[0];
                if facts.len() >= 2 {
                    let dim = facts[1].range.as_exact().map(|v| v as usize);
                    let value = match (&a.shape, dim) {
                        (Shape::Tuple(d), Some(k)) if k >= 1 => {
                            // Trailing dimensions have extent 1.
                            Some(if k <= d.len() {
                                d[k - 1]
                            } else {
                                eng.cx.constant(1)
                            })
                        }
                        _ => None,
                    };
                    self.scalar_extent_facts(eng, value, dst, 90)
                } else {
                    let rank = a.shape.rank().unwrap_or(2) as i64;
                    let one = eng.cx.constant(1);
                    let r = eng.cx.constant(rank);
                    VarFacts {
                        intrinsic: Intrinsic::Int,
                        shape: Shape::Tuple(vec![one, r]),
                        range: Range::new(0.0, f64::INFINITY, true),
                        value: None,
                        maxval: None,
                    }
                }
            }
            Numel => {
                let n = facts[0].shape.clone().numel(&mut eng.cx);
                self.scalar_extent_facts(eng, Some(n), dst, 91)
            }
            Length => {
                let value = match &facts[0].shape {
                    Shape::Tuple(d) if !d.is_empty() => {
                        let mut acc = d[0];
                        for e in &d[1..] {
                            acc = eng.cx.max(acc, *e);
                        }
                        Some(acc)
                    }
                    _ => None,
                };
                self.scalar_extent_facts(eng, value, dst, 92)
            }
            Ndims => {
                let value = facts[0].shape.rank().map(|r| eng.cx.constant(r as i64));
                self.scalar_extent_facts(eng, value, dst, 93)
            }
            RangeCount => {
                // range_count(start, step, stop): the `for` trip count.
                let (a, s, b) = (&facts[0], &facts[1], &facts[2]);
                let value = match (a.range.as_exact(), s.range.as_exact(), b.range.as_exact()) {
                    (Some(x), Some(st), Some(y)) if st != 0.0 => {
                        Some(eng.cx.constant((((y - x) / st).floor() as i64 + 1).max(0)))
                    }
                    _ => {
                        if a.range.as_exact() == Some(1.0) && s.range.as_exact() == Some(1.0) {
                            b.value.map(|vb| {
                                if b.range.positive() {
                                    vb
                                } else {
                                    let zero = eng.cx.constant(0);
                                    eng.cx.max(vb, zero)
                                }
                            })
                        } else {
                            None
                        }
                    }
                };
                self.scalar_extent_facts(eng, value, dst, 94)
            }
            LoopIndex => {
                // loop_index(start, step, stop, k): always between the
                // range endpoints — the trip-count bound MAGICA gives
                // induction variables.
                let (st, sp, en) = (&facts[0], &facts[1], &facts[2]);
                let range = Range {
                    lo: st.range.lo.min(en.range.lo),
                    hi: st.range.hi.max(en.range.hi),
                    integral: st.range.integral && sp.range.integral && en.range.integral,
                };
                let maxval = match (st.upper_bound(), en.upper_bound()) {
                    (Some(a), Some(b)) => Some(eng.cx.max(a, b)),
                    _ => None,
                };
                let cx = &mut eng.cx;
                VarFacts {
                    intrinsic: if range.integral {
                        Intrinsic::for_range(range.lo, range.hi, true)
                    } else {
                        Intrinsic::Real
                    },
                    shape: Shape::scalar(cx),
                    range,
                    value: None,
                    maxval,
                }
            }
            IsTrue | IsEmpty => VarFacts {
                intrinsic: Intrinsic::Bool,
                shape: Shape::scalar(&mut eng.cx),
                range: Range::boolean(),
                value: None,
                maxval: None,
            },
            Sqrt => {
                let a = &facts[0];
                let goes_complex = a.intrinsic.is_complex() || !a.range.nonneg();
                VarFacts {
                    intrinsic: if goes_complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::Real
                    },
                    shape: a.shape.clone(),
                    range: if a.range.nonneg() {
                        Range::new(a.range.lo.sqrt(), a.range.hi.sqrt(), false)
                    } else {
                        Range::top()
                    },
                    value: None,
                    maxval: None,
                }
            }
            Log => {
                let a = &facts[0];
                let goes_complex = a.intrinsic.is_complex() || !a.range.positive();
                VarFacts {
                    intrinsic: if goes_complex {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::Real
                    },
                    shape: a.shape.clone(),
                    range: Range::top(),
                    value: None,
                    maxval: None,
                }
            }
            Abs => {
                let a = &facts[0];
                let hi = a.range.hi.abs().max(a.range.lo.abs());
                let lo = if a.range.lo <= 0.0 && a.range.hi >= 0.0 {
                    0.0
                } else {
                    a.range.lo.abs().min(a.range.hi.abs())
                };
                let range = Range::new(lo, hi, a.range.integral && !a.intrinsic.is_complex());
                VarFacts {
                    intrinsic: if a.intrinsic.is_complex() {
                        Intrinsic::Real
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape: a.shape.clone(),
                    range,
                    value: None,
                    maxval: None,
                }
            }
            Sin | Cos => {
                let a = &facts[0];
                VarFacts {
                    intrinsic: if a.intrinsic.is_complex() {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::Real
                    },
                    shape: a.shape.clone(),
                    range: if a.intrinsic.is_complex() {
                        Range::top()
                    } else {
                        Range::new(-1.0, 1.0, false)
                    },
                    value: None,
                    maxval: None,
                }
            }
            Tan | Atan | Exp | Conj | Real | Imag | Sign | Floor | Ceil | Round | Fix => {
                let a = &facts[0];
                let (intrinsic, range) = match bi {
                    Tan | Exp => (
                        if a.intrinsic.is_complex() {
                            Intrinsic::Complex
                        } else {
                            Intrinsic::Real
                        },
                        if bi == Exp {
                            Range::new(0.0, f64::INFINITY, false)
                        } else {
                            Range::top()
                        },
                    ),
                    Atan => (
                        Intrinsic::Real,
                        Range::new(
                            -std::f64::consts::FRAC_PI_2,
                            std::f64::consts::FRAC_PI_2,
                            false,
                        ),
                    ),
                    Conj => (a.intrinsic, a.range),
                    Real | Imag => (
                        Intrinsic::Real,
                        if a.intrinsic.is_complex() {
                            Range::top()
                        } else {
                            a.range
                        },
                    ),
                    // sign of complex is z/|z| (unit-modulus COMPLEX);
                    // of real it is integral in [-1, 1].
                    Sign => {
                        if a.intrinsic.is_complex() {
                            (Intrinsic::Complex, Range::new(-1.0, 1.0, false))
                        } else {
                            (Intrinsic::Int, Range::new(-1.0, 1.0, true))
                        }
                    }
                    _ => {
                        // floor/ceil/round/fix
                        let r = Range::new(
                            a.range.lo.floor(),
                            a.range.hi.ceil(),
                            !a.intrinsic.is_complex(),
                        );
                        (
                            if a.intrinsic.is_complex() {
                                Intrinsic::Complex
                            } else {
                                Intrinsic::for_range(r.lo, r.hi, r.integral)
                            },
                            r,
                        )
                    }
                };
                VarFacts {
                    intrinsic,
                    shape: a.shape.clone(),
                    range,
                    value: if bi == Conj { a.value } else { None },
                    maxval: if bi == Conj { a.maxval } else { None },
                }
            }
            Atan2 => {
                let shape = self.elementwise_shape(eng, &facts[0].clone(), &facts[1].clone());
                VarFacts {
                    intrinsic: Intrinsic::Real,
                    shape,
                    range: Range::new(-std::f64::consts::PI, std::f64::consts::PI, false),
                    value: None,
                    maxval: None,
                }
            }
            Mod | Rem => {
                let a = facts[0].clone();
                let b = facts[1].clone();
                let shape = self.elementwise_shape(eng, &a, &b);
                let integral = a.range.integral && b.range.integral;
                let range = if b.range.nonneg() && b.range.hi.is_finite() {
                    Range::new(-b.range.hi, b.range.hi, integral)
                } else {
                    Range::new(f64::NEG_INFINITY, f64::INFINITY, integral)
                };
                VarFacts {
                    intrinsic: if a.intrinsic.is_complex() || b.intrinsic.is_complex() {
                        Intrinsic::Complex
                    } else {
                        Intrinsic::for_range(range.lo, range.hi, range.integral)
                    },
                    shape,
                    range,
                    value: None,
                    maxval: None,
                }
            }
            Max | Min => {
                if facts.len() == 2 {
                    let a = facts[0].clone();
                    let b = facts[1].clone();
                    let shape = self.elementwise_shape(eng, &a, &b);
                    let range = if bi == Max {
                        Range::new(
                            a.range.lo.max(b.range.lo),
                            a.range.hi.max(b.range.hi),
                            a.range.integral && b.range.integral,
                        )
                    } else {
                        Range::new(
                            a.range.lo.min(b.range.lo),
                            a.range.hi.min(b.range.hi),
                            a.range.integral && b.range.integral,
                        )
                    };
                    let value = match (a.value, b.value, &shape) {
                        (Some(x), Some(y), s) if s.is_scalar(&eng.cx) && bi == Max => {
                            Some(eng.cx.max(x, y))
                        }
                        _ => None,
                    };
                    VarFacts {
                        intrinsic: if a.intrinsic.is_complex() || b.intrinsic.is_complex() {
                            Intrinsic::Complex
                        } else {
                            Intrinsic::for_range(range.lo, range.hi, range.integral)
                        },
                        shape,
                        range,
                        value,
                        maxval: value,
                    }
                } else {
                    self.reduction_facts(eng, &facts[0], facts[0].intrinsic, facts[0].range)
                }
            }
            Sum | Prod => {
                let a = &facts[0];
                let intrinsic = if a.intrinsic.is_complex() {
                    Intrinsic::Complex
                } else if a.range.integral {
                    Intrinsic::Int
                } else {
                    Intrinsic::Real
                };
                let range = Range::new(f64::NEG_INFINITY, f64::INFINITY, a.range.integral);
                let a = a.clone();
                self.reduction_facts(eng, &a, intrinsic, range)
            }
            Mean => {
                let a = facts[0].clone();
                let intrinsic = if a.intrinsic.is_complex() {
                    Intrinsic::Complex
                } else {
                    Intrinsic::Real
                };
                self.reduction_facts(eng, &a, intrinsic, Range::top())
            }
            Any | All => {
                let a = facts[0].clone();
                self.reduction_facts(eng, &a, Intrinsic::Bool, Range::boolean())
            }
            Norm => VarFacts {
                intrinsic: Intrinsic::Real,
                shape: Shape::scalar(&mut eng.cx),
                range: Range::new(0.0, f64::INFINITY, false),
                value: None,
                maxval: None,
            },
            Linspace => {
                let one = eng.cx.constant(1);
                let n = if facts.len() >= 3 {
                    self.extent_from_value(eng, &facts[2].clone(), dst, 2)
                } else {
                    eng.cx.constant(100)
                };
                let (lo, hi) = if facts.len() >= 2 {
                    (
                        facts[0].range.lo.min(facts[1].range.lo),
                        facts[0].range.hi.max(facts[1].range.hi),
                    )
                } else {
                    (f64::NEG_INFINITY, f64::INFINITY)
                };
                VarFacts {
                    intrinsic: Intrinsic::Real,
                    shape: Shape::Tuple(vec![one, n]),
                    range: Range::new(lo, hi, false),
                    value: None,
                    maxval: None,
                }
            }
            Pi => VarFacts {
                intrinsic: Intrinsic::Real,
                shape: Shape::scalar(&mut eng.cx),
                range: Range::exact(std::f64::consts::PI),
                value: None,
                maxval: None,
            },
            Inf | Eps | NaN => VarFacts {
                intrinsic: Intrinsic::Real,
                shape: Shape::scalar(&mut eng.cx),
                range: Range::top(),
                value: None,
                maxval: None,
            },
            Disp | Fprintf | ErrorFn => VarFacts {
                intrinsic: Intrinsic::Bool,
                shape: Shape::empty(&mut eng.cx),
                range: Range::exact(0.0),
                value: None,
                maxval: None,
            },
        }
    }

    /// Facts for a nonnegative integral scalar with an optional symbolic
    /// value (extents, counts).
    fn scalar_extent_facts(
        &mut self,
        eng: &mut Engine<'_>,
        value: Option<ExprId>,
        dst: VarId,
        slot: usize,
    ) -> VarFacts {
        let value = Some(match value {
            Some(v) => v,
            None => self.site_sym(eng, dst, slot),
        });
        let exact = value.and_then(|v| eng.cx.as_const(v));
        let cx = &mut eng.cx;
        let range = match exact {
            Some(k) => Range::exact(k as f64),
            None => Range::new(0.0, f64::INFINITY, true),
        };
        let intrinsic = match exact {
            Some(k) => Intrinsic::for_range(k as f64, k as f64, true),
            None => Intrinsic::Int,
        };
        VarFacts {
            intrinsic,
            shape: Shape::scalar(cx),
            range,
            value,
            maxval: value,
        }
    }

    /// Column-style reductions (`sum`, `mean`, `any`, 1-arg `max`):
    /// vectors reduce to scalars; matrices with a known column count
    /// reduce to a row; anything else is unknown.
    fn reduction_facts(
        &mut self,
        eng: &mut Engine<'_>,
        a: &VarFacts,
        intrinsic: Intrinsic,
        range: Range,
    ) -> VarFacts {
        let cx = &mut eng.cx;
        let shape = match &a.shape {
            s if s.is_vector(cx) => Shape::scalar(cx),
            Shape::Tuple(d) if d.len() >= 2 => {
                match cx.as_const(d[0]) {
                    Some(1) if d.len() == 2 => Shape::scalar(cx),
                    Some(_) => {
                        // Columns collapse: [d0, d1, ..., dk] -> [1, d1*...*dk]
                        // (the runtime's column geometry).
                        let one = cx.constant(1);
                        let mut cols = d[1];
                        for e in &d[2..] {
                            cols = cx.mul(cols, *e);
                        }
                        Shape::Tuple(vec![one, cols])
                    }
                    // Symbolic leading extent: could be a vector (scalar
                    // result) or not (row result) — unknown.
                    None => Shape::fresh(cx, "reduce"),
                }
            }
            _ => Shape::fresh(cx, "reduce"),
        };
        VarFacts {
            intrinsic,
            shape,
            range,
            value: None,
            maxval: a.maxval,
        }
    }

    fn call_multi_facts(
        &mut self,
        eng: &mut Engine<'_>,
        dsts: &[VarId],
        func: &str,
        args: &[VarFacts],
    ) -> Vec<VarFacts> {
        // User function?
        if eng.prog.by_name.contains_key(func) {
            let rets = self.user_call(eng, func, args.to_vec()).unwrap_or_default();
            return (0..dsts.len())
                .map(|i| {
                    rets.get(i)
                        .cloned()
                        .unwrap_or_else(|| VarFacts::unknown(&mut eng.cx, "ret"))
                })
                .collect();
        }
        match Builtin::from_name(func) {
            Some(Builtin::Size) => {
                // [m, n, ...] = size(a): one scalar per destination.
                let a = args.first().cloned();
                (0..dsts.len())
                    .map(|k| {
                        let value = a.as_ref().and_then(|a| match &a.shape {
                            Shape::Tuple(d) => {
                                if k + 1 < dsts.len() || dsts.len() == d.len() {
                                    d.get(k).copied()
                                } else {
                                    // Last output collects remaining dims.
                                    None
                                }
                            }
                            _ => None,
                        });
                        self.scalar_extent_facts(eng, value, dsts[k], 80 + k)
                    })
                    .collect()
            }
            Some(Builtin::Max) | Some(Builtin::Min) => {
                // [m, i] = max(a).
                let a = args.first().cloned();
                let mut out = Vec::with_capacity(dsts.len());
                if let Some(a) = a {
                    let red = self.reduction_facts(eng, &a, a.intrinsic, a.range);
                    out.push(red);
                } else {
                    out.push(VarFacts::unknown(&mut eng.cx, "max"));
                }
                if dsts.len() > 1 {
                    let idx = VarFacts {
                        intrinsic: Intrinsic::Int,
                        shape: out[0].shape.clone(),
                        range: Range::new(1.0, f64::INFINITY, true),
                        value: None,
                        maxval: None,
                    };
                    out.push(idx);
                }
                while out.len() < dsts.len() {
                    out.push(VarFacts::unknown(&mut eng.cx, "extra"));
                }
                out
            }
            _ => (0..dsts.len())
                .map(|_| VarFacts::unknown(&mut eng.cx, "builtin_multi"))
                .collect(),
        }
    }
}

/// The range of a division: exact when both operands are exact (and the
/// divisor nonzero), ⊤ otherwise.
fn exact_div_range(num: &VarFacts, den: &VarFacts) -> Range {
    match (num.range.as_exact(), den.range.as_exact()) {
        (Some(x), Some(y)) if y != 0.0 => Range::exact(x / y),
        _ => Range::top(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;

    fn infer(srcs: &[&str]) -> (IrProgram, ProgramTypes) {
        let ast = parse_program(srcs.iter().copied()).unwrap();
        let ir = build_ssa(&ast).unwrap();
        let t = infer_program(&ir);
        (ir, t)
    }

    fn out_facts<'a>(ir: &IrProgram, t: &'a ProgramTypes) -> &'a VarFacts {
        let fid = ir.entry.unwrap();
        let out = ir.entry_func().ssa_outs[0];
        t.facts(fid, out).expect("facts for output")
    }

    #[test]
    fn explicit_shapes_from_constants() {
        let (ir, t) = infer(&["function y = f()\ny = zeros(3, 4);\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![3, 4]));
        assert_eq!(f.intrinsic, Intrinsic::Bool, "zeros is range-typed {{0}}");
    }

    #[test]
    fn interprocedural_constant_shapes() {
        // The driver passes constants; the kernel's arrays become
        // explicit — the mechanism behind d = 0 in Table 2.
        let (ir, t) = infer(&[
            "function y = driver()\ny = kernel(8);\nend\n",
            "function a = kernel(n)\na = rand(n, n);\na = a + 1;\nend\n",
        ]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![8, 8]));
        assert_eq!(f.intrinsic, Intrinsic::Real);
    }

    #[test]
    fn elementwise_ops_reuse_symbolic_shape() {
        // Paper Example 1: with nothing known about t0, t1..t3 share its
        // symbolic shape and go COMPLEX.
        let (ir, t) =
            infer(&["function t3 = f(t0)\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\nt3 = tan(t2);\n"]);
        let fid = ir.entry.unwrap();
        let func = ir.entry_func();
        let t0 = func.params[0];
        let t3 = func.ssa_outs[0];
        let f0 = t.facts(fid, t0).unwrap();
        let f3 = t.facts(fid, t3).unwrap();
        assert_eq!(f0.shape, f3.shape, "shape identity is reused");
        assert_eq!(f3.intrinsic, Intrinsic::Complex);
    }

    #[test]
    fn size_feeds_back_into_extents() {
        let (ir, t) = infer(&["function b = f(a)\nm = size(a, 1);\nb = zeros(m, 1);\n"]);
        let fid = ir.entry.unwrap();
        let func = ir.entry_func();
        let a = func.params[0];
        let b = func.ssa_outs[0];
        let fa = t.facts(fid, a).unwrap().clone();
        let fb = t.facts(fid, b).unwrap().clone();
        // b's first extent should be symbolically tied to a's size: since
        // a has unknown shape, m is a symbol; zeros(m,1) uses it.
        match &fb.shape {
            Shape::Tuple(d) => {
                assert_eq!(t.ctx.as_const(d[1]), Some(1));
                assert!(t.ctx.as_const(d[0]).is_none(), "symbolic extent");
            }
            s => panic!("unexpected shape {s:?}"),
        }
        let _ = fa;
    }

    #[test]
    fn subsasgn_growth_is_max() {
        // Paper Example 2: b formed from a by subsasgn has |s(b)| >= |s(a)|.
        let (ir, mut t) =
            infer(&["function b = f(x, y, i1, i2)\na = eye(x, y);\nb = a;\nb(i1, i2) = 1;\n"]);
        let fid = ir.entry.unwrap();
        let func = ir.entry_func();
        let b = func.ssa_outs[0];
        let fb = t.facts(fid, b).unwrap().clone();
        // Find `a`'s SSA def (the eye result): any var named a.
        let a_var = func
            .vars
            .iter()
            .find(|(_, i)| i.name.as_deref() == Some("a") && i.ssa_version > 0)
            .map(|(v, _)| v)
            .unwrap();
        let fa = t.facts(fid, a_var).unwrap().clone();
        assert_eq!(fa.intrinsic, Intrinsic::Bool, "eye is BOOLEAN (paper)");
        let na = fa.shape.clone().numel(&mut t.ctx);
        let nb = fb.shape.clone().numel(&mut t.ctx);
        assert!(
            t.ctx.provably_ge(nb, na),
            "|s(b)| = {} >= |s(a)| = {}",
            t.ctx.render(nb),
            t.ctx.render(na)
        );
    }

    #[test]
    fn loop_counter_stays_integral() {
        let (ir, t) = infer(&["function s = f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\n"]);
        let f = out_facts(&ir, &t);
        assert!(f.range.integral, "sum of integers is integral");
        assert!(!f.intrinsic.is_complex());
        assert!(f.shape.is_scalar(&t.ctx));
    }

    #[test]
    fn sqrt_of_possibly_negative_goes_complex() {
        let (ir, t) = infer(&["function y = f(x)\ny = sqrt(x - 10);\n"]);
        assert_eq!(out_facts(&ir, &t).intrinsic, Intrinsic::Complex);
        let (ir2, t2) = infer(&["function y = f()\ny = sqrt(9);\n"]);
        assert_eq!(out_facts(&ir2, &t2).intrinsic, Intrinsic::Real);
    }

    #[test]
    fn comparison_is_boolean() {
        let (ir, t) = infer(&["function y = f(a, b)\ny = a < b;\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.intrinsic, Intrinsic::Bool);
    }

    #[test]
    fn range_literal_shape() {
        let (ir, t) = infer(&["function y = f()\ny = 1:2:9;\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![1, 5]));
        assert!(f.range.integral);
    }

    #[test]
    fn symbolic_range_length() {
        let (ir, t) =
            infer(&["function y = g()\ny = h(7);\nend\nfunction y = h(n)\ny = 1:n;\nend\n"]);
        // Through the call, n = 7, so 1:n has 7 elements.
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![1, 7]));
    }

    #[test]
    fn matrix_literal_of_scalars() {
        let (ir, t) = infer(&["function y = f()\na = 6;\ny = [1 2 3; 4 5 a];\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![2, 3]));
    }

    #[test]
    fn transpose_swaps_extents() {
        let (ir, t) = infer(&["function y = f()\nx = zeros(2, 5);\ny = x';\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![5, 2]));
    }

    #[test]
    fn matmul_shape_composition() {
        let (ir, t) = infer(&["function y = f()\na = rand(3, 4);\nb = rand(4, 7);\ny = a * b;\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![3, 7]));
    }

    #[test]
    fn widening_terminates_growing_loops() {
        // a grows every iteration; inference must terminate.
        let (ir, t) =
            infer(&["function a = f(n)\na = zeros(1, 1);\nfor i = 1:n\na(i) = i;\nend\n"]);
        let f = out_facts(&ir, &t);
        // Shape is not explicit (it grows with symbolic n).
        assert!(!f.shape.is_explicit(&t.ctx));
    }

    #[test]
    fn multi_out_size_values() {
        let (ir, t) =
            infer(&["function y = f()\nx = zeros(6, 2);\n[m, n] = size(x);\ny = zeros(m, n);\n"]);
        let f = out_facts(&ir, &t);
        assert_eq!(f.shape.known_dims(&t.ctx), Some(vec![6, 2]));
    }

    #[test]
    fn recursion_falls_back_to_unknown() {
        let (ir, t) =
            infer(&["function y = f(n)\nif n <= 1\ny = 1;\nelse\ny = n * f(n - 1);\nend\n"]);
        // Must terminate; output facts exist.
        let f = out_facts(&ir, &t);
        assert!(f.shape.rank().is_some() || matches!(f.shape, Shape::Any(_)));
    }
}
