//! Pass-pipeline properties on random structured programs: the
//! optimizer is a **fixpoint** (a second run changes nothing), keeps
//! the IR verifier happy, and never grows the instruction count.

use matc_frontend::parser::parse_program;
use matc_ir::build_ssa;
use proptest::prelude::*;

fn arb_stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (0..4usize, 1..9i32).prop_map(|(v, k)| format!("v{v} = {k};\n")),
        (0..4usize, 0..4usize, 0..4usize).prop_map(|(d, a, b)| format!("v{d} = v{a} + v{b};\n")),
        (0..4usize, 0..4usize).prop_map(|(d, a)| format!("v{d} = v{a} * 2;\n")),
        (0..4usize).prop_map(|v| format!("v{v} = rand(2, 2);\n")),
        (0..4usize, 0..4usize)
            .prop_map(|(d, a)| format!("if v{a}(1) > 0\nv{d} = 1;\nelse\nv{d} = 2;\nend\n")),
        (0..4usize).prop_map(|v| format!("for t = 1:3\nv{v} = v{v} + t;\nend\n")),
        // Dead code fodder: a value never observed again.
        (0..4usize).prop_map(|v| format!("dead{v} = v{v} .* 3;\n")),
    ]
}

fn render(stmts: &[String]) -> String {
    let mut src = String::new();
    for i in 0..4 {
        src.push_str(&format!("v{i} = {};\n", i + 1));
    }
    for s in stmts {
        src.push_str(s);
    }
    src.push_str("disp(v0 + v1 + v2 + v3);\n");
    src
}

fn instr_count(ir: &matc_ir::IrProgram) -> usize {
    ir.functions
        .iter()
        .map(|f| {
            f.block_ids()
                .map(|b| f.block(b).instrs.len())
                .sum::<usize>()
        })
        .sum()
}

fn render_ir(ir: &matc_ir::IrProgram) -> String {
    ir.functions.iter().map(|f| f.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn optimizer_is_a_fixpoint(stmts in proptest::collection::vec(arb_stmt(), 0..10)) {
        let src = render(&stmts);
        let ast = parse_program([src.as_str()]).unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        let before = instr_count(&ir);
        matc_passes::optimize_program(&mut ir);
        let after_one = instr_count(&ir);
        prop_assert!(after_one <= before, "optimizer grew the program");
        matc_ir::verify::verify_program(&ir).unwrap();
        let printed_one = render_ir(&ir);
        matc_passes::optimize_program(&mut ir);
        prop_assert_eq!(printed_one, render_ir(&ir), "second run changed the IR");
    }
}
