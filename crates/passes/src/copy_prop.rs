//! Copy propagation (§2.2).
//!
//! The paper frees the CFG of copies *before* building the interference
//! graph — instead of Chaitin-style iterated coalescing — by running copy
//! propagation followed by dead-code elimination. In SSA this is
//! straightforward: every use of a copy's destination is redirected to
//! the (transitively resolved) source; the now-dead copies are removed by
//! [`crate::dce`].

use matc_ir::ids::VarId;
use matc_ir::instr::{InstrKind, Terminator};
use matc_ir::FuncIr;
use std::collections::HashMap;

/// Propagates copies in one SSA function. Returns the number of uses
/// rewritten.
///
/// # Panics
///
/// Panics if `func` is not in SSA form (source resolution relies on
/// single definitions).
pub fn copy_propagate(func: &mut FuncIr) -> usize {
    assert!(func.in_ssa, "copy propagation runs on SSA");
    // dst -> src for every Copy.
    let mut fwd: HashMap<VarId, VarId> = HashMap::new();
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            if let InstrKind::Copy { dst, src } = instr.kind {
                fwd.insert(dst, src);
            }
        }
    }
    if fwd.is_empty() {
        return 0;
    }
    // Transitive resolution (SSA guarantees acyclicity).
    let resolve = |mut v: VarId| {
        let mut hops = 0;
        while let Some(s) = fwd.get(&v) {
            v = *s;
            hops += 1;
            debug_assert!(hops <= fwd.len(), "copy cycle in SSA");
        }
        v
    };
    let mut rewritten = 0;
    for b in func.block_ids() {
        let mut blk = std::mem::take(func.block_mut(b));
        for instr in &mut blk.instrs {
            instr.map_uses(|u| {
                let r = resolve(u);
                if r != u {
                    rewritten += 1;
                }
                r
            });
        }
        if let Terminator::Branch { cond, .. } = &mut blk.term {
            let r = resolve(*cond);
            if r != *cond {
                *cond = r;
                rewritten += 1;
            }
        }
        *func.block_mut(b) = blk;
    }
    // Outputs may be carried by copies.
    for o in &mut func.ssa_outs {
        let r = resolve(*o);
        if r != *o {
            *o = r;
            rewritten += 1;
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::{build_ssa, verify_func};

    fn prepped(src: &str) -> FuncIr {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        prog.entry_func().clone()
    }

    #[test]
    fn propagates_through_chains() {
        // y = x; z = y; out = z + 1  -->  out = x + 1
        let mut f = prepped("function out = f(x)\ny = x;\nz = y;\nout = z + 1;\n");
        let n = copy_propagate(&mut f);
        assert!(n >= 2, "rewrote {n} uses:\n{f}");
        verify_func(&f).unwrap();
        // The add must now use the parameter directly.
        let param = f.params[0];
        let uses_param = f.block_ids().any(|b| {
            f.block(b)
                .instrs
                .iter()
                .any(|i| matches!(&i.kind, InstrKind::Compute { .. }) && i.uses().contains(&param))
        });
        assert!(uses_param, "{f}");
    }

    #[test]
    fn output_copies_resolve() {
        let mut f = prepped("function y = f(x)\ny = x;\n");
        copy_propagate(&mut f);
        assert_eq!(f.ssa_outs[0], f.params[0], "{f}");
    }

    #[test]
    fn no_copies_is_noop() {
        let mut f = prepped("function y = f(x)\ny = x + 1;\n");
        let before = f.clone();
        assert_eq!(copy_propagate(&mut f), 0);
        assert_eq!(f, before);
    }
}
