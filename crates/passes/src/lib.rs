//! # matc-passes
//!
//! Classic SSA optimization passes run before the GCTD storage pass:
//! copy propagation and dead-code elimination (the paper's §2.2 strategy
//! for freeing the CFG of copies), constant folding/propagation with
//! branch folding, and dominator-scoped common-subexpression elimination.
//!
//! [`optimize_program`] runs the standard pipeline to a fixpoint.
//!
//! ```
//! use matc_frontend::parser::parse_program;
//! use matc_ir::build_ssa;
//! use matc_passes::optimize_program;
//!
//! let ast = parse_program(["function y = f(x)\nt = x;\ny = t + 2 * 3;\n"]).unwrap();
//! let mut ir = build_ssa(&ast).unwrap();
//! let stats = optimize_program(&mut ir);
//! assert!(stats.copies_propagated + stats.constants_folded > 0);
//! ```

#![warn(missing_docs)]

pub mod const_fold;
pub mod copy_prop;
pub mod cse;
pub mod dce;

pub use const_fold::{fold_branches, fold_constants};
pub use copy_prop::copy_propagate;
pub use cse::eliminate_common_subexpressions;
pub use dce::eliminate_dead_code;

use matc_ir::{Budget, BudgetError, IrProgram};

/// Aggregate statistics from one [`optimize_program`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Uses rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Instructions folded to constants.
    pub constants_folded: usize,
    /// Constant branches turned into jumps.
    pub branches_folded: usize,
    /// Computations replaced by CSE.
    pub cse_replaced: usize,
    /// Instructions removed by DCE.
    pub dead_removed: usize,
}

impl OptStats {
    /// Total rewrites across all passes (the batch driver's single-number
    /// optimization metric).
    pub fn total(&self) -> usize {
        self.copies_propagated
            + self.constants_folded
            + self.branches_folded
            + self.cse_replaced
            + self.dead_removed
    }
}

/// Runs the full pass pipeline over every function until a fixpoint
/// (bounded at a handful of rounds — ample for these passes).
///
/// Debug builds re-verify SSA invariants after every individual pass
/// application, so a pass that corrupts the IR is caught immediately and
/// named, rather than surfacing later as a planner or auditor failure.
pub fn optimize_program(prog: &mut IrProgram) -> OptStats {
    let budget = Budget::unlimited();
    optimize_program_budgeted(prog, &budget).expect("unlimited budget cannot trip")
}

/// [`optimize_program`] under a [`Budget`]: each optimization round
/// charges fuel proportional to the function's current instruction
/// count, and the phase wall-clock deadline (armed under the phase name
/// `"optimize"`) is observed between rounds.
///
/// # Errors
///
/// Returns the [`BudgetError`] that tripped. The program may have been
/// partially rewritten when this happens, but every individual pass ran
/// to completion, so the IR is always left in a valid (merely
/// less-optimized) state; callers nevertheless restart from a fresh
/// lowering on the conservative path to keep artifacts deterministic.
pub fn optimize_program_budgeted(
    prog: &mut IrProgram,
    budget: &Budget,
) -> Result<OptStats, BudgetError> {
    budget.enter_phase("optimize");
    let mut stats = OptStats::default();
    for f in &mut prog.functions {
        for _ in 0..4 {
            let cost: usize = f.blocks.iter().map(|b| b.instrs.len()).sum();
            budget.spend(cost as u64 + 1)?;
            let mut round = 0;
            round += add(&mut stats.constants_folded, fold_constants(f));
            verify_after(f, "fold_constants");
            round += add(&mut stats.branches_folded, fold_branches(f));
            verify_after(f, "fold_branches");
            round += add(&mut stats.cse_replaced, eliminate_common_subexpressions(f));
            verify_after(f, "eliminate_common_subexpressions");
            round += add(&mut stats.copies_propagated, copy_propagate(f));
            verify_after(f, "copy_propagate");
            round += add(&mut stats.dead_removed, eliminate_dead_code(f));
            verify_after(f, "eliminate_dead_code");
            if round == 0 {
                break;
            }
        }
    }
    Ok(stats)
}

fn add(slot: &mut usize, n: usize) -> usize {
    *slot += n;
    n
}

/// Debug-only invariant check, attributing any breakage to `pass`.
#[inline]
fn verify_after(f: &matc_ir::FuncIr, pass: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = matc_ir::verify_func(f) {
            panic!("pass `{pass}` broke `{}`: {e}\n{f}", f.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::build_ssa;

    #[test]
    fn pipeline_reaches_fixpoint_and_stays_valid() {
        let ast = parse_program([
            "function y = driver()\ny = kern(100);\nend\nfunction s = kern(n)\ns = 0;\nfor i = 1:n\nt = i * 2;\nu = i * 2;\ns = s + t + u;\nend\nend\n",
        ])
        .unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        let stats = optimize_program(&mut ir);
        matc_ir::verify_program(&ir).unwrap();
        assert!(stats.cse_replaced >= 1, "{stats:?}");
        assert!(stats.dead_removed >= 1, "{stats:?}");
    }

    #[test]
    fn paper_copy_example_is_preserved() {
        // §2.2: copy propagating s1 from `t2 = s1` into the φ would
        // change meaning; the pipeline must keep the program's semantics
        // by construction (SSA renames separate the lifetimes). We just
        // check validity after optimization of a loop with cross copies.
        let ast = parse_program([
            "function [s, t] = f(n)\ns = 1;\nt = 2;\nfor i = 1:n\nw = t;\nt = s;\ns = w + 1;\nend\n",
        ])
        .unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        optimize_program(&mut ir);
        matc_ir::verify_program(&ir).unwrap();
    }

    #[test]
    fn whole_branch_elimination() {
        let ast = parse_program([
            "function y = f()\nflag = 1;\nif flag > 0\ny = 10;\nelse\ny = 20;\nend\n",
        ])
        .unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        let stats = optimize_program(&mut ir);
        assert!(stats.branches_folded >= 1);
        // The surviving code computes 10.
        let txt = ir.entry_func().to_string();
        assert!(txt.contains("<- 10"), "{txt}");
    }
}
