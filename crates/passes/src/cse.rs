//! Global common-subexpression elimination (dominator-scoped value
//! numbering).
//!
//! The paper's translator runs GCSE among its "over 20 passes" (§2.2,
//! footnote 4). Pure computations with identical operation and operands
//! are replaced by copies of the dominating occurrence; the copies are
//! then removed by copy propagation + DCE, shrinking the variable count
//! that Phase 1 sees.

use matc_ir::dom::DomTree;
use matc_ir::ids::{BlockId, VarId};
use matc_ir::instr::{Const, InstrKind, Op, Operand};
use matc_ir::FuncIr;
use std::collections::HashMap;

/// One scope level of available expressions.
type Scope = Vec<ExprKey>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Compute(Op, Vec<Operand>),
    Const(ConstKey),
}

/// A hashable stand-in for `Const` (f64 compared bitwise).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Num(u64),
    Imag(u64),
    Str(String),
    Empty,
    Bool(bool),
}

fn const_key(c: &Const) -> ConstKey {
    match c {
        Const::Num(v) => ConstKey::Num(v.to_bits()),
        Const::Imag(v) => ConstKey::Imag(v.to_bits()),
        Const::Str(s) => ConstKey::Str(s.clone()),
        Const::Empty => ConstKey::Empty,
        Const::Bool(b) => ConstKey::Bool(*b),
    }
}

fn pure_op(op: &Op) -> bool {
    match op {
        Op::Builtin(b) => b.is_pure(),
        Op::Call(_) => false,
        _ => true,
    }
}

/// Runs dominator-scoped value numbering on one SSA function. Returns the
/// number of computations replaced by copies.
///
/// # Panics
///
/// Panics if `func` is not in SSA form.
pub fn eliminate_common_subexpressions(func: &mut FuncIr) -> usize {
    assert!(func.in_ssa, "CSE runs on SSA");
    let dt = DomTree::compute(func);
    let mut avail: HashMap<ExprKey, VarId> = HashMap::new();
    let mut replaced = 0;
    walk(func, &dt, func.entry, &mut avail, &mut replaced);
    replaced
}

fn walk(
    func: &mut FuncIr,
    dt: &DomTree,
    b: BlockId,
    avail: &mut HashMap<ExprKey, VarId>,
    replaced: &mut usize,
) {
    let mut scope: Scope = Vec::new();
    let mut blk = std::mem::take(func.block_mut(b));
    for instr in &mut blk.instrs {
        let key = match &instr.kind {
            InstrKind::Compute { op, args, .. } if pure_op(op) => {
                Some(ExprKey::Compute(op.clone(), args.clone()))
            }
            InstrKind::Const { value, .. } => Some(ExprKey::Const(const_key(value))),
            _ => None,
        };
        if let Some(key) = key {
            let dst = instr.defs()[0];
            if let Some(prev) = avail.get(&key) {
                instr.kind = InstrKind::Copy { dst, src: *prev };
                *replaced += 1;
            } else {
                avail.insert(key.clone(), dst);
                scope.push(key);
            }
        }
    }
    *func.block_mut(b) = blk;
    for &c in dt.children(b) {
        walk(func, dt, c, avail, replaced);
    }
    for key in scope {
        avail.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_prop::copy_propagate;
    use crate::dce::eliminate_dead_code;
    use matc_frontend::parser::parse_program;
    use matc_ir::{build_ssa, verify_func};

    fn prepped(src: &str) -> FuncIr {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        prog.entry_func().clone()
    }

    fn count_op(f: &FuncIr, needle: &str) -> usize {
        f.to_string().matches(needle).count()
    }

    #[test]
    fn dedupes_repeated_expression() {
        let mut f = prepped("function y = f(a, b)\nu = a * b;\nv = a * b;\ny = u + v;\n");
        let n = eliminate_common_subexpressions(&mut f);
        assert!(n >= 1, "{f}");
        copy_propagate(&mut f);
        eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
        assert_eq!(count_op(&f, "bin[*]"), 1, "{f}");
    }

    #[test]
    fn dedupes_constants() {
        // Two `for` loops both materialize the constant 1.
        let mut f = prepped("function s = f(n)\ns = 0;\nfor i = 1:n\ns = s + 1;\nend\n");
        let n = eliminate_common_subexpressions(&mut f);
        assert!(n >= 1, "several `1` literals collapse:\n{f}");
    }

    #[test]
    fn respects_dominance() {
        // The two branches compute a*b but neither dominates the other:
        // no replacement may cross them.
        let mut f =
            prepped("function y = f(a, b, c)\nif c > 0\ny = a * b;\nelse\ny = a * b;\nend\n");
        eliminate_common_subexpressions(&mut f);
        copy_propagate(&mut f);
        eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
        assert_eq!(count_op(&f, "bin[*]"), 2, "{f}");
    }

    #[test]
    fn impure_not_deduped() {
        let mut f = prepped("function y = f()\na = rand(2, 2);\nb = rand(2, 2);\ny = a + b;\n");
        eliminate_common_subexpressions(&mut f);
        assert_eq!(count_op(&f, "rand"), 2, "{f}");
    }

    #[test]
    fn subsref_deduped_when_array_unchanged() {
        let mut f = prepped("function y = f(a)\nu = a(1);\nv = a(1);\ny = u + v;\n");
        let n = eliminate_common_subexpressions(&mut f);
        assert!(n >= 1, "pure subsref dedupes in SSA:\n{f}");
        copy_propagate(&mut f);
        eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
    }
}
