//! Dead-code elimination.
//!
//! Standard SSA mark-and-sweep: roots are side-effecting instructions
//! (I/O, RNG, calls), branch conditions and the function's outputs;
//! everything transitively used from a root is live; the rest — including
//! the copies left behind by [`crate::copy_prop`] and φs that only feed
//! dead code — is deleted.

use matc_ir::ids::VarId;
use matc_ir::FuncIr;
use std::collections::HashSet;

/// Removes dead instructions from one SSA function. Returns how many
/// instructions were deleted.
pub fn eliminate_dead_code(func: &mut FuncIr) -> usize {
    let mut live: HashSet<VarId> = HashSet::new();
    let mut work: Vec<VarId> = Vec::new();

    let mark = |v: VarId, live: &mut HashSet<VarId>, work: &mut Vec<VarId>| {
        if live.insert(v) {
            work.push(v);
        }
    };

    // Roots.
    for o in &func.ssa_outs {
        mark(*o, &mut live, &mut work);
    }
    for b in func.block_ids() {
        let blk = func.block(b);
        for instr in &blk.instrs {
            if instr.has_side_effects() {
                for u in instr.uses() {
                    mark(u, &mut live, &mut work);
                }
                // Side-effecting defs are kept, so their uses stay too;
                // defs themselves need not be marked live to be kept.
            }
        }
        if let Some(c) = blk.term.used_var() {
            mark(c, &mut live, &mut work);
        }
    }

    // Def lookup: var -> (block, index).
    let mut def_of: Vec<Option<(usize, usize)>> = vec![None; func.vars.len()];
    for b in func.block_ids() {
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            for d in instr.defs() {
                def_of[d.index()] = Some((b.index(), i));
            }
        }
    }

    // Propagate liveness backwards through definitions.
    while let Some(v) = work.pop() {
        if let Some((bi, ii)) = def_of[v.index()] {
            let instr = &func.blocks[bi].instrs[ii];
            for u in instr.uses() {
                if live.insert(u) {
                    work.push(u);
                }
            }
        }
    }

    // Sweep.
    let mut removed = 0;
    for b in func.block_ids() {
        let blk = func.block_mut(b);
        let before = blk.instrs.len();
        blk.instrs.retain(|instr| {
            instr.has_side_effects() || instr.defs().iter().any(|d| live.contains(d))
        });
        removed += before - blk.instrs.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_prop::copy_propagate;
    use matc_frontend::parser::parse_program;
    use matc_ir::instr::InstrKind;
    use matc_ir::{build_ssa, verify_func};

    fn prepped(src: &str) -> FuncIr {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        prog.entry_func().clone()
    }

    #[test]
    fn removes_unused_computation() {
        let mut f = prepped("function y = f(x)\ndead = x * 2;\ny = x + 1;\n");
        let n = eliminate_dead_code(&mut f);
        assert!(n >= 1, "{f}");
        verify_func(&f).unwrap();
        let text = f.to_string();
        assert!(!text.contains("dead"), "{text}");
    }

    #[test]
    fn keeps_effects_and_rand() {
        let mut f = prepped("function y = f(x)\nfprintf('hi\\n');\nunused = rand(3, 3);\ny = x;\n");
        eliminate_dead_code(&mut f);
        let text = f.to_string();
        assert!(text.contains("fprintf"), "{text}");
        assert!(text.contains("rand"), "rand advances RNG state: {text}");
    }

    #[test]
    fn copies_then_dce_removes_copy_instrs() {
        let mut f = prepped("function out = f(x)\ny = x;\nz = y;\nout = z + 1;\n");
        copy_propagate(&mut f);
        eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
        let copies: usize = f
            .block_ids()
            .map(|b| {
                f.block(b)
                    .instrs
                    .iter()
                    .filter(|i| matches!(i.kind, InstrKind::Copy { .. }))
                    .count()
            })
            .sum();
        assert_eq!(copies, 0, "{f}");
    }

    #[test]
    fn dead_phi_removed() {
        let mut f = prepped("function y = f(x)\nif x > 0\nd = 1;\nelse\nd = 2;\nend\ny = x;\n");
        eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
        let phis: usize = f.block_ids().map(|b| f.block(b).phis().count()).sum();
        assert_eq!(phis, 0, "phi for dead `d` must go:\n{f}");
    }

    #[test]
    fn keeps_display_values_alive() {
        let mut f = prepped("function f(x)\nv = x * 3\n");
        eliminate_dead_code(&mut f);
        let text = f.to_string();
        assert!(text.contains("bin[*]"), "displayed value stays: {text}");
    }
}
