//! Constant folding and propagation.
//!
//! Scalar operations whose operands are compile-time constants are
//! rewritten to `Const` instructions; because the IR is SSA, propagation
//! is implicit (later folds see earlier results) and the pass iterates
//! until no instruction changes. Folding feeds the type engine with
//! exact values — the paper's drivers pass constant problem sizes, which
//! is what makes whole benchmarks stack-allocatable (§3.2.1).

use matc_frontend::ast::{BinOp, UnOp};
use matc_ir::ids::VarId;
use matc_ir::instr::{Const, InstrKind, Op};
use matc_ir::{Builtin, FuncIr};
use std::collections::HashMap;

/// Folds constant scalar computations in one SSA function. Returns the
/// number of instructions rewritten to constants.
pub fn fold_constants(func: &mut FuncIr) -> usize {
    let mut total = 0;
    loop {
        let mut consts: HashMap<VarId, f64> = HashMap::new();
        for b in func.block_ids() {
            for instr in &func.block(b).instrs {
                if let InstrKind::Const { dst, value } = &instr.kind {
                    if let Some(v) = scalar_value(value) {
                        consts.insert(*dst, v);
                    }
                }
            }
        }
        let mut folded = 0;
        for b in func.block_ids() {
            let mut blk = std::mem::take(func.block_mut(b));
            for instr in &mut blk.instrs {
                if let InstrKind::Compute { dst, op, args } = &instr.kind {
                    let vals: Option<Vec<f64>> = args
                        .iter()
                        .map(|a| a.as_var().and_then(|v| consts.get(&v).copied()))
                        .collect();
                    if let Some(vals) = vals {
                        if let Some(result) = eval(op, &vals) {
                            instr.kind = InstrKind::Const {
                                dst: *dst,
                                value: result,
                            };
                            folded += 1;
                        }
                    }
                }
            }
            *func.block_mut(b) = blk;
        }
        total += folded;
        if folded == 0 {
            return total;
        }
    }
}

fn scalar_value(c: &Const) -> Option<f64> {
    match c {
        Const::Num(v) => Some(*v),
        Const::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

/// Evaluates a scalar operation over constant operands, mirroring the
/// runtime semantics for the foldable subset (real scalars only).
fn eval(op: &Op, vals: &[f64]) -> Option<Const> {
    let bool_of = |b: bool| Const::Bool(b);
    Some(match op {
        Op::Bin(b) => {
            let (x, y) = (vals[0], vals[1]);
            match b {
                BinOp::Add => Const::Num(x + y),
                BinOp::Sub => Const::Num(x - y),
                BinOp::MatMul | BinOp::ElemMul => Const::Num(x * y),
                BinOp::MatDiv | BinOp::ElemDiv => Const::Num(x / y),
                BinOp::MatLeftDiv | BinOp::ElemLeftDiv => Const::Num(y / x),
                BinOp::MatPow | BinOp::ElemPow => {
                    // Negative base with fractional exponent is complex;
                    // leave for the runtime.
                    if x < 0.0 && y.fract() != 0.0 {
                        return None;
                    }
                    Const::Num(x.powf(y))
                }
                BinOp::Eq => bool_of(x == y),
                BinOp::Ne => bool_of(x != y),
                BinOp::Lt => bool_of(x < y),
                BinOp::Le => bool_of(x <= y),
                BinOp::Gt => bool_of(x > y),
                BinOp::Ge => bool_of(x >= y),
                BinOp::And => bool_of(x != 0.0 && y != 0.0),
                BinOp::Or => bool_of(x != 0.0 || y != 0.0),
                BinOp::ShortAnd | BinOp::ShortOr => return None,
            }
        }
        Op::Un(u) => {
            let x = vals[0];
            match u {
                UnOp::Neg => Const::Num(-x),
                UnOp::Plus => Const::Num(x),
                UnOp::Not => bool_of(x == 0.0),
                // Scalar transpose is the identity.
                UnOp::Transpose | UnOp::CTranspose => Const::Num(x),
            }
        }
        Op::Builtin(bi) => match (bi, vals) {
            (Builtin::IsTrue, [x]) => bool_of(*x != 0.0),
            (Builtin::Numel, [_]) => Const::Num(1.0),
            (Builtin::Length, [_]) => Const::Num(1.0),
            (Builtin::Ndims, [_]) => Const::Num(2.0),
            (Builtin::Abs, [x]) => Const::Num(x.abs()),
            (Builtin::Floor, [x]) => Const::Num(x.floor()),
            (Builtin::Ceil, [x]) => Const::Num(x.ceil()),
            (Builtin::Round, [x]) => Const::Num(x.round()),
            (Builtin::Fix, [x]) => Const::Num(x.trunc()),
            (Builtin::Sqrt, [x]) if *x >= 0.0 => Const::Num(x.sqrt()),
            (Builtin::Exp, [x]) => Const::Num(x.exp()),
            (Builtin::Log, [x]) if *x > 0.0 => Const::Num(x.ln()),
            (Builtin::Sin, [x]) => Const::Num(x.sin()),
            (Builtin::Cos, [x]) => Const::Num(x.cos()),
            (Builtin::Pi, []) => Const::Num(std::f64::consts::PI),
            (Builtin::Eps, []) => Const::Num(f64::EPSILON),
            (Builtin::Inf, []) => Const::Num(f64::INFINITY),
            (Builtin::LoopIndex, [a, s, _b, k]) => Const::Num(a + s * (k - 1.0)),
            (Builtin::RangeCount, [a, s, b]) => {
                if *s == 0.0 {
                    return None;
                }
                Const::Num((((b - a) / s).floor() + 1.0).max(0.0))
            }
            (Builtin::Max, [x, y]) => Const::Num(x.max(*y)),
            (Builtin::Min, [x, y]) => Const::Num(x.min(*y)),
            (Builtin::Mod, [x, y]) if *y != 0.0 => Const::Num(x - y * (x / y).floor()),
            (Builtin::Rem, [x, y]) if *y != 0.0 => Const::Num(x - y * (x / y).trunc()),
            _ => return None,
        },
        _ => return None,
    })
}

/// Folds branches on constant conditions into jumps, then removes
/// unreachable φ-inputs. Returns the number of branches simplified.
pub fn fold_branches(func: &mut FuncIr) -> usize {
    use matc_ir::instr::Terminator;
    let mut consts: HashMap<VarId, f64> = HashMap::new();
    for b in func.block_ids() {
        for instr in &func.block(b).instrs {
            if let InstrKind::Const { dst, value } = &instr.kind {
                if let Some(v) = scalar_value(value) {
                    consts.insert(*dst, v);
                }
            }
        }
    }
    let mut folded = 0;
    for b in func.block_ids() {
        let blk = func.block(b);
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = blk.term
        {
            if let Some(v) = consts.get(&cond) {
                let (taken, dead) = if *v != 0.0 {
                    (then_bb, else_bb)
                } else {
                    (else_bb, then_bb)
                };
                func.block_mut(b).term = Terminator::Jump(taken);
                // Remove the dead φ-inputs coming from `b` in `dead`.
                if taken != dead {
                    let blk = func.block_mut(dead);
                    let k = blk.first_non_phi();
                    for phi in &mut blk.instrs[..k] {
                        if let InstrKind::Phi { args, .. } = &mut phi.kind {
                            args.retain(|(p, _)| *p != b);
                        }
                    }
                }
                folded += 1;
            }
        }
    }
    if folded > 0 {
        remove_unreachable(func);
    }
    folded
}

/// Empties blocks that became unreachable and drops φ-inputs arriving
/// from them, keeping the SSA invariants intact.
pub fn remove_unreachable(func: &mut FuncIr) {
    let reachable: std::collections::HashSet<_> = func.reverse_postorder().into_iter().collect();
    for b in func.block_ids() {
        if !reachable.contains(&b) {
            let blk = func.block_mut(b);
            blk.instrs.clear();
            blk.term = matc_ir::instr::Terminator::Return;
        }
    }
    for b in func.block_ids() {
        if !reachable.contains(&b) {
            continue;
        }
        let blk = func.block_mut(b);
        let k = blk.first_non_phi();
        for phi in &mut blk.instrs[..k] {
            if let InstrKind::Phi { args, .. } = &mut phi.kind {
                args.retain(|(p, _)| reachable.contains(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_frontend::parser::parse_program;
    use matc_ir::{build_ssa, verify_func};

    fn prepped(src: &str) -> FuncIr {
        let ast = parse_program([src]).unwrap();
        let prog = build_ssa(&ast).unwrap();
        prog.entry_func().clone()
    }

    #[test]
    fn folds_arithmetic_chains() {
        let mut f = prepped("function y = f()\ny = 2 * 3 + 4;\n");
        let n = fold_constants(&mut f);
        assert!(n >= 2, "{f}");
        verify_func(&f).unwrap();
        let text = f.to_string();
        assert!(text.contains("<- 10"), "{text}");
    }

    #[test]
    fn folds_comparisons_to_bool() {
        let mut f = prepped("function y = f()\ny = 3 < 4;\n");
        fold_constants(&mut f);
        assert!(f.to_string().contains("true"));
    }

    #[test]
    fn does_not_fold_through_unknowns() {
        let mut f = prepped("function y = f(x)\ny = x + 1;\n");
        assert_eq!(fold_constants(&mut f), 0);
    }

    #[test]
    fn avoids_complex_power() {
        let mut f = prepped("function y = f()\ny = (0 - 2) ^ 0.5;\n");
        fold_constants(&mut f);
        // The power itself must remain for the runtime.
        assert!(f.to_string().contains("bin[^]"), "{f}");
    }

    #[test]
    fn folds_rangecount() {
        let mut f = prepped("function s = f()\ns = 0;\nfor i = 1:10\ns = s + i;\nend\n");
        fold_constants(&mut f);
        assert!(f.to_string().contains("<- 10"), "{f}");
    }

    #[test]
    fn branch_folding_removes_phi_inputs() {
        let mut f = prepped("function y = f()\nif 1 < 2\ny = 1;\nelse\ny = 2;\nend\ny = y + 0;\n");
        fold_constants(&mut f);
        let n = fold_branches(&mut f);
        assert!(n >= 1, "{f}");
        // The φ for y should have lost its dead input (or the verifier
        // would complain about pred mismatch after reachability changes).
        crate::dce::eliminate_dead_code(&mut f);
        verify_func(&f).unwrap();
    }
}
