//! Criterion benchmarks of the three executors (Figure 5's bars) and the
//! GCTD ablations (Figure 6 plus the §2.3 / Relation-1 design knobs)
//! on the test-preset workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matc_benchsuite::{all, by_name, Preset};
use matc_frontend::parser::parse_program;
use matc_gctd::{GctdOptions, InterferenceOptions};
use matc_vm::compile::{compile, lower_for_mcc};
use matc_vm::{Interp, MccVm, PlannedVm};

fn ast_of(name: &str) -> matc_frontend::ast::Program {
    let srcs = by_name(name).unwrap().sources(Preset::Test);
    let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
    parse_program(refs).unwrap()
}

fn executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("executors");
    g.sample_size(10);
    for bench in all() {
        let ast = ast_of(bench.name);
        let compiled = compile(&ast, GctdOptions::default()).unwrap();
        let mcc_ir = lower_for_mcc(&ast).unwrap();
        g.bench_with_input(
            BenchmarkId::new("mat2c", bench.name),
            &compiled,
            |b, compiled| b.iter(|| PlannedVm::new(compiled).run().unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("mcc", bench.name), &mcc_ir, |b, ir| {
            b.iter(|| MccVm::new(ir).run().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("interp", bench.name), &ast, |b, ast| {
            b.iter(|| Interp::new(ast).run().unwrap())
        });
    }
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    // The design knobs DESIGN.md calls out, on the storage-heavy fiff.
    let ast = ast_of("fiff");
    let configs: Vec<(&str, GctdOptions)> = vec![
        ("full", GctdOptions::default()),
        (
            "no_phi_coalescing",
            GctdOptions {
                interference: InterferenceOptions {
                    operator_semantics: true,
                    phi_coalescing: false,
                },
                ..GctdOptions::default()
            },
        ),
        (
            "no_symbolic_criterion",
            GctdOptions {
                symbolic_criterion: false,
                ..GctdOptions::default()
            },
        ),
        (
            "no_gctd",
            GctdOptions {
                coalesce: false,
                ..GctdOptions::default()
            },
        ),
    ];
    for (label, opts) in configs {
        let compiled = compile(&ast, opts).unwrap();
        g.bench_with_input(BenchmarkId::new("fiff", label), &compiled, |b, compiled| {
            b.iter(|| PlannedVm::new(compiled).run().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, executors, ablations);
criterion_main!(benches);
