//! Criterion benchmarks for every compiler stage, per benchmark program:
//! parse, lower+SSA, classic passes, type inference, and the GCTD pass
//! itself — plus the end-to-end pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matc_benchsuite::{all, Preset};
use matc_frontend::parser::parse_program;
use matc_gctd::{plan_program, GctdOptions};
use matc_ir::build_ssa;
use matc_passes::optimize_program;
use matc_typeinf::infer_program;
use matc_vm::compile::compile;

fn sources(bench: &matc_benchsuite::Benchmark) -> Vec<String> {
    bench.sources(Preset::Test)
}

fn parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    g.sample_size(20);
    for bench in all() {
        let srcs = sources(bench);
        g.bench_with_input(BenchmarkId::from_parameter(bench.name), &srcs, |b, srcs| {
            b.iter(|| {
                let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
                parse_program(refs).unwrap()
            })
        });
    }
    g.finish();
}

fn ssa_and_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("lower_ssa_passes");
    g.sample_size(20);
    for bench in all() {
        let srcs = sources(bench);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let ast = parse_program(refs).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(bench.name), &ast, |b, ast| {
            b.iter(|| {
                let mut ir = build_ssa(ast).unwrap();
                optimize_program(&mut ir);
                ir
            })
        });
    }
    g.finish();
}

fn type_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("typeinf");
    g.sample_size(20);
    for bench in all() {
        let srcs = sources(bench);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let ast = parse_program(refs).unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        optimize_program(&mut ir);
        g.bench_with_input(BenchmarkId::from_parameter(bench.name), &ir, |b, ir| {
            b.iter(|| infer_program(ir))
        });
    }
    g.finish();
}

fn gctd_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("gctd");
    g.sample_size(20);
    for bench in all() {
        let srcs = sources(bench);
        let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
        let ast = parse_program(refs).unwrap();
        let mut ir = build_ssa(&ast).unwrap();
        optimize_program(&mut ir);
        let types = infer_program(&ir);
        g.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &(ir, types),
            |b, (ir, types)| {
                b.iter(|| {
                    let mut t = types.clone();
                    plan_program(ir, &mut t, GctdOptions::default())
                })
            },
        );
    }
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_end_to_end");
    g.sample_size(10);
    for bench in all() {
        let srcs = sources(bench);
        g.bench_with_input(BenchmarkId::from_parameter(bench.name), &srcs, |b, srcs| {
            b.iter(|| {
                let refs: Vec<&str> = srcs.iter().map(|s| s.as_str()).collect();
                let ast = parse_program(refs).unwrap();
                compile(&ast, GctdOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    parse,
    ssa_and_passes,
    type_inference,
    gctd_pass,
    end_to_end
);
criterion_main!(benches);
