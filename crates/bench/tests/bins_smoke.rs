//! Executes every experiment binary at the test preset and checks it
//! exits cleanly and prints the rows its table promises — a panic in
//! any report generator (divergence assert, plan violation, missing
//! benchmark) fails here long before a full paper-preset run.

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin)
        .args(["--preset", "test"])
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed (status {:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BENCH_NAMES: [&str; 11] = [
    "adpt", "capr", "clos", "crni", "diff", "dich", "edit", "fdtd", "fiff", "nb1d", "nb3d",
];

fn assert_all_benchmarks_listed(out: &str, bin: &str) {
    for name in BENCH_NAMES {
        assert!(out.contains(name), "{bin} output missing {name}:\n{out}");
    }
}

#[test]
fn table1_lists_every_benchmark() {
    let out = run(env!("CARGO_BIN_EXE_table1"));
    assert_all_benchmarks_listed(&out, "table1");
}

#[test]
fn table2_reports_subsumption_columns() {
    let out = run(env!("CARGO_BIN_EXE_table2"));
    assert_all_benchmarks_listed(&out, "table2");
    assert!(out.contains('/'), "table2 lacks s/d columns:\n{out}");
}

#[test]
fn fig2_dynamic_data_averages() {
    let out = run(env!("CARGO_BIN_EXE_fig2"));
    assert_all_benchmarks_listed(&out, "fig2");
}

#[test]
fn fig3_virtual_memory() {
    let out = run(env!("CARGO_BIN_EXE_fig3"));
    assert_all_benchmarks_listed(&out, "fig3");
}

#[test]
fn fig4_resident_sets() {
    let out = run(env!("CARGO_BIN_EXE_fig4"));
    assert_all_benchmarks_listed(&out, "fig4");
}

#[test]
fn fig5_execution_times() {
    let out = run(env!("CARGO_BIN_EXE_fig5"));
    assert_all_benchmarks_listed(&out, "fig5");
}

#[test]
fn fig6_gctd_effect() {
    let out = run(env!("CARGO_BIN_EXE_fig6"));
    assert_all_benchmarks_listed(&out, "fig6");
}

#[test]
fn report_prints_summary() {
    let out = run(env!("CARGO_BIN_EXE_report"));
    assert_all_benchmarks_listed(&out, "report");
}

#[test]
fn strategies_compares_colorings() {
    let out = run(env!("CARGO_BIN_EXE_strategies"));
    assert_all_benchmarks_listed(&out, "strategies");
}

#[test]
fn ablations_prints_every_knob() {
    let out = run(env!("CARGO_BIN_EXE_ablations"));
    assert_all_benchmarks_listed(&out, "ablations");
    for knob in ["full", "no-opsem", "no-phi", "no-symbolic", "no-gctd"] {
        assert!(
            out.contains(knob),
            "ablations missing column {knob}:\n{out}"
        );
    }
}
