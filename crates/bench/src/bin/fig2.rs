//! Regenerates Figure 2: average stack and stack+heap (dynamic program
//! data) levels for the mcc and mat2c codes, with the paper's relative
//! reduction percentages and kcore-min values.

use matc_bench::{preset_from_args, print_table, relative_reduction_pct, run_benchmark};
use matc_benchsuite::all;

fn main() {
    let preset = preset_from_args();
    let mut rows = Vec::new();
    for bench in all() {
        let r = run_benchmark(bench, preset);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.1}", r.mcc.avg_stack_kb),
            format!("{:.1}", r.planned.avg_stack_kb),
            format!("{:.1}", r.mcc.avg_dyn_kb),
            format!("{:.1}", r.planned.avg_dyn_kb),
            format!(
                "{:+.1}%",
                relative_reduction_pct(r.mcc.avg_dyn_kb, r.planned.avg_dyn_kb)
            ),
            format!("{:.3}", r.mcc.kcore_min),
            format!("{:.3}", r.planned.kcore_min),
        ]);
    }
    print_table(
        "Figure 2: Average Stack, and Stack+Heap Levels (KB)",
        &[
            "Benchmark",
            "mcc stack",
            "mat2c stack",
            "mcc dyn",
            "mat2c dyn",
            "dyn reduction",
            "mcc kcore-min",
            "mat2c kcore-min",
        ],
        &rows,
    );
    println!("\ndyn reduction = (mcc - mat2c) / mat2c, as annotated above the paper's bars");
}
