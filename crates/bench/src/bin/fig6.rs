//! Regenerates Figure 6: the effect of the GCTD pass on mat2c execution
//! times (coalescing on vs off; all other optimizations active in both).

use matc_bench::{preset_from_args, print_table, run_benchmark};
use matc_benchsuite::all;

fn main() {
    let preset = preset_from_args();
    let mut rows = Vec::new();
    for bench in all() {
        let r = run_benchmark(bench, preset);
        let speedup = r.planned_nogctd.wall.as_secs_f64() / r.planned.wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.4}", r.planned_nogctd.wall.as_secs_f64()),
            format!("{:.4}", r.planned.wall.as_secs_f64()),
            format!("{:.2}x", speedup),
            format!("{:.1}", r.planned_nogctd.avg_dyn_kb),
            format!("{:.1}", r.planned.avg_dyn_kb),
        ]);
    }
    print_table(
        "Figure 6: Effect of Coalescing on Execution Times",
        &[
            "Benchmark",
            "without GCTD (s)",
            "with GCTD (s)",
            "speedup",
            "dyn KB w/o",
            "dyn KB w/",
        ],
        &rows,
    );
}
