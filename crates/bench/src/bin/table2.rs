//! Regenerates Table 2: array storage coalescing reductions.
//!
//! Columns follow the paper: `s/d` — statically-estimable (s) and
//! dynamically-allocated (d) variables subsumed in another variable's
//! storage; the original variable count on entry to GCTD; and the
//! static (stack) storage reduction in KB (heap savings not counted,
//! matching the paper's conservative figure).

use matc_bench::{compile_bench, preset_from_args, print_table};
use matc_benchsuite::all;
use matc_gctd::GctdOptions;

fn main() {
    let preset = preset_from_args();
    let mut rows = Vec::new();
    for bench in all() {
        let compiled = compile_bench(bench, preset, GctdOptions::default());
        let s = compiled.plans.total_stats();
        rows.push(vec![
            bench.name.to_string(),
            format!("{}/{}", s.static_subsumed, s.dynamic_subsumed),
            s.original_vars.to_string(),
            format!("{:.2}", s.stack_bytes_saved as f64 / 1024.0),
        ]);
    }
    print_table(
        "Table 2: Array Storage Coalescing Reductions",
        &[
            "Benchmark",
            "Static/Dynamic Variable Reduction",
            "Original Variable Count",
            "Storage Reduction (KB)",
        ],
        &rows,
    );
}
