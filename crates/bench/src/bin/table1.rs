//! Regenerates Table 1: the benchmark suite description.

use matc_bench::print_table;
use matc_benchsuite::all;

fn main() {
    let rows: Vec<Vec<String>> = all()
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                format!(
                    "{}{}",
                    b.synopsis,
                    if b.three_dimensional { " •" } else { "" }
                ),
                b.origin.to_string(),
                b.m_files().to_string(),
                b.source_lines().to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: Benchmark Suite Description",
        &["Benchmark", "Synopsis", "Origin", "M-Files", "Lines"],
        &rows,
    );
    println!("\n• benchmarks involve three-dimensional arrays");
}
