//! Regenerates Figure 5: comparative execution times of the mcc code,
//! the mat2c code, and the interpreter, with mat2c-over-mcc speedups.

use matc_bench::{preset_from_args, print_table, run_benchmark};
use matc_benchsuite::all;

fn main() {
    let preset = preset_from_args();
    let mut rows = Vec::new();
    for bench in all() {
        let r = run_benchmark(bench, preset);
        let speedup = r.mcc.wall.as_secs_f64() / r.planned.wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.4}", r.mcc.wall.as_secs_f64()),
            format!("{:.4}", r.planned.wall.as_secs_f64()),
            format!("{:.4}", r.interp.wall.as_secs_f64()),
            format!("{:.2}x", speedup),
        ]);
    }
    print_table(
        "Figure 5: Comparative Execution Times (seconds)",
        &[
            "Benchmark",
            "mcc",
            "mat2c",
            "interp",
            "mat2c speedup over mcc",
        ],
        &rows,
    );
}
