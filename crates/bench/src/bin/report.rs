//! Runs the complete evaluation once and prints every artifact
//! (Tables 1–2, Figures 2–6) — the one-shot version of the per-artifact
//! binaries, for EXPERIMENTS.md capture.

use matc_bench::{
    compile_bench, preset_from_args, print_table, relative_reduction_pct, run_benchmark,
};
use matc_benchsuite::all;
use matc_gctd::GctdOptions;

fn main() {
    let preset = preset_from_args();
    println!("preset: {preset:?}\n");

    // ---------------- Table 1 ----------------
    let rows: Vec<Vec<String>> = all()
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                format!(
                    "{}{}",
                    b.synopsis,
                    if b.three_dimensional { " •" } else { "" }
                ),
                b.origin.to_string(),
                b.m_files().to_string(),
                b.source_lines().to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: Benchmark Suite Description",
        &["Benchmark", "Synopsis", "Origin", "M-Files", "Lines"],
        &rows,
    );
    println!();

    // ---------------- Table 2 ----------------
    let mut t2 = Vec::new();
    for bench in all() {
        let compiled = compile_bench(bench, preset, GctdOptions::default());
        let s = compiled.plans.total_stats();
        t2.push(vec![
            bench.name.to_string(),
            format!("{}/{}", s.static_subsumed, s.dynamic_subsumed),
            s.original_vars.to_string(),
            format!("{:.2}", s.stack_bytes_saved as f64 / 1024.0),
        ]);
    }
    print_table(
        "Table 2: Array Storage Coalescing Reductions",
        &[
            "Benchmark",
            "Static/Dynamic Variable Reduction",
            "Original Variable Count",
            "Storage Reduction (KB)",
        ],
        &t2,
    );
    println!();

    // ---------------- One measured run per benchmark ----------------
    let runs: Vec<_> = all().iter().map(|b| run_benchmark(b, preset)).collect();

    let mut f2 = Vec::new();
    let mut f3 = Vec::new();
    let mut f4 = Vec::new();
    let mut f5 = Vec::new();
    let mut f6 = Vec::new();
    for r in &runs {
        f2.push(vec![
            r.name.to_string(),
            format!("{:.1}", r.mcc.avg_stack_kb),
            format!("{:.1}", r.planned.avg_stack_kb),
            format!("{:.1}", r.mcc.avg_dyn_kb),
            format!("{:.1}", r.planned.avg_dyn_kb),
            format!(
                "{:+.1}%",
                relative_reduction_pct(r.mcc.avg_dyn_kb, r.planned.avg_dyn_kb)
            ),
            format!("{:.3}", r.mcc.kcore_min),
            format!("{:.3}", r.planned.kcore_min),
        ]);
        f3.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.mcc.avg_vsize_kb),
            format!("{:.0}", r.planned.avg_vsize_kb),
            format!(
                "{:+.1}%",
                relative_reduction_pct(r.mcc.avg_vsize_kb, r.planned.avg_vsize_kb)
            ),
        ]);
        f4.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.mcc.avg_rss_kb),
            format!("{:.0}", r.planned.avg_rss_kb),
            format!(
                "{:+.1}%",
                relative_reduction_pct(r.mcc.avg_rss_kb, r.planned.avg_rss_kb)
            ),
        ]);
        f5.push(vec![
            r.name.to_string(),
            format!("{:.4}", r.mcc.wall.as_secs_f64()),
            format!("{:.4}", r.planned.wall.as_secs_f64()),
            format!("{:.4}", r.interp.wall.as_secs_f64()),
            format!(
                "{:.2}x",
                r.mcc.wall.as_secs_f64() / r.planned.wall.as_secs_f64().max(1e-9)
            ),
        ]);
        f6.push(vec![
            r.name.to_string(),
            format!("{:.4}", r.planned_nogctd.wall.as_secs_f64()),
            format!("{:.4}", r.planned.wall.as_secs_f64()),
            format!(
                "{:.2}x",
                r.planned_nogctd.wall.as_secs_f64() / r.planned.wall.as_secs_f64().max(1e-9)
            ),
            format!("{:.1}", r.planned_nogctd.avg_dyn_kb),
            format!("{:.1}", r.planned.avg_dyn_kb),
        ]);
    }
    print_table(
        "Figure 2: Average Stack, and Stack+Heap Levels (KB)",
        &[
            "Benchmark",
            "mcc stack",
            "mat2c stack",
            "mcc dyn",
            "mat2c dyn",
            "dyn reduction",
            "mcc kcore-min",
            "mat2c kcore-min",
        ],
        &f2,
    );
    println!();
    print_table(
        "Figure 3: Average Virtual Memory Levels (KB)",
        &["Benchmark", "mcc VM", "mat2c VM", "reduction"],
        &f3,
    );
    println!();
    print_table(
        "Figure 4: Average Resident Set Levels (KB)",
        &["Benchmark", "mcc RSS", "mat2c RSS", "reduction"],
        &f4,
    );
    println!();
    print_table(
        "Figure 5: Comparative Execution Times (seconds)",
        &[
            "Benchmark",
            "mcc",
            "mat2c",
            "interp",
            "mat2c speedup over mcc",
        ],
        &f5,
    );
    println!();
    print_table(
        "Figure 6: Effect of Coalescing on Execution Times",
        &[
            "Benchmark",
            "without GCTD (s)",
            "with GCTD (s)",
            "speedup",
            "dyn KB w/o",
            "dyn KB w/",
        ],
        &f6,
    );
}
