//! Compares coloring strategies (the §5 non-optimality discussion made
//! executable): the paper's lexical greedy, size-ordered greedy, and
//! exhaustive minimum-storage search on small graphs — reporting each
//! benchmark's coalesced stack frame and savings under each.

use matc_bench::{compile_bench, preset_from_args, print_table};
use matc_benchsuite::all;
use matc_gctd::{ColoringStrategy, GctdOptions};

fn main() {
    let preset = preset_from_args();
    let strategies: [(&str, ColoringStrategy); 3] = [
        ("lexical", ColoringStrategy::LexicalGreedy),
        ("size-ordered", ColoringStrategy::SizeOrderedGreedy),
        (
            "exhaustive<=18",
            ColoringStrategy::Exhaustive { max_nodes: 18 },
        ),
    ];
    let mut rows = Vec::new();
    for bench in all() {
        let mut row = vec![bench.name.to_string()];
        for (_, strat) in &strategies {
            let compiled = compile_bench(
                bench,
                preset,
                GctdOptions {
                    coloring: *strat,
                    ..GctdOptions::default()
                },
            );
            let s = compiled.plans.total_stats();
            row.push(format!(
                "{:.1}/{:.1}",
                s.stack_bytes_total as f64 / 1024.0,
                s.stack_bytes_saved as f64 / 1024.0
            ));
        }
        rows.push(row);
    }
    print_table(
        "Coloring strategies: stack frame KB / KB saved",
        &[
            "Benchmark",
            "lexical (paper)",
            "size-ordered",
            "exhaustive<=18",
        ],
        &rows,
    );
}
