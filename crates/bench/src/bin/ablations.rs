//! Prints Table-2-style plan statistics under each GCTD design knob
//! (the ablations DESIGN.md calls out): full GCTD, no operator-semantics
//! conflicts (§2.3, unsound — plan shape only), no φ-coalescing
//! (§2.2.1), no symbolic Relation-1 criterion, and no coalescing at all
//! (Figure 6's baseline).

use matc_bench::{compile_bench, preset_from_args, print_table};
use matc_benchsuite::all;
use matc_gctd::{GctdOptions, InterferenceOptions};

fn main() {
    let preset = preset_from_args();
    let base = GctdOptions::default();
    let knobs: Vec<(&str, GctdOptions)> = vec![
        ("full", base),
        (
            "no-opsem",
            GctdOptions {
                interference: InterferenceOptions {
                    operator_semantics: false,
                    phi_coalescing: true,
                },
                ..base
            },
        ),
        (
            "no-phi",
            GctdOptions {
                interference: InterferenceOptions {
                    operator_semantics: true,
                    phi_coalescing: false,
                },
                ..base
            },
        ),
        (
            "no-symbolic",
            GctdOptions {
                symbolic_criterion: false,
                ..base
            },
        ),
        (
            "no-gctd",
            GctdOptions {
                coalesce: false,
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    for bench in all() {
        let mut row = vec![bench.name.to_string()];
        for (_, opts) in &knobs {
            let c = compile_bench(bench, preset, *opts);
            let s = c.plans.total_stats();
            row.push(format!(
                "{}/{} ({})",
                s.static_subsumed, s.dynamic_subsumed, s.slots
            ));
        }
        rows.push(row);
    }
    print_table(
        "GCTD ablations: subsumed s/d (slots) per design knob",
        &[
            "Benchmark",
            "full",
            "no-opsem",
            "no-phi",
            "no-symbolic",
            "no-gctd",
        ],
        &rows,
    );
    println!("\nno-opsem is unsound by construction (plan shape shown for comparison only)");
}
