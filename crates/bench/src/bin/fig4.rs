//! Regenerates Figure 4: average resident-set levels.

use matc_bench::{preset_from_args, print_table, relative_reduction_pct, run_benchmark};
use matc_benchsuite::all;

fn main() {
    let preset = preset_from_args();
    let mut rows = Vec::new();
    for bench in all() {
        let r = run_benchmark(bench, preset);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.mcc.avg_rss_kb),
            format!("{:.0}", r.planned.avg_rss_kb),
            format!(
                "{:+.1}%",
                relative_reduction_pct(r.mcc.avg_rss_kb, r.planned.avg_rss_kb)
            ),
        ]);
    }
    print_table(
        "Figure 4: Average Resident Set Levels (KB)",
        &["Benchmark", "mcc RSS", "mat2c RSS", "reduction"],
        &rows,
    );
}
