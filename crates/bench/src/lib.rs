//! # matc-bench
//!
//! The experiment harness regenerating every table and figure of the
//! PLDI 2003 evaluation (§4). Each `src/bin/*` binary prints one
//! artifact:
//!
//! | binary  | artifact | content |
//! |---------|----------|---------|
//! | `table1` | Table 1 | benchmark suite description |
//! | `table2` | Table 2 | array storage coalescing reductions |
//! | `fig2`   | Figure 2 | average stack and stack+heap levels |
//! | `fig3`   | Figure 3 | average virtual-memory levels |
//! | `fig4`   | Figure 4 | average resident-set levels |
//! | `fig5`   | Figure 5 | comparative execution times |
//! | `fig6`   | Figure 6 | effect of coalescing on execution times |
//!
//! Pass `--preset test` for CI-scale sizes (default: `paper`). All
//! binaries print aligned tables plus the relative percentages the paper
//! annotates above its bars.

#![warn(missing_docs)]

use matc_benchsuite::{Benchmark, Preset};
use matc_frontend::parser::parse_program;
use matc_gctd::{GctdOptions, PlanStats};
use matc_vm::compile::{compile, lower_for_mcc, Compiled};
use matc_vm::{Interp, MccVm, PlannedVm};
use std::time::{Duration, Instant};

/// Metrics from one executor run.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Wall-clock time.
    pub wall: Duration,
    /// Time-weighted average stack segment (KB).
    pub avg_stack_kb: f64,
    /// Time-weighted average dynamic program data: stack + heap (KB).
    pub avg_dyn_kb: f64,
    /// Time-weighted average virtual memory (KB).
    pub avg_vsize_kb: f64,
    /// Time-weighted average resident set (KB).
    pub avg_rss_kb: f64,
    /// kcore-min for this run (§4.5.2.1).
    pub kcore_min: f64,
    /// Program output (all executors must agree).
    pub output: String,
}

/// One benchmark measured under every executor.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: &'static str,
    /// The MATLAB-interpreter model.
    pub interp: ExecMetrics,
    /// The mcc model.
    pub mcc: ExecMetrics,
    /// mat2c with GCTD.
    pub planned: ExecMetrics,
    /// mat2c without GCTD (Figure 6 baseline).
    pub planned_nogctd: ExecMetrics,
    /// Aggregate GCTD statistics (Table 2).
    pub plan_stats: PlanStats,
}

fn kb(bytes: f64) -> f64 {
    bytes / 1024.0
}

fn parse_bench(bench: &Benchmark, preset: Preset) -> matc_frontend::ast::Program {
    let sources = bench.sources(preset);
    let refs: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
    parse_program(refs).unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name))
}

/// Compiles a benchmark with the given GCTD options.
pub fn compile_bench(bench: &Benchmark, preset: Preset, options: GctdOptions) -> Compiled {
    let ast = parse_bench(bench, preset);
    compile(&ast, options).unwrap_or_else(|e| panic!("{}: compile error: {e}", bench.name))
}

/// Runs one benchmark under all four executor configurations.
///
/// # Panics
///
/// Panics on compile or run-time errors, on output divergence between
/// executors, and on storage-plan violations — the measurements are only
/// meaningful for sound runs.
pub fn run_benchmark(bench: &Benchmark, preset: Preset) -> BenchRun {
    let ast = parse_bench(bench, preset);

    // Interpreter.
    let t0 = Instant::now();
    let mut interp = Interp::new(&ast);
    let interp_out = interp
        .run()
        .unwrap_or_else(|e| panic!("{}: interp: {e}", bench.name));
    let interp_wall = t0.elapsed();
    let interp_m = metrics(&interp.mem, interp_wall, interp_out);

    // mcc model.
    let mcc_ir = lower_for_mcc(&ast).unwrap();
    let t0 = Instant::now();
    let mut mcc = MccVm::new(&mcc_ir);
    let mcc_out = mcc
        .run()
        .unwrap_or_else(|e| panic!("{}: mcc: {e}", bench.name));
    let mcc_wall = t0.elapsed();
    let mcc_m = metrics(&mcc.mem, mcc_wall, mcc_out);

    // mat2c with GCTD.
    let compiled = compile(&ast, GctdOptions::default()).unwrap();
    let t0 = Instant::now();
    let mut planned = PlannedVm::new(&compiled);
    let planned_out = planned
        .run()
        .unwrap_or_else(|e| panic!("{}: planned: {e}", bench.name));
    let planned_wall = t0.elapsed();
    assert_eq!(
        planned.plan_violations, 0,
        "{}: plan violations",
        bench.name
    );
    let planned_m = metrics(&planned.mem, planned_wall, planned_out);

    // mat2c without GCTD.
    let compiled_off = compile(
        &ast,
        GctdOptions {
            coalesce: false,
            ..GctdOptions::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let mut off = PlannedVm::new(&compiled_off);
    let off_out = off
        .run()
        .unwrap_or_else(|e| panic!("{}: planned(no gctd): {e}", bench.name));
    let off_wall = t0.elapsed();
    let off_m = metrics(&off.mem, off_wall, off_out);

    assert_eq!(
        interp_m.output, mcc_m.output,
        "{}: mcc diverged",
        bench.name
    );
    assert_eq!(
        interp_m.output, planned_m.output,
        "{}: planned diverged",
        bench.name
    );
    assert_eq!(
        interp_m.output, off_m.output,
        "{}: no-gctd diverged",
        bench.name
    );

    BenchRun {
        name: bench.name,
        interp: interp_m,
        mcc: mcc_m,
        planned: planned_m,
        planned_nogctd: off_m,
        plan_stats: compiled.plans.total_stats(),
    }
}

fn metrics(mem: &matc_runtime::MemRecorder, wall: Duration, output: String) -> ExecMetrics {
    ExecMetrics {
        wall,
        avg_stack_kb: kb(mem.avg_stack()),
        avg_dyn_kb: kb(mem.avg_dynamic_data()),
        avg_vsize_kb: kb(mem.avg_vsize()),
        avg_rss_kb: kb(mem.avg_rss()),
        kcore_min: mem.kcore_min(wall),
        output,
    }
}

/// Parses the common `--preset {test|paper}` CLI argument (also honors
/// `MATC_PRESET=test`).
pub fn preset_from_args() -> Preset {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--preset" && w[1] == "test" {
            return Preset::Test;
        }
    }
    if std::env::var("MATC_PRESET").as_deref() == Ok("test") {
        return Preset::Test;
    }
    Preset::Paper
}

/// The relative reduction the paper annotates above its bars:
/// `(baseline - ours) / ours`, in percent (e.g. 100% = baseline is twice
/// ours).
pub fn relative_reduction_pct(baseline: f64, ours: f64) -> f64 {
    if ours <= 0.0 {
        return 0.0;
    }
    (baseline - ours) / ours * 100.0
}

/// Renders a header + aligned rows; first column left-aligned, the rest
/// right-aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{:<w$}", c, w = widths[i])
                } else {
                    format!("{:>w$}", c, w = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matc_benchsuite::by_name;

    #[test]
    fn run_benchmark_produces_consistent_metrics() {
        let r = run_benchmark(by_name("clos").unwrap(), Preset::Test);
        assert!(!r.planned.output.is_empty());
        assert!(r.planned.avg_dyn_kb > 0.0);
        assert!(r.mcc.avg_dyn_kb > 0.0);
        assert!(r.plan_stats.original_vars > 0);
    }

    #[test]
    fn relative_reduction_math() {
        assert_eq!(relative_reduction_pct(200.0, 100.0), 100.0);
        assert_eq!(relative_reduction_pct(100.0, 100.0), 0.0);
        assert!(relative_reduction_pct(90.0, 100.0) < 0.0);
    }
}
