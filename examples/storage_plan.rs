//! The paper's Examples 1 and 2, end to end: print which variables the
//! GCTD pass binds to which storage slots and the per-definition resize
//! annotations (`o` never resized, `+` grow-only, `+-` resized).
//!
//! ```sh
//! cargo run --example storage_plan
//! ```

use matc::frontend::parse_program;
use matc::gctd::{GctdOptions, ResizeKind, SlotKind};
use matc::vm::compile::compile;

fn show(title: &str, srcs: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {title} ==");
    let ast = parse_program(srcs.iter().copied())?;
    let compiled = compile(&ast, GctdOptions::default())?;
    for (i, func) in compiled.ir.functions.iter().enumerate() {
        let plan = compiled.plans.plan(matc::ir::FuncId::new(i));
        println!("function {}:", func.name);
        for (si, slot) in plan.slots.iter().enumerate() {
            let members: Vec<String> = slot
                .members
                .iter()
                .map(|v| {
                    let ann = match plan.resize_of(*v) {
                        ResizeKind::NoResize => "o",
                        ResizeKind::Grow => "+",
                        ResizeKind::Resize => "+-",
                    };
                    format!(
                        "{}{}",
                        func.vars.display_name(*v),
                        match slot.kind {
                            SlotKind::Heap => format!("[{ann}]"),
                            SlotKind::Stack { .. } => String::new(),
                        }
                    )
                })
                .collect();
            let kind = match slot.kind {
                SlotKind::Stack { bytes } => format!("stack {bytes}B"),
                SlotKind::Heap => "heap".to_string(),
            };
            println!(
                "  slot {si} ({kind}, {:?}): {}",
                slot.intrinsic,
                members.join(", ")
            );
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1 (§3.2.2): a chain of elementwise operations over an
    // unknown-shaped COMPLEX array — one shared heap slot, no resizes.
    show(
        "Example 1: nonresized arrays with symbolic types",
        &["function t3 = chain(t0)\nt1 = t0 - 1.345;\nt2 = 2.788 .* t1;\nt3 = tan(t2);\n"],
    )?;

    // Example 2 (§3.2.2): an identity matrix expanded by an indexed
    // store — b grows in a's storage (`+` annotation).
    show(
        "Example 2: expandable arrays with symbolic types",
        &["function b = expand(x, y, i1, i2)\na = eye(x, y);\nb = a;\nb(i1, i2) = 1;\n"],
    )?;

    // The same program with compile-time extents: everything moves to
    // one maximal stack buffer.
    show(
        "Example 2, static variant: stack allocation at the maximal size",
        &["function b = expand()\na = eye(40, 40);\nb = a;\nb(7, 9) = 1;\nfprintf('%d\\n', sum(sum(b)));\n"],
    )?;
    Ok(())
}
