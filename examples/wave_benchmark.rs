//! The paper's flagship benchmark (`fiff`, the 2-D wave equation whose
//! 451x451 grids dominate Table 2) executed under all three models:
//! the reference interpreter, the mcc-style mxArray VM, and the
//! GCTD-planned VM — with the Figure 2/5-style memory and time report.
//!
//! ```sh
//! cargo run --release --example wave_benchmark            # paper scale
//! MATC_PRESET=test cargo run --example wave_benchmark     # small scale
//! ```

use matc::benchsuite::{by_name, Preset};
use matc::frontend::parse_program;
use matc::gctd::GctdOptions;
use matc::vm::compile::{compile, lower_for_mcc};
use matc::vm::{Interp, MccVm, PlannedVm};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = if std::env::var("MATC_PRESET").as_deref() == Ok("test") {
        Preset::Test
    } else {
        Preset::Paper
    };
    let bench = by_name("fiff").expect("fiff exists");
    let sources = bench.sources(preset);
    let refs: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
    let ast = parse_program(refs)?;

    println!("fiff — {}", bench.synopsis);

    let t = Instant::now();
    let mut interp = Interp::new(&ast);
    let out_i = interp.run()?;
    let wall_i = t.elapsed();

    let mcc_ir = lower_for_mcc(&ast)?;
    let t = Instant::now();
    let mut mcc = MccVm::new(&mcc_ir);
    let out_m = mcc.run()?;
    let wall_m = t.elapsed();

    let compiled = compile(&ast, GctdOptions::default())?;
    let t = Instant::now();
    let mut planned = PlannedVm::new(&compiled);
    let out_p = planned.run()?;
    let wall_p = t.elapsed();

    assert_eq!(out_i, out_m, "outputs must agree");
    assert_eq!(out_i, out_p, "outputs must agree");
    print!("{out_p}");
    println!();
    println!("                     interp      mcc    mat2c");
    println!(
        "time (s)            {:8.3} {:8.3} {:8.3}",
        wall_i.as_secs_f64(),
        wall_m.as_secs_f64(),
        wall_p.as_secs_f64()
    );
    println!(
        "avg dynamic data KB {:8.1} {:8.1} {:8.1}",
        interp.mem.avg_dynamic_data() / 1024.0,
        mcc.mem.avg_dynamic_data() / 1024.0,
        planned.mem.avg_dynamic_data() / 1024.0
    );
    println!(
        "avg resident KB     {:8.1} {:8.1} {:8.1}",
        interp.mem.avg_rss() / 1024.0,
        mcc.mem.avg_rss() / 1024.0,
        planned.mem.avg_rss() / 1024.0
    );
    println!(
        "\nmat2c speedup over mcc: {:.1}x; plan violations: {}",
        wall_m.as_secs_f64() / wall_p.as_secs_f64().max(1e-9),
        planned.plan_violations
    );
    Ok(())
}
