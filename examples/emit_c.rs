//! Emit the mat2c-style C translation (with the GCTD storage plan
//! applied) for any benchmark of the suite.
//!
//! ```sh
//! cargo run --example emit_c -- crni
//! ```

use matc::benchsuite::{by_name, Preset};
use matc::codegen::emit_program;
use matc::frontend::parse_program;
use matc::gctd::GctdOptions;
use matc::vm::compile::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crni".to_string());
    let bench =
        by_name(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`; try one of Table 1"));
    let sources = bench.sources(Preset::Test);
    let refs: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
    let ast = parse_program(refs)?;
    let compiled = compile(&ast, GctdOptions::default())?;
    print!("{}", emit_program(&compiled));
    Ok(())
}
