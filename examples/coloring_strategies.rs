//! §5 made runnable: the paper closes by showing GCTD's greedy
//! lexical-order coloring is not optimal. This example colors the same
//! program under the three strategies the crate ships — the paper's
//! lexical greedy, a size-ordered greedy, and an exhaustive
//! branch-and-bound that minimizes aggregate storage — and prints each
//! frame layout side by side.
//!
//! ```sh
//! cargo run --example coloring_strategies
//! ```

use matc::frontend::parse_program;
use matc::gctd::{ColoringStrategy, GctdOptions, SlotKind};
use matc::vm::compile::compile;

/// The §5 counterexample, def-ordered so the greedy heuristic stumbles:
/// `b` (16 B) and `a` (32 B) interfere; `c` (24 B) interferes with
/// neither. Lexical greedy hands `c` the lowest free color — `b`'s —
/// and that group then costs max(16, 24) = 24 B next to `a`'s 32 B
/// (total 56 B). The optimum instead pairs `c` with `a`:
/// max(32, 24) + 16 = 48 B.
const PROGRAM: &str = "\
function f()
b = rand(1, 2);
a = rand(2, 2);
fprintf('%g %g\\n', a(1), b(1));
c = rand(1, 3);
fprintf('%g\\n', c(1));
";

fn frame_bytes(
    src: &str,
    strategy: ColoringStrategy,
) -> Result<(u64, usize), Box<dyn std::error::Error>> {
    let ast = parse_program([src])?;
    let compiled = compile(
        &ast,
        GctdOptions {
            coloring: strategy,
            ..GctdOptions::default()
        },
    )?;
    let mut bytes = 0;
    let mut slots = 0;
    for (i, _) in compiled.ir.functions.iter().enumerate() {
        let plan = compiled.plans.plan(matc::ir::FuncId::new(i));
        slots += plan.slots.len();
        for slot in &plan.slots {
            if let SlotKind::Stack { bytes: b } = slot.kind {
                bytes += b;
            }
        }
    }
    Ok((bytes, slots))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("strategy             stack frame   slots");
    println!("------------------   -----------   -----");
    for (name, strategy) in [
        ("lexical greedy", ColoringStrategy::LexicalGreedy),
        ("size-ordered", ColoringStrategy::SizeOrderedGreedy),
        (
            "exhaustive (opt)",
            ColoringStrategy::Exhaustive { max_nodes: 24 },
        ),
    ] {
        let (bytes, slots) = frame_bytes(PROGRAM, strategy)?;
        println!("{name:<18}   {bytes:>9} B   {slots:>5}");
    }
    println!();
    println!("The paper's §5 point: the greedy heuristic can assign a small");
    println!("array a color holding a large one (inflating the frame); the");
    println!("exhaustive search finds the aggregate-storage optimum. Run the");
    println!("`strategies` bench binary for the same comparison across the");
    println!("full 11-benchmark suite.");
    Ok(())
}
