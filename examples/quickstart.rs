//! Quickstart: compile a MATLAB program with the GCTD storage optimizer
//! and execute it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use matc::frontend::parse_program;
use matc::gctd::GctdOptions;
use matc::vm::{compile::compile, PlannedVm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A driver M-file and a kernel M-file, FALCON style.
    let driver = r#"
function driver
x = smooth(rand(64, 64), 10);
fprintf('checksum = %.6f\n', sum(sum(x)));
"#;
    let kernel = r#"
function a = smooth(a, steps)
% Repeated 5-point smoothing; all the temporaries below coalesce
% into a handful of 64x64 buffers.
n = size(a, 1);
for t = 1:steps
  b = zeros(n, n);
  b(2:n-1, 2:n-1) = 0.25 * (a(1:n-2, 2:n-1) + a(3:n, 2:n-1) + a(2:n-1, 1:n-2) + a(2:n-1, 3:n));
  a = b;
end
"#;

    let ast = parse_program([driver, kernel])?;
    let compiled = compile(&ast, GctdOptions::default())?;

    // Storage-plan summary (the paper's Table 2 quantities).
    let stats = compiled.plans.total_stats();
    println!("GCTD plan:");
    println!("  variables entering GCTD : {}", stats.original_vars);
    println!(
        "  subsumed (static/dynamic): {}/{}",
        stats.static_subsumed, stats.dynamic_subsumed
    );
    println!(
        "  stack bytes saved        : {} ({} KB)",
        stats.stack_bytes_saved,
        stats.stack_bytes_saved / 1024
    );
    println!("  colors used              : {}", stats.colors);
    println!();

    // Execute under the plan.
    let mut vm = PlannedVm::new(&compiled);
    let output = vm.run()?;
    print!("{output}");
    println!(
        "peak dynamic data: {} KB; plan violations: {}",
        vm.mem.peak_dynamic_data() / 1024,
        vm.plan_violations
    );
    Ok(())
}
